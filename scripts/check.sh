#!/usr/bin/env bash
# Lint + tier-1 test gate. Run from the repository root:
#
#     ./scripts/check.sh
#
# ruff is optional (config lives in pyproject.toml); the tests are not.
set -euo pipefail
cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests
else
    echo "== ruff == (not installed; skipping lint)"
fi

echo "== legacy API lint =="
# The v3 API redesign removed the deprecated ArchIS config aliases
# (profile=/umin=/... on ArchIS(), buffer_pages=/durability= on
# ArchIS.open()) and the bare-list Result shim.  Fail if anything in
# the tree reaches for them again.  (Database.open keeps its own
# buffer_pages/durability parameters — the lint anchors on ArchIS.)
LEGACY="$(grep -rnE \
    'ArchIS(\.open)?\([^()]*\b(profile|umin|min_segment_rows|translation_cache_size|buffer_pages|durability)=' \
    --include='*.py' src tests examples scripts benchmarks || true)"
if [ -n "$LEGACY" ]; then
    echo "FAIL: legacy ArchIS config aliases are gone; pass config=ArchISConfig(...):" >&2
    echo "$LEGACY" >&2
    exit 1
fi
SHIM="$(grep -rnE '_WARNED_ALIASES|reset_alias_warnings|from repro\.archis\.config import .*_UNSET' \
    --include='*.py' src tests examples scripts benchmarks || true)"
if [ -n "$SHIM" ]; then
    echo "FAIL: the deprecated-alias shim machinery was removed:" >&2
    echo "$SHIM" >&2
    exit 1
fi
echo "no references to removed legacy API surface"

echo "== metric inventory lint =="
# Every metric emitted under src/ must be documented in
# repro.obs.METRIC_INVENTORY (its # HELP text in the exposition).
python scripts/lint_metrics.py

echo "== pytest (tier 1) =="
PYTHONPATH=src python -m pytest -x -q

echo "== pytest (golden plan snapshots) =="
# The rendered plans are pinned output: a diff here means the optimizer
# or the plan renderer changed observable behavior.
PYTHONPATH=src python -m pytest -x -q tests/plan/test_golden_plans.py

echo "== pytest (crash-injection durability suite) =="
# Run the crash matrix in a dedicated temp root so we can prove that no
# recovery path leaves stray .tmp files or unreplayed WAL frames behind.
CRASH_TMP="$(mktemp -d)"
trap 'rm -rf "$CRASH_TMP"' EXIT
PYTHONPATH=src python -m pytest -x -q \
    --basetemp="$CRASH_TMP" \
    tests/storage/test_wal_recovery.py \
    tests/archis/test_crash_persistence.py

STRAY_TMP="$(find "$CRASH_TMP" -name '*.tmp' 2>/dev/null || true)"
if [ -n "$STRAY_TMP" ]; then
    echo "FAIL: recovery tests left stray .tmp files behind:" >&2
    echo "$STRAY_TMP" >&2
    exit 1
fi
# (*.db.wal = pager-managed logs; bare *.wal fixtures from the frame-codec
# unit tests are expected to keep their frames)
STRAY_WAL="$(find "$CRASH_TMP" -name '*.db.wal' -size +0c 2>/dev/null || true)"
if [ -n "$STRAY_WAL" ]; then
    echo "FAIL: recovery tests left non-empty WAL files behind:" >&2
    echo "$STRAY_WAL" >&2
    exit 1
fi
echo "no stray .tmp or WAL files left behind"

echo "== batched-ingest smoke benchmark =="
# Fails if batch apply is slower than row-at-a-time or produces
# different archive state.  Writes to a scratch path so the committed
# full-run BENCH_ingest.json is never clobbered by smoke numbers.
PYTHONPATH=src timeout 300 python benchmarks/bench_ingest.py --smoke \
    --out "$(mktemp --suffix=.json)"

echo "== sharded scalability smoke benchmark =="
# Proves sharded answers match the single store and that key-equality
# pruning reaches the Exchange operator (shards=1/4 in EXPLAIN).  The
# throughput gate only applies to the full run; smoke writes to a
# scratch path so the committed BENCH JSON keeps full-run numbers.
PYTHONPATH=src timeout 300 python benchmarks/bench_fig10_scalability.py \
    --smoke --shards 4 --out "$(mktemp --suffix=.json)"

echo "== temporal SQL smoke benchmark =="
# FOR SYSTEM_TIME AS OF must answer exactly like snapshot_rows, the
# sequenced operators exactly like their XQuery equivalents, the AS OF
# EXPLAIN must show segment-restriction firing, and a keyed AS OF on a
# 4-shard archive must prune the Exchange to shards=1/4.  Performance
# ratios only gate the full run.
PYTHONPATH=src timeout 300 python benchmarks/bench_temporal_sql.py \
    --smoke --out "$(mktemp --suffix=.json)"

echo "== server jobs + binary encoding smoke benchmark =="
# Protocol v3 end to end: the colframe1 size gate and async job
# isolation (interactive p99 stays bounded while a job occupies the
# job executor).  The encoding speed gate only applies to the full
# run; smoke writes to a scratch path so the committed full-run
# BENCH_server_jobs.json is never clobbered.
PYTHONPATH=src timeout 300 python benchmarks/bench_server_jobs.py \
    --smoke --out "$(mktemp --suffix=.json)"

echo "== concurrency stress (bounded) =="
# Snapshot-vs-replay consistency under concurrent clients, deadlock
# breaking, group-commit batching — fails on leaked threads or sockets.
PYTHONPATH=src timeout 120 python scripts/stress_concurrency.py --seconds 3
