#!/usr/bin/env bash
# Lint + tier-1 test gate. Run from the repository root:
#
#     ./scripts/check.sh
#
# ruff is optional (config lives in pyproject.toml); the tests are not.
set -euo pipefail
cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests
else
    echo "== ruff == (not installed; skipping lint)"
fi

echo "== pytest (tier 1) =="
PYTHONPATH=src python -m pytest -x -q
