#!/usr/bin/env python
"""Metric-inventory lint: every metric emitted in src/ must be documented.

The inventory in ``repro.obs`` (``METRIC_INVENTORY``) is the contract
the Prometheus exposition and the docs are built on.  This script
regex-extracts every instrument registration under ``src/`` —

    get_registry().counter("wal.frames")
    registry.labeled_histogram("server.request.seconds", ...)

— and fails when a registered name is missing from the inventory, so a
new metric cannot ship undocumented (and un-HELP-ed in the exposition).

Run from the repository root: ``python scripts/lint_metrics.py``
(``scripts/check.sh`` runs it as a gate).
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

#: ``.counter("name")`` etc. on a registry object, first argument a
#: string literal (dynamic names cannot be linted and are not used)
_REGISTRATION = re.compile(
    r"\.(?:counter|labeled_counter|gauge|labeled_gauge|histogram"
    r"|labeled_histogram)\(\s*"
    r"['\"]([^'\"]+)['\"]"
)


def emitted_metrics() -> dict[str, list[str]]:
    """Metric name -> files registering it, across every src/ module."""
    found: dict[str, list[str]] = {}
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in _REGISTRATION.finditer(text):
            found.setdefault(match.group(1), []).append(
                str(path.relative_to(ROOT))
            )
    return found


def main() -> int:
    sys.path.insert(0, str(SRC))
    from repro.obs import METRIC_INVENTORY

    emitted = emitted_metrics()
    missing = sorted(set(emitted) - set(METRIC_INVENTORY))
    if missing:
        print(
            "FAIL: metrics emitted in src/ but missing from "
            "METRIC_INVENTORY in src/repro/obs/__init__.py:",
            file=sys.stderr,
        )
        for name in missing:
            files = ", ".join(sorted(set(emitted[name])))
            print(f"  {name}  ({files})", file=sys.stderr)
        return 1
    print(
        f"metric inventory ok: {len(emitted)} emitted names all documented "
        f"({len(METRIC_INVENTORY)} inventory entries)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
