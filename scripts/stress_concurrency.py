#!/usr/bin/env python
"""Bounded-time concurrency stress gate.

Exercises the three acceptance properties of the concurrent-access
subsystem in one short run, then verifies the process is clean:

1. **Snapshot consistency** — reader clients hammering a live server see
   only states that a single-threaded replay of the committed
   transactions produces at the snapshot day.
2. **Deadlock freedom** — an injected two-transaction lock cycle is
   broken by a ``DeadlockError`` well inside the lock timeout.
3. **Group commit** — concurrent disjoint writers on a WAL-backed
   database fsync measurably less often than they commit.
4. **Background maintenance** — transactional writers and XQuery readers
   run while the maintenance worker freezes and rewrites segments; the
   drained archive must pass every invariant check and the final
   snapshot must match the writers' last committed steps.

On exit the script fails if any ``repro-*`` thread or any socket file
descriptor leaked.  Run it via ``scripts/check.sh`` or directly:

    PYTHONPATH=src python scripts/stress_concurrency.py [--seconds N]
"""

import argparse
import os
import sys
import tempfile
import threading
import time

from repro.archis import ArchIS, ArchISConfig
from repro.archis.validation import check_archive
from repro.errors import DeadlockError
from repro.obs import get_registry
from repro.rdb import ColumnType, Database
from repro.server import Client, Server
from repro.txn import TxnManager

WRITERS = 4
READERS = 8
QUERY = "SELECT id, name, salary FROM employee ORDER BY id"


def socket_fds():
    fd_dir = "/proc/self/fd"
    if not os.path.isdir(fd_dir):  # non-Linux: skip the fd check
        return None
    count = 0
    for fd in os.listdir(fd_dir):
        try:
            if os.readlink(os.path.join(fd_dir, fd)).startswith("socket:"):
                count += 1
        except OSError:
            continue
    return count


def make_managed():
    db = Database()
    db.set_date("1995-01-01")
    db.create_table(
        "employee",
        [
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("salary", ColumnType.INT),
        ],
        primary_key=("id",),
    )
    archis = ArchIS(db, config=ArchISConfig(profile="atlas"))
    archis.track_table("employee", document_name="employees.xml")
    return archis, TxnManager(db, archis)


def stress_server(seconds):
    """Phase 1: readers + writers over real sockets, replay-checked."""
    archis, manager = make_managed()
    committed = []  # (day, writer, step)
    committed_lock = threading.Lock()
    observations = []
    observations_lock = threading.Lock()
    stop = threading.Event()
    failures = []

    with Server(manager, archis, workers=6) as server:
        host, port = server.address

        def writer(writer_id):
            try:
                with Client(host, port) as client:
                    response = client.request(
                        {
                            "op": "sql",
                            "text": f"INSERT INTO employee VALUES "
                            f"({writer_id}, 'w{writer_id}', 0)",
                        }
                    )
                    assert response["ok"], response
                    step = 0
                    while not stop.is_set():
                        client.begin()
                        client.sql(
                            f"UPDATE employee SET salary = {step} "
                            f"WHERE id = {writer_id}"
                        )
                        day = client.commit()
                        with committed_lock:
                            committed.append((day, writer_id, step))
                        step += 1
            except Exception as exc:
                failures.append(exc)

        def reader():
            try:
                with Client(host, port) as client:
                    while not stop.is_set():
                        day = client.snapshot()
                        rows = client.sql(QUERY)["rows"]
                        with observations_lock:
                            observations.append((day, rows))
            except Exception as exc:
                failures.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(WRITERS)
        ] + [threading.Thread(target=reader) for _ in range(READERS)]
        for thread in threads:
            thread.start()
        time.sleep(seconds)
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
        if any(thread.is_alive() for thread in threads):
            failures.append(RuntimeError("stress thread failed to stop"))

    if failures:
        return f"server stress errors: {failures[:3]}"

    # the writers' initial INSERTs auto-commit without reporting a day,
    # so replay only the recorded UPDATE days and skip observations
    # taken before a writer's first update made it visible
    def replay(day):
        state = {}
        for commit_day, writer_id, step in sorted(committed):
            if commit_day > day:
                break
            state[writer_id] = [writer_id, f"w{writer_id}", step]
        return state

    mismatches = 0
    for day, rows in observations:
        expected = replay(day)
        for row in rows:
            writer_id = row[0]
            if writer_id in expected and row != expected[writer_id]:
                mismatches += 1
    if mismatches:
        return f"{mismatches} snapshot observations diverge from replay"
    print(
        f"  server stress: {len(committed)} commits, "
        f"{len(observations)} snapshot reads, 0 divergences"
    )
    return None


def stress_deadlock():
    """Phase 2: injected lock cycle must be broken quickly."""
    db = Database()
    for name in ("left", "right"):
        db.create_table(name, [("id", ColumnType.INT)], primary_key=("id",))
    manager = TxnManager(db, lock_timeout=30.0)
    victims = []
    barrier = threading.Barrier(2)

    def worker(first, second):
        txn = manager.begin()
        try:
            txn.sql(f"INSERT INTO {first} VALUES ({txn.id})")
            barrier.wait()
            txn.sql(f"INSERT INTO {second} VALUES ({txn.id})")
            txn.commit()
        except DeadlockError:
            victims.append(txn.id)
            txn.abort()

    start = time.monotonic()
    threads = [
        threading.Thread(target=worker, args=pair)
        for pair in (("left", "right"), ("right", "left"))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=20.0)
    elapsed = time.monotonic() - start
    if elapsed >= 10.0:
        return f"lock cycle not broken promptly ({elapsed:.1f}s)"
    if len(victims) != 1:
        return f"expected exactly one deadlock victim, got {victims}"
    if manager.locks.stats() != {"held": 0, "waiting": 0}:
        return f"locks leaked: {manager.locks.stats()}"
    print(f"  deadlock: cycle broken in {elapsed:.2f}s, one victim")
    return None


def stress_group_commit():
    """Phase 3: disjoint writers must batch fsyncs on a WAL database."""
    registry = get_registry()
    tables, txns = 8, 4
    with tempfile.TemporaryDirectory() as tmp:
        db = Database(
            os.path.join(tmp, "stress.db"), group_window=0.002
        )
        for index in range(tables):
            db.create_table(
                f"t{index}",
                [("id", ColumnType.INT), ("v", ColumnType.INT)],
                primary_key=("id",),
            )
        db.save()
        manager = TxnManager(db)
        fsyncs0 = registry.counter("wal.fsyncs").value
        commits0 = registry.counter("wal.commits").value
        batched0 = registry.counter("wal.group_commit.batched").value

        def worker(index):
            for step in range(txns):
                with manager.begin() as txn:
                    txn.sql(f"INSERT INTO t{index} VALUES ({step}, {step})")

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(tables)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        fsyncs = registry.counter("wal.fsyncs").value - fsyncs0
        commits = registry.counter("wal.commits").value - commits0
        batched = registry.counter("wal.group_commit.batched").value - batched0
        db.close()
    if commits != tables * txns:
        return f"expected {tables * txns} commits, saw {commits}"
    if batched <= 0 or fsyncs >= commits:
        return (
            f"group commit failed to batch: {fsyncs} fsyncs "
            f"for {commits} commits ({batched} batched)"
        )
    print(
        f"  group commit: {commits} commits -> {fsyncs} fsyncs "
        f"({batched} batched)"
    )
    return None


def stress_maintenance(seconds):
    """Phase 4: background freezes under live writers and readers."""
    db = Database()
    db.set_date("1995-01-01")
    db.create_table(
        "employee",
        [
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("salary", ColumnType.INT),
        ],
        primary_key=("id",),
    )
    archis = ArchIS(
        db,
        config=ArchISConfig(
            umin=0.8,
            min_segment_rows=32,
            maintenance="background",
            maintenance_step_rows=64,
        ),
    )
    archis.track_table("employee", document_name="employees.xml")
    manager = TxnManager(db, archis)
    stop = threading.Event()
    failures = []
    final_steps = {}

    for writer_id in range(WRITERS):
        with manager.begin() as txn:
            txn.sql(
                f"INSERT INTO employee VALUES "
                f"({writer_id}, 'w{writer_id}', 0)"
            )

    def writer(writer_id):
        try:
            step = 0
            while not stop.is_set() and step < 200:
                step += 1
                with manager.begin() as txn:
                    txn.sql(
                        f"UPDATE employee SET salary = {step} "
                        f"WHERE id = {writer_id}"
                    )
                final_steps[writer_id] = step
        except Exception as exc:
            failures.append(exc)

    def reader():
        query = (
            'for $s in doc("employees.xml")/employees/employee/salary '
            "return $s"
        )
        try:
            while not stop.is_set():
                archis.xquery(query, allow_fallback=False)
        except Exception as exc:
            failures.append(exc)

    threads = [
        threading.Thread(target=writer, args=(w,)) for w in range(WRITERS)
    ] + [threading.Thread(target=reader) for _ in range(READERS // 2)]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + max(seconds, 1.0) * 10
    for thread in threads[:WRITERS]:
        thread.join(timeout=max(0.1, deadline - time.monotonic()))
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
    if any(thread.is_alive() for thread in threads):
        failures.append(RuntimeError("maintenance stress thread stuck"))
    if failures:
        archis.close()
        return f"maintenance stress errors: {failures[:3]}"

    archis.apply_pending()  # drain committed entries into the archive
    archis.drain_maintenance()
    worker = archis.maintenance.stats()
    freezes = archis.segments.freeze_count
    violations = check_archive(archis)
    snapshot = dict(
        archis.snapshot_rows("employee", "salary", db.current_date).rows
    )
    archis.close()
    if worker["error"] is not None:
        return f"maintenance worker recorded an error: {worker['error']}"
    if archis.segments.pending_rewrites:
        return (
            "drained worker left rewrites pending: "
            f"{archis.segments.pending_rewrites}"
        )
    if freezes == 0:
        return "workload never triggered a background freeze"
    if violations:
        return f"archive invariants violated: {violations[:3]}"
    if snapshot != final_steps:
        return (
            f"final snapshot diverges from committed steps: "
            f"{snapshot} != {final_steps}"
        )
    rewritten = get_registry().counter("maintenance.rows_moved").value
    print(
        f"  maintenance: {freezes} background freezes, "
        f"{sum(final_steps.values())} updates archived, snapshot exact "
        f"({rewritten} rows moved lifetime)"
    )
    return None


def stress_sharded(seconds):
    """Phase 5: a key-partitioned archive under live writers and readers.

    Transactional writers update disjoint keys while XQuery readers
    scatter-gather across every shard store and each shard's own
    background maintenance worker freezes segments.  The drained
    archive must pass every invariant check *per shard*, the final
    snapshot must match the writers' last committed steps exactly, and
    closing the coordinator must join the exchange pool and every
    per-shard worker (the leak check in ``main`` catches stragglers).
    """
    db = Database()
    db.set_date("1995-01-01")
    db.create_table(
        "employee",
        [
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("salary", ColumnType.INT),
        ],
        primary_key=("id",),
    )
    archis = ArchIS(
        db,
        config=ArchISConfig(
            shards=4,
            umin=0.8,
            min_segment_rows=16,
            maintenance="background",
            maintenance_step_rows=64,
        ),
    )
    archis.track_table("employee", document_name="employees.xml")
    manager = TxnManager(db, archis)
    stop = threading.Event()
    failures = []
    final_steps = {}

    for writer_id in range(WRITERS):
        with manager.begin() as txn:
            txn.sql(
                f"INSERT INTO employee VALUES "
                f"({writer_id}, 'w{writer_id}', 0)"
            )

    def writer(writer_id):
        try:
            step = 0
            while not stop.is_set() and step < 200:
                step += 1
                with manager.begin() as txn:
                    txn.sql(
                        f"UPDATE employee SET salary = {step} "
                        f"WHERE id = {writer_id}"
                    )
                final_steps[writer_id] = step
        except Exception as exc:
            failures.append(exc)

    def reader():
        query = (
            'for $s in doc("employees.xml")/employees/employee/salary '
            "return $s"
        )
        try:
            while not stop.is_set():
                archis.xquery(query, allow_fallback=False)
        except Exception as exc:
            failures.append(exc)

    threads = [
        threading.Thread(target=writer, args=(w,)) for w in range(WRITERS)
    ] + [threading.Thread(target=reader) for _ in range(READERS // 2)]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + max(seconds, 1.0) * 10
    for thread in threads[:WRITERS]:
        thread.join(timeout=max(0.1, deadline - time.monotonic()))
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
    if any(thread.is_alive() for thread in threads):
        failures.append(RuntimeError("sharded stress thread stuck"))
    if failures:
        archis.close()
        return f"sharded stress errors: {failures[:3]}"

    archis.apply_pending()  # route + archive the committed entries
    archis.drain_maintenance()
    # check_archive audits shard by shard, unions live history across
    # shards against the coordinator's current table, and verifies every
    # history row sits in the shard its key routes to
    violations = check_archive(archis)
    freezes = sum(s.segments.freeze_count for s in archis.shard_stores)
    backlog = sum(
        len(s.db.update_log.pending()) for s in archis.shard_stores
    )
    snapshot = dict(
        archis.snapshot_rows("employee", "salary", db.current_date).rows
    )
    archis.close()
    if backlog:
        return f"{backlog} update-log entries left unarchived in shards"
    if freezes == 0:
        return "workload never froze a segment in any shard"
    if violations:
        return f"shard archive invariants violated: {violations[:3]}"
    if snapshot != final_steps:
        return (
            f"final sharded snapshot diverges from committed steps: "
            f"{snapshot} != {final_steps}"
        )
    print(
        f"  sharded: {sum(final_steps.values())} updates routed across "
        f"4 shards, {freezes} shard freezes, snapshot exact"
    )
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seconds",
        type=float,
        default=3.0,
        help="wall-clock budget for the server stress phase",
    )
    args = parser.parse_args()

    baseline_threads = {t.name for t in threading.enumerate()}
    baseline_sockets = socket_fds()
    errors = []
    for name, phase in (
        ("server", lambda: stress_server(args.seconds)),
        ("deadlock", stress_deadlock),
        ("group-commit", stress_group_commit),
        ("maintenance", lambda: stress_maintenance(args.seconds)),
        ("sharded", lambda: stress_sharded(args.seconds)),
    ):
        error = phase()
        if error:
            errors.append(f"{name}: {error}")

    # leak checks: every repro-* thread joined, every socket closed
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked_threads = {
            t.name
            for t in threading.enumerate()
            if t.name not in baseline_threads
        }
        if not leaked_threads:
            break
        time.sleep(0.05)
    if leaked_threads:
        errors.append(f"leaked threads: {sorted(leaked_threads)}")
    if baseline_sockets is not None:
        final_sockets = socket_fds()
        if final_sockets > baseline_sockets:
            errors.append(
                f"leaked sockets: {final_sockets - baseline_sockets}"
            )

    if errors:
        print("CONCURRENCY STRESS FAILED", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    print("concurrency stress passed: no leaked threads or sockets")
    return 0


if __name__ == "__main__":
    sys.exit(main())
