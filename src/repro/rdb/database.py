"""The Database facade: catalog + storage + clock + update log + SQL.

This is the "RDBMS" of the reproduction.  ArchIS attaches to one of these:
the current tables, the H-tables, the segment table and the BLOB store all
live inside a single :class:`Database`, exactly as in the paper's
implementation ("the 'current database' and H-tables are implemented as
tables in a same database", Section 5).
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.errors import CatalogError
from repro.rdb import txcontext
from repro.rdb.table import Table
from repro.rdb.types import Column, ColumnType, TableSchema
from repro.rdb.updatelog import UpdateLog
from repro.storage.blob import BlobStore
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.util.timeutil import parse_date


class Database:
    """A self-contained mini relational database.

    Parameters
    ----------
    path:
        Backing file for the pager; ``None`` keeps everything in memory.
    buffer_pages:
        Buffer-pool capacity in pages.
    durability:
        ``"wal"`` (default) makes file-backed saves atomic and
        crash-recoverable through a write-ahead log; ``"none"`` writes
        pages in place.  Memory databases are always ``"none"``.
    group_commit:
        When True (default) concurrent COMMIT frames share WAL fsyncs
        (leader/follower batching); ``group_window`` holds the leader's
        fsync open for that many seconds so more followers can ride it
        — but only while the WAL's contention score says committers are
        actually arriving concurrently, so a serial client never pays
        the window (see :mod:`repro.storage.wal`).  Both only matter
        under ``"wal"`` durability.
    """

    def __init__(
        self,
        path: str | None = None,
        buffer_pages: int = 1024,
        durability: str = "wal",
        group_commit: bool = True,
        group_window: float = 0.002,
    ) -> None:
        self.pager = Pager(
            path,
            durability=durability,
            group_commit=group_commit,
            group_window=group_window,
        )
        self.pool = BufferPool(self.pager, capacity=buffer_pages)
        self.blobs = BlobStore(self.pool)
        self._tables: dict[str, Table] = {}
        # Guards the catalog dict and the clock against concurrent
        # sessions (DDL takes the transaction layer's logical "#catalog"
        # lock too; this latch covers lock-free readers).
        self._catalog_lock = threading.RLock()
        self.update_log = UpdateLog(scope=path)
        self._clock = parse_date("1985-01-01")
        self._functions: dict[str, Callable] = {}
        self._table_functions: dict[str, Callable] = {}
        #: when False, SELECT/DML run the naive logical plan unchanged —
        #: same rows, no index/segment access paths (used by equivalence
        #: tests and the bench harness to measure optimizer impact)
        self.optimizer_enabled: bool = True
        #: optional hook ``(table_name) -> SegmentHints | None`` installed
        #: by ArchIS so the segment-restriction rule can see clustering
        #: state without the SQL layer importing the archive
        self.segment_provider: Callable | None = None
        #: optional hook ``(name) -> ShardTarget | None`` installed by a
        #: sharded ArchIS coordinator: any plan leaf whose table or
        #: function name resolves to a target is compiled into a
        #: scatter-gather Exchange over the shard stores
        self.shard_provider: Callable | None = None
        #: the most recent SelectPlan executed through the session
        #: (EXPLAIN reads its stage report)
        self.last_plan = None

    # -- clock ---------------------------------------------------------------

    @property
    def current_date(self) -> int:
        """The transaction-time clock, in days since the epoch.

        Transaction timestamps are drawn from this logical clock so that
        runs are deterministic; the workload driver advances it.  A write
        transaction overrides the clock for its own thread (every
        mutation it makes is stamped with the transaction's commit day).
        """
        override = txcontext.clock_day()
        if override is not None:
            return override
        return self._clock

    @property
    def as_of(self) -> int | None:
        """The snapshot day pinned for reads on this thread, if any."""
        return txcontext.as_of_day()

    def set_date(self, value: int | str) -> None:
        if isinstance(value, str):
            value = parse_date(value)
        with self._catalog_lock:
            if value < self._clock:
                raise CatalogError(
                    "transaction-time clock cannot move backwards"
                )
            self._clock = value

    def advance_days(self, days: int = 1) -> None:
        with self._catalog_lock:
            self._clock += days

    def advance_to(self, value: int) -> None:
        """Move the clock forward to ``value`` if it is ahead (no-op
        otherwise).  Commits may complete out of day order, so the
        transaction layer advances with a max, never backwards."""
        with self._catalog_lock:
            if value > self._clock:
                self._clock = value

    # -- catalog ---------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: list[tuple[str, ColumnType]] | list[Column],
        primary_key: tuple[str, ...] = (),
    ) -> Table:
        cols = [
            c if isinstance(c, Column) else Column(c[0], c[1])
            for c in columns
        ]
        with self._catalog_lock:
            if name in self._tables:
                raise CatalogError(f"table {name} already exists")
            schema = TableSchema(name, cols, primary_key)
            table = Table(schema, self.pool)
            self._tables[name] = table
            return table

    def drop_table(self, name: str) -> None:
        with self._catalog_lock:
            table = self.table(name)
            table.truncate()
            del self._tables[name]

    def table(self, name: str) -> Table:
        provider = txcontext.table_provider()
        if provider is not None:
            substitute = provider(name)
            if substitute is not None:
                return substitute
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table named {name}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> list[str]:
        with self._catalog_lock:
            return sorted(self._tables)

    # -- scalar / table functions (UDF registry for SQL) -------------------------

    def register_function(self, name: str, fn: Callable) -> None:
        """Register a scalar SQL function (case-insensitive name)."""
        self._functions[name.lower()] = fn

    def function(self, name: str) -> Callable | None:
        return self._functions.get(name.lower())

    def register_table_function(self, name: str, fn: Callable) -> None:
        """Register a table function: callable(args...) -> iterator of rows.

        The BlockZIP blob reader is exposed this way (paper Section 8.2:
        "user-defined uncompression table functions are used to extract
        records from each BLOB").
        """
        self._table_functions[name.lower()] = fn

    def table_function(self, name: str) -> Callable | None:
        return self._table_functions.get(name.lower())

    # -- SQL -----------------------------------------------------------------------

    def sql(self, text: str, params: dict | None = None):
        """Parse, plan and execute a SQL statement.

        Returns a :class:`repro.sql.result.ResultSet` for queries or an
        affected-row count for DML.  Imported lazily to keep the storage
        layers importable on their own.
        """
        from repro.sql.session import execute_sql

        return execute_sql(self, text, params)

    # -- persistence -------------------------------------------------------------

    def save(self) -> str:
        """Persist the catalog beside a file-backed database.

        Page data is already durable through the pager; this saves the
        schema/index/blob directory so :meth:`open` can restore the
        database in another process.  Returns the sidecar path.
        """
        from repro.rdb.persistence import save_catalog

        return save_catalog(self)

    @classmethod
    def open(
        cls,
        path: str,
        buffer_pages: int = 1024,
        durability: str = "wal",
        group_commit: bool = True,
        group_window: float = 0.002,
    ) -> "Database":
        """Reopen a previously :meth:`save`-d file-backed database.

        Opening runs WAL recovery first (in the pager): a save that
        committed but crashed before its checkpoint is replayed; one that
        never committed is discarded, leaving the previous state.
        """
        from repro.rdb.persistence import load_catalog

        db = cls(
            path,
            buffer_pages,
            durability=durability,
            group_commit=group_commit,
            group_window=group_window,
        )
        load_catalog(db)
        return db

    @property
    def durability(self) -> str:
        """The pager's durability mode: ``"wal"`` or ``"none"``."""
        return self.pager.durability

    # -- measurement hooks -------------------------------------------------------

    def reset_caches(self) -> None:
        """Drop buffered pages: the cold-cache measurement protocol."""
        self.pool.reset()

    def storage_bytes(self, include_indexes: bool = True) -> int:
        """Total logical footprint: table pages + index estimates + blobs."""
        total = sum(
            t.size_bytes(include_indexes) for t in self._tables.values()
        )
        return total + self.blobs.size_bytes()

    def storage_report(self) -> dict[str, int]:
        """Per-table byte footprint plus blob storage."""
        report = {
            name: table.size_bytes() for name, table in self._tables.items()
        }
        report["<blobs>"] = self.blobs.size_bytes()
        return report

    def close(self) -> None:
        self.update_log.close()
        self.pager.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
