"""Per-thread execution context bridging the rdb layer and transactions.

The transaction subsystem (:mod:`repro.txn`) sits *above* the relational
layer, but tables and the clock must behave differently while a
transaction is active on the calling thread:

* **AS-OF visibility** — a snapshot read pins a day; table scans hide
  rows whose ``tstart`` lies after it and re-open intervals closed by
  later transactions.
* **Clock override** — a write transaction's mutations are stamped with
  the transaction's own commit day, not the shared database clock, so
  concurrent writers never interleave timestamps.
* **Undo capture** — mutations append inverse operations to the active
  transaction's undo sink, replayed on abort.
* **Trigger suppression** — undo replay and snapshot plumbing must not
  re-archive rows, so triggers can be muted for the current thread.

Rather than import the transaction layer (a layering inversion), the rdb
layer consults these thread-locals; :mod:`repro.txn` sets them around
query and DML execution.  Everything here defaults to "no transaction":
single-threaded library use pays one ``getattr`` per check and behaves
exactly as before the concurrency subsystem existed.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

_LOCAL = threading.local()


# -- AS-OF snapshot day ------------------------------------------------------

def as_of_day() -> int | None:
    """The snapshot day pinned for reads on this thread, if any."""
    return getattr(_LOCAL, "as_of", None)


def set_as_of(day: int | None) -> None:
    _LOCAL.as_of = day


@contextmanager
def reading_as_of(day: int | None) -> Iterator[None]:
    """Scope an AS-OF day over a block (restores the previous value)."""
    previous = as_of_day()
    _LOCAL.as_of = day
    try:
        yield
    finally:
        _LOCAL.as_of = previous


# -- clock override ----------------------------------------------------------

def clock_day() -> int | None:
    """This thread's transaction day, overriding the database clock."""
    return getattr(_LOCAL, "clock", None)


def set_clock(day: int | None) -> None:
    _LOCAL.clock = day


# -- undo capture ------------------------------------------------------------

def undo_sink() -> list | None:
    """The active transaction's undo list for this thread, if any.

    Entries are appended by :class:`~repro.rdb.table.Table` mutations:
    ``("insert", table, rid)``, ``("update", table, old_rid, new_rid,
    old_row)`` or ``("delete", table, old_row, rid)``.
    """
    return getattr(_LOCAL, "undo", None)


def set_undo_sink(sink: list | None) -> None:
    _LOCAL.undo = sink


# -- trigger suppression -----------------------------------------------------

def triggers_suppressed() -> bool:
    return getattr(_LOCAL, "mute_triggers", False)


@contextmanager
def suppressed_triggers() -> Iterator[None]:
    """Mute table triggers on this thread (undo replay, internal fixups)."""
    previous = triggers_suppressed()
    _LOCAL.mute_triggers = True
    try:
        yield
    finally:
        _LOCAL.mute_triggers = previous


@contextmanager
def no_undo() -> Iterator[None]:
    """Disable undo capture on this thread (used while replaying undo)."""
    previous = undo_sink()
    _LOCAL.undo = None
    try:
        yield
    finally:
        _LOCAL.undo = previous


# -- table overlay ------------------------------------------------------------

def table_provider():
    """This thread's table-overlay resolver, if any.

    A callable ``(name) -> Table | None`` consulted by
    :meth:`~repro.rdb.database.Database.table` before the catalog.
    Snapshot transactions install one that substitutes tracked current
    tables with their H-table reconstruction at the snapshot day —
    current tables are mutated in place, so a point-in-time read must be
    served from the versioned history instead.
    """
    return getattr(_LOCAL, "table_provider", None)


@contextmanager
def providing_tables(provider) -> Iterator[None]:
    """Scope a table-overlay resolver over a block on this thread."""
    previous = table_provider()
    _LOCAL.table_provider = provider
    try:
        yield
    finally:
        _LOCAL.table_provider = previous
