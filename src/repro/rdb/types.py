"""Column types and schemas for the relational engine.

The engine is deliberately small: the types below are exactly what ArchIS
needs for H-tables (integers, strings, floats, day-granularity dates and
BLOBs for compressed segments).  DATE values are stored as ``int`` days
since the epoch — see :mod:`repro.util.timeutil`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import IntegrityError
from repro.util.timeutil import parse_date


class ColumnType(enum.Enum):
    """Storage types understood by the engine."""

    INT = "int"
    FLOAT = "float"
    VARCHAR = "varchar"
    DATE = "date"
    BLOB = "blob"

    def validate(self, value: object, column: str) -> object:
        """Coerce/validate a Python value for this column type.

        Returns the storable value; raises :class:`IntegrityError` on type
        mismatch.  DATE accepts ``int`` day counts or ``YYYY-MM-DD``/``now``
        strings.
        """
        if value is None:
            return None
        if self is ColumnType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise IntegrityError(f"column {column}: expected int, got {value!r}")
            return value
        if self is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise IntegrityError(f"column {column}: expected float, got {value!r}")
            return float(value)
        if self is ColumnType.VARCHAR:
            if not isinstance(value, str):
                raise IntegrityError(f"column {column}: expected str, got {value!r}")
            return value
        if self is ColumnType.DATE:
            if isinstance(value, bool):
                raise IntegrityError(f"column {column}: expected date, got {value!r}")
            if isinstance(value, int):
                return value
            if isinstance(value, str):
                try:
                    return parse_date(value)
                except ValueError as exc:
                    raise IntegrityError(
                        f"column {column}: bad date literal {value!r}"
                    ) from exc
            raise IntegrityError(f"column {column}: expected date, got {value!r}")
        if self is ColumnType.BLOB:
            if not isinstance(value, (bytes, bytearray)):
                raise IntegrityError(f"column {column}: expected bytes, got {value!r}")
            return bytes(value)
        raise IntegrityError(f"unhandled column type {self}")


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: ColumnType
    nullable: bool = True


@dataclass
class TableSchema:
    """A table definition: ordered columns plus an optional primary key."""

    name: str
    columns: list[Column]
    primary_key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise IntegrityError(f"table {self.name}: duplicate column names")
        for key_col in self.primary_key:
            if key_col not in names:
                raise IntegrityError(
                    f"table {self.name}: primary key column {key_col} undefined"
                )
        self._positions = {name: i for i, name in enumerate(names)}

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def position(self, column: str) -> int:
        """Ordinal position of ``column``; raises on unknown names."""
        try:
            return self._positions[column]
        except KeyError:
            raise IntegrityError(
                f"table {self.name}: no column named {column}"
            ) from None

    def has_column(self, column: str) -> bool:
        return column in self._positions

    def validate_row(self, values: tuple) -> tuple:
        """Type-check and coerce a full row tuple."""
        if len(values) != len(self.columns):
            raise IntegrityError(
                f"table {self.name}: expected {len(self.columns)} values, "
                f"got {len(values)}"
            )
        out = []
        for column, value in zip(self.columns, values):
            if value is None and not column.nullable:
                raise IntegrityError(
                    f"table {self.name}: column {column.name} is NOT NULL"
                )
            out.append(column.type.validate(value, column.name))
        return tuple(out)

    def key_of(self, values: tuple) -> tuple:
        """Extract the primary-key tuple from a row."""
        return tuple(values[self.position(c)] for c in self.primary_key)
