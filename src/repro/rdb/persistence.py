"""Catalog persistence for file-backed databases.

The pager already persists page data; this module saves and restores the
*catalog* — table schemas, heap page ownership, index definitions and the
blob directory — as a JSON sidecar next to the database file, so a
file-backed :class:`~repro.rdb.database.Database` survives process
restarts.  Indexes are rebuilt by scanning on load (they are derived
state); registered functions are code and must be re-registered by the
application.

Durability: the sidecar is written through
:meth:`~repro.storage.pager.Pager.write_sidecar`.  Under WAL durability it
is staged in the log and lands in the same atomic checkpoint as the page
writes it describes; under ``durability="none"`` it is written with the
tmp-file → fsync → ``os.replace`` protocol, so a crashed save can never
leave truncated JSON in place of a good sidecar.
"""

from __future__ import annotations

import json
import os

from repro.errors import CatalogError, StorageError
from repro.rdb.types import Column, ColumnType
from repro.storage.atomicio import SIDECAR_VERSION

CATALOG_SUFFIX = ".catalog.json"


def sidecar_path(db_path: str) -> str:
    return db_path + CATALOG_SUFFIX


def catalog_payload(db) -> dict:
    """The catalog as JSON-ready data (shared by save and staging)."""
    payload = {
        "version": SIDECAR_VERSION,
        "clock": db.current_date,
        "tables": [],
        "blobs": db.blobs.snapshot(),
    }
    for name in db.tables():
        table = db.table(name)
        payload["tables"].append(
            {
                "name": name,
                "columns": [
                    {
                        "name": column.name,
                        "type": column.type.value,
                        "nullable": column.nullable,
                    }
                    for column in table.schema.columns
                ],
                "primary_key": list(table.schema.primary_key),
                "pages": table._heap.page_numbers,
                "indexes": [
                    {
                        "name": info.name,
                        "columns": list(info.columns),
                        "unique": info.unique,
                    }
                    for info in table.indexes.values()
                ],
            }
        )
    return payload


def save_catalog(db, *, _defer_checkpoint: bool = False) -> str:
    """Write the catalog sidecar; returns its path.

    ``_defer_checkpoint`` lets :func:`repro.archis.persistence.save_archive`
    stage the catalog and the archive sidecar in one WAL transaction and
    checkpoint once, so both flip atomically with the page data.
    """
    if db.pager.path is None:
        raise StorageError("only file-backed databases can be saved")
    data = json.dumps(catalog_payload(db)).encode("utf-8")
    path = db.pager.write_sidecar(CATALOG_SUFFIX, data)
    if not _defer_checkpoint:
        db.pager.checkpoint()
    return path


def load_catalog(db) -> None:
    """Restore the catalog from the sidecar into a freshly opened db."""
    if db.pager.path is None:
        raise StorageError("only file-backed databases can be loaded")
    path = sidecar_path(db.pager.path)
    if not os.path.exists(path):
        raise CatalogError(f"no catalog sidecar at {path}")
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != SIDECAR_VERSION:
        raise CatalogError(
            f"unsupported catalog sidecar version {version!r} at {path} "
            f"(this build reads version {SIDECAR_VERSION})"
        )
    db._clock = payload["clock"]
    for spec in payload["tables"]:
        columns = [
            Column(c["name"], ColumnType(c["type"]), c["nullable"])
            for c in spec["columns"]
        ]
        table = db.create_table(
            spec["name"], columns, tuple(spec["primary_key"])
        )
        # A catalog staged by one transaction's commit may list pages
        # allocated by a *different* transaction that never committed
        # before a crash: those pages were dropped by WAL recovery and
        # can lie beyond the recovered file.  Pages inside the file that
        # lost their frames read back zero-filled, which the slotted
        # page layer parses as empty — so filtering to the recovered
        # page range is sufficient for a prefix-consistent reopen.
        page_limit = db.pager.page_count
        table._heap.adopt_pages([p for p in spec["pages"] if p < page_limit])
        # rebuild the primary-key index from the adopted rows
        if table._pk_index is not None:
            for rid, row in table._heap.scan():
                table._pk_index.insert(table.schema.key_of(row), rid)
        for index in spec["indexes"]:
            table.create_index(
                index["name"], tuple(index["columns"]), index["unique"]
            )
    db.blobs.restore(payload["blobs"])
