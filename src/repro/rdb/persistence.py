"""Catalog persistence for file-backed databases.

The pager already persists page data; this module saves and restores the
*catalog* — table schemas, heap page ownership, index definitions and the
blob directory — as a JSON sidecar next to the database file, so a
file-backed :class:`~repro.rdb.database.Database` survives process
restarts.  Indexes are rebuilt by scanning on load (they are derived
state); registered functions are code and must be re-registered by the
application.
"""

from __future__ import annotations

import json
import os

from repro.errors import CatalogError, StorageError
from repro.rdb.types import Column, ColumnType

CATALOG_SUFFIX = ".catalog.json"


def sidecar_path(db_path: str) -> str:
    return db_path + CATALOG_SUFFIX


def save_catalog(db) -> str:
    """Write the catalog sidecar; returns its path."""
    if db.pager.path is None:
        raise StorageError("only file-backed databases can be saved")
    payload = {
        "version": 1,
        "clock": db.current_date,
        "tables": [],
        "blobs": {
            "next_id": db.blobs._next_id,
            "entries": [
                {"id": blob_id, "pages": pages, "length": length}
                for blob_id, (pages, length) in db.blobs._blobs.items()
            ],
        },
    }
    for name in db.tables():
        table = db.table(name)
        payload["tables"].append(
            {
                "name": name,
                "columns": [
                    {
                        "name": column.name,
                        "type": column.type.value,
                        "nullable": column.nullable,
                    }
                    for column in table.schema.columns
                ],
                "primary_key": list(table.schema.primary_key),
                "pages": table._heap.page_numbers,
                "indexes": [
                    {
                        "name": info.name,
                        "columns": list(info.columns),
                        "unique": info.unique,
                    }
                    for info in table.indexes.values()
                ],
            }
        )
    db.pager.sync()
    path = sidecar_path(db.pager.path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return path


def load_catalog(db) -> None:
    """Restore the catalog from the sidecar into a freshly opened db."""
    if db.pager.path is None:
        raise StorageError("only file-backed databases can be loaded")
    path = sidecar_path(db.pager.path)
    if not os.path.exists(path):
        raise CatalogError(f"no catalog sidecar at {path}")
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != 1:
        raise CatalogError("unsupported catalog version")
    db._clock = payload["clock"]
    for spec in payload["tables"]:
        columns = [
            Column(c["name"], ColumnType(c["type"]), c["nullable"])
            for c in spec["columns"]
        ]
        table = db.create_table(
            spec["name"], columns, tuple(spec["primary_key"])
        )
        table._heap.adopt_pages(spec["pages"])
        # rebuild the primary-key index from the adopted rows
        if table._pk_index is not None:
            for rid, row in table._heap.scan():
                table._pk_index.insert(table.schema.key_of(row), rid)
        for index in spec["indexes"]:
            table.create_index(
                index["name"], tuple(index["columns"]), index["unique"]
            )
    blob_spec = payload["blobs"]
    db.blobs._next_id = blob_spec["next_id"]
    db.blobs._blobs = {
        entry["id"]: (list(entry["pages"]), entry["length"])
        for entry in blob_spec["entries"]
    }
