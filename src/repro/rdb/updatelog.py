"""Update log.

The ATLaS-profile ArchIS tracks changes through an update log rather than
triggers (paper Section 5.2).  The log records every mutation against the
current database; the archiver drains it in commit order.

With concurrent transactions the log needs two refinements: appends and
drains are serialized by a lock, and the drain can be *filtered* so the
archiver only consumes entries of committed transactions — entries from
a transaction still in flight stay pending (and an abort discards them
via :meth:`UpdateLog.discard_pending`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.obs.metrics import get_registry

#: archival backlog depth, process-wide (last log to change wins; one
#: ArchIS per process in the server deployment)
_BACKLOG = get_registry().gauge("updatelog.backlog")


@dataclass(frozen=True)
class LogEntry:
    """One change to the current database.

    ``op`` is ``insert``, ``update`` or ``delete``; ``row`` is the new row
    (for insert/update) or the deleted row; ``old`` is the pre-image for
    updates.  ``timestamp`` is the transaction day.
    """

    sequence: int
    timestamp: int
    table: str
    op: str
    row: tuple
    old: tuple | None = None


class UpdateLog:
    """An append-only in-memory log with drain semantics."""

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []
        self._pending: list[LogEntry] = []
        self._next_seq = 1
        self._lock = threading.Lock()

    def append(
        self,
        timestamp: int,
        table: str,
        op: str,
        row: tuple,
        old: tuple | None = None,
    ) -> LogEntry:
        with self._lock:
            entry = LogEntry(self._next_seq, timestamp, table, op, row, old)
            self._next_seq += 1
            self._entries.append(entry)
            self._pending.append(entry)
            _BACKLOG.set(len(self._pending))
            return entry

    def pending(self) -> list[LogEntry]:
        """Entries appended since the last drain."""
        with self._lock:
            return list(self._pending)

    def drain(
        self, predicate: Callable[[LogEntry], bool] | None = None
    ) -> list[LogEntry]:
        """Return pending entries and mark them consumed.

        With a ``predicate`` only matching entries are consumed; the rest
        stay pending in order.  The transaction layer drains with
        "entry's transaction has committed" so an archiver running beside
        in-flight writers never archives uncommitted changes.
        """
        with self._lock:
            if predicate is None:
                out = self._pending
                self._pending = []
            else:
                out = [e for e in self._pending if predicate(e)]
                self._pending = [
                    e for e in self._pending if not predicate(e)
                ]
            _BACKLOG.set(len(self._pending))
            return out

    def drain_ordered(
        self, predicate: Callable[[LogEntry], bool] | None = None
    ) -> list[LogEntry]:
        """:meth:`drain`, with the result sorted into archive order.

        Archival applies entries in day order, not append order:
        concurrent transactions interleave in the log by execution
        order, and the segment manager's freeze boundary relies on
        archive timestamps never going backwards.  The sort is stable,
        so entries sharing a day (one transaction's statements) keep
        their relative order.  Both the row-at-a-time archiver and the
        :class:`~repro.archis.batch.BatchArchiver` consume this, so the
        two paths see the identical entry sequence.
        """
        return sorted(self.drain(predicate), key=lambda e: e.timestamp)

    def discard_pending(
        self, predicate: Callable[[LogEntry], bool]
    ) -> list[LogEntry]:
        """Drop matching pending entries without consuming them (abort)."""
        with self._lock:
            dropped = [e for e in self._pending if predicate(e)]
            self._pending = [e for e in self._pending if not predicate(e)]
            sequences = {e.sequence for e in dropped}
            self._entries = [
                e for e in self._entries if e.sequence not in sequences
            ]
            _BACKLOG.set(len(self._pending))
            return dropped

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(list(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._pending.clear()
            _BACKLOG.set(0)
