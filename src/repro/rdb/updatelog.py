"""Update log.

The ATLaS-profile ArchIS tracks changes through an update log rather than
triggers (paper Section 5.2).  The log records every mutation against the
current database; the archiver drains it in commit order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class LogEntry:
    """One change to the current database.

    ``op`` is ``insert``, ``update`` or ``delete``; ``row`` is the new row
    (for insert/update) or the deleted row; ``old`` is the pre-image for
    updates.  ``timestamp`` is the transaction day.
    """

    sequence: int
    timestamp: int
    table: str
    op: str
    row: tuple
    old: tuple | None = None


class UpdateLog:
    """An append-only in-memory log with drain semantics."""

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []
        self._next_seq = 1
        self._drained = 0

    def append(
        self,
        timestamp: int,
        table: str,
        op: str,
        row: tuple,
        old: tuple | None = None,
    ) -> LogEntry:
        entry = LogEntry(self._next_seq, timestamp, table, op, row, old)
        self._next_seq += 1
        self._entries.append(entry)
        return entry

    def pending(self) -> list[LogEntry]:
        """Entries appended since the last drain."""
        return self._entries[self._drained :]

    def drain(self) -> list[LogEntry]:
        """Return pending entries and mark them consumed."""
        out = self.pending()
        self._drained = len(self._entries)
        return out

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._drained = 0
