"""Update log.

The ATLaS-profile ArchIS tracks changes through an update log rather than
triggers (paper Section 5.2).  The log records every mutation against the
current database; the archiver drains it in commit order.

With concurrent transactions the log needs two refinements: appends and
drains are serialized by a lock, and the drain can be *filtered* so the
archiver only consumes entries of committed transactions — entries from
a transaction still in flight stay pending (and an abort discards them
via :meth:`UpdateLog.discard_pending`).

Memory: drained entries are consumed for good — the log holds only the
pending tail, so a long-lived server never accumulates the full mutation
history in memory.  ``consumed_count`` keeps the count of entries that
left the log, and sequence numbers stay monotonic across drains.

An archiver that fails mid-apply hands the un-applied suffix back via
:meth:`requeue` — drained-but-unapplied entries must return to the front
of the pending queue, not vanish.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.obs.metrics import get_registry

#: archival backlog depth as a labelled family: every log instance
#: reports its own series (keyed by its ``scope``), so two archives in
#: one process — or the thousands of short-lived test databases — never
#: clobber each other's gauge
_BACKLOG = get_registry().labeled_gauge("updatelog.backlog", label_key="log")

_ANONYMOUS_SCOPES = itertools.count(1)


@dataclass(frozen=True)
class LogEntry:
    """One change to the current database.

    ``op`` is ``insert``, ``update`` or ``delete``; ``row`` is the new row
    (for insert/update) or the deleted row; ``old`` is the pre-image for
    updates.  ``timestamp`` is the transaction day.
    """

    sequence: int
    timestamp: int
    table: str
    op: str
    row: tuple
    old: tuple | None = None


class UpdateLog:
    """An append-only in-memory log with drain semantics.

    ``scope`` names this log's ``updatelog.backlog`` gauge series
    (defaults to a process-unique ``log-N``); the database passes its
    file path so the exposition attributes backlogs to archives.
    """

    def __init__(self, scope: str | None = None) -> None:
        self._pending: list[LogEntry] = []
        self._next_seq = 1
        self._consumed = 0
        self._lock = threading.Lock()
        self.scope = scope or f"log-{next(_ANONYMOUS_SCOPES)}"

    def _publish_backlog(self) -> None:
        _BACKLOG.set(self.scope, len(self._pending))

    def append(
        self,
        timestamp: int,
        table: str,
        op: str,
        row: tuple,
        old: tuple | None = None,
    ) -> LogEntry:
        with self._lock:
            entry = LogEntry(self._next_seq, timestamp, table, op, row, old)
            self._next_seq += 1
            self._pending.append(entry)
            self._publish_backlog()
            return entry

    def pending(self) -> list[LogEntry]:
        """Entries appended since the last drain."""
        with self._lock:
            return list(self._pending)

    @property
    def consumed_count(self) -> int:
        """Entries drained (and not requeued) over the log's lifetime."""
        with self._lock:
            return self._consumed

    def drain(
        self, predicate: Callable[[LogEntry], bool] | None = None
    ) -> list[LogEntry]:
        """Return pending entries and mark them consumed.

        With a ``predicate`` only matching entries are consumed; the rest
        stay pending in order.  The transaction layer drains with
        "entry's transaction has committed" so an archiver running beside
        in-flight writers never archives uncommitted changes.

        Consumed entries leave the log entirely (the in-memory footprint
        is the pending tail, never the full history); an archiver that
        cannot apply part of a drain must :meth:`requeue` the unapplied
        suffix or those entries are lost.
        """
        with self._lock:
            if predicate is None:
                out = self._pending
                self._pending = []
            else:
                out = [e for e in self._pending if predicate(e)]
                self._pending = [
                    e for e in self._pending if not predicate(e)
                ]
            self._consumed += len(out)
            self._publish_backlog()
            return out

    def drain_ordered(
        self, predicate: Callable[[LogEntry], bool] | None = None
    ) -> list[LogEntry]:
        """:meth:`drain`, with the result sorted into archive order.

        Archival applies entries in day order, not append order:
        concurrent transactions interleave in the log by execution
        order, and the segment manager's freeze boundary relies on
        archive timestamps never going backwards.  The sort is stable,
        so entries sharing a day (one transaction's statements) keep
        their relative order.  Both the row-at-a-time archiver and the
        :class:`~repro.archis.batch.BatchArchiver` consume this, so the
        two paths see the identical entry sequence.
        """
        return sorted(self.drain(predicate), key=lambda e: e.timestamp)

    def requeue(self, entries: list[LogEntry]) -> None:
        """Return drained-but-unapplied entries to the front of pending.

        Called by an archiver whose apply failed partway: the suffix it
        never dispatched goes back ahead of anything appended since, so
        the next drain sees the same entries in the same relative order.
        Sequence numbers are untouched (they stay monotonic per append).
        """
        if not entries:
            return
        with self._lock:
            self._pending[:0] = entries
            self._consumed -= len(entries)
            self._publish_backlog()

    def discard_pending(
        self, predicate: Callable[[LogEntry], bool]
    ) -> list[LogEntry]:
        """Drop matching pending entries without consuming them (abort)."""
        with self._lock:
            dropped = [e for e in self._pending if predicate(e)]
            self._pending = [e for e in self._pending if not predicate(e)]
            self._publish_backlog()
            return dropped

    def __len__(self) -> int:
        return len(self._pending)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self.pending())

    def clear(self) -> None:
        with self._lock:
            self._pending.clear()
            self._publish_backlog()

    def close(self) -> None:
        """Retire this log's gauge series.

        A closed database's backlog is not a live series: leaving it in
        the registry would accumulate one stale ``updatelog.backlog``
        label per archive (or per shard) ever opened in the process and
        poison the family's ``total``.  Idempotent; the log itself stays
        usable (a later append republished the series), so close order
        against in-flight drains does not matter.
        """
        with self._lock:
            _BACKLOG.remove(self.scope)
