"""Relational engine substrate: tables, indexes, triggers, update log."""

from repro.rdb.database import Database
from repro.rdb.table import IndexInfo, Table
from repro.rdb.types import Column, ColumnType, TableSchema
from repro.rdb.updatelog import LogEntry, UpdateLog

__all__ = [
    "Database",
    "IndexInfo",
    "Table",
    "Column",
    "ColumnType",
    "TableSchema",
    "LogEntry",
    "UpdateLog",
]
