"""Tables: a heap file plus secondary indexes plus trigger hooks.

Concurrency: every table carries a re-entrant **latch** (a short-lived
physical lock, distinct from the transaction layer's logical locks)
guarding heap + index mutation.  Reads materialize their result under
the latch instead of yielding lazily, so a concurrent writer can never
mutate the heap out from under an in-flight iterator.  Reads also apply
the thread's AS-OF snapshot day (see :mod:`repro.rdb.txcontext`) to
tables with ``tstart``/``tend`` columns, which is what makes snapshot
transactions lock-free: history rows are immutable, so rendering the
table as of a pinned day needs no coordination with writers at all.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import CatalogError, IntegrityError
from repro.index.bptree import BPlusTree
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile, Rid
from repro.rdb import txcontext
from repro.rdb.types import TableSchema
from repro.util.timeutil import FOREVER


@dataclass
class IndexInfo:
    """Metadata + structure for one secondary index."""

    name: str
    columns: tuple[str, ...]
    tree: BPlusTree
    unique: bool = False


RowCallback = Callable[[str, tuple, "tuple | None"], None]
# signature: (operation, new_or_old_row, old_row_for_updates)


class _NullKey:
    """Sorts before every real value: represents NULL in index keys.

    SQL NULLs are not comparable, but B+ tree keys must have a total
    order; mapping NULL to this sentinel keeps null-keyed rows out of any
    real-valued range scan while still letting them be indexed.
    """

    __slots__ = ()

    def __lt__(self, other) -> bool:
        return other is not self

    def __gt__(self, other) -> bool:
        return False

    def __le__(self, other) -> bool:
        return True

    def __ge__(self, other) -> bool:
        return other is self

    def __eq__(self, other) -> bool:
        return other is self

    def __hash__(self) -> int:
        return 0x2170

    def __repr__(self) -> str:
        return "<NULL>"


NULL_KEY = _NullKey()


class Table:
    """A stored table.

    Maintains its indexes on every mutation and fires registered triggers
    *after* the mutation, which is how the DB2-profile ArchIS tracker
    archives changes (paper Section 5.2).
    """

    def __init__(self, schema: TableSchema, pool: BufferPool) -> None:
        self.schema = schema
        self._heap = HeapFile(pool, schema.name)
        self._indexes: dict[str, IndexInfo] = {}
        self._pk_index: BPlusTree | None = None
        if schema.primary_key:
            self._pk_index = BPlusTree()
        self._triggers: list[RowCallback] = []
        # Physical latch (not a transaction lock): serializes heap/index
        # mutation and the snapshots reads take of them.
        self._latch = threading.RLock()
        # Temporal column positions, when present: tables carrying both
        # tstart and tend participate in AS-OF snapshot rendering.
        names = schema.column_names
        self._tstart_pos = names.index("tstart") if "tstart" in names else None
        self._tend_pos = names.index("tend") if "tend" in names else None

    # -- snapshot visibility -------------------------------------------------

    def _as_of_row(self, row: tuple, day: int) -> tuple | None:
        """Render ``row`` as it existed at snapshot day ``day``.

        History rows are immutable except for two in-place transitions a
        *later* transaction may perform: creating the row (``tstart`` in
        the future of the snapshot → invisible) and closing its interval
        (``tend`` set to the closer's day minus one; a closure after the
        snapshot renders back to FOREVER).  Write transactions commit on
        days spaced two apart, so ``tend == day`` can only mean a
        closure *visible* at the snapshot — never an ambiguous same-day
        closure by day+1.
        """
        if self._tstart_pos is None or self._tend_pos is None:
            return row
        if row[self._tstart_pos] > day:
            return None
        tend = row[self._tend_pos]
        if tend > day and tend != FOREVER:
            patched = list(row)
            patched[self._tend_pos] = FOREVER
            return tuple(patched)
        return row

    # -- metadata -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_count(self) -> int:
        return self._heap.record_count

    @property
    def indexes(self) -> dict[str, IndexInfo]:
        return dict(self._indexes)

    def size_bytes(self, include_indexes: bool = True) -> int:
        """On-disk footprint of heap pages (plus index estimates)."""
        total = self._heap.size_bytes()
        if include_indexes:
            for info in self._indexes.values():
                total += info.tree.approx_bytes()
            if self._pk_index is not None:
                total += self._pk_index.approx_bytes()
        return total

    # -- triggers ------------------------------------------------------------

    def add_trigger(self, callback: RowCallback) -> None:
        """Register an after-row trigger: fired with ("insert", row, None),
        ("update", new_row, old_row) or ("delete", row, None)."""
        self._triggers.append(callback)

    def remove_trigger(self, callback: RowCallback) -> None:
        self._triggers.remove(callback)

    def _fire(self, op: str, row: tuple, old: tuple | None) -> None:
        if txcontext.triggers_suppressed():
            return
        for callback in self._triggers:
            callback(op, row, old)

    # -- indexes ------------------------------------------------------------

    def create_index(
        self, name: str, columns: tuple[str, ...], unique: bool = False
    ) -> None:
        for column in columns:
            self.schema.position(column)  # validates existence
        with self._latch:
            if name in self._indexes:
                raise CatalogError(f"index {name} already exists")
            tree = BPlusTree()
            info = IndexInfo(name, columns, tree, unique)
            for rid, row in self._heap.scan():
                self._index_insert(info, row, rid)
            self._indexes[name] = info

    def drop_index(self, name: str) -> None:
        with self._latch:
            if name not in self._indexes:
                raise CatalogError(f"no index named {name}")
            del self._indexes[name]

    def _index_key(self, info: IndexInfo, row: tuple) -> tuple:
        return tuple(
            NULL_KEY if row[self.schema.position(c)] is None
            else row[self.schema.position(c)]
            for c in info.columns
        )

    def _index_insert(self, info: IndexInfo, row: tuple, rid: Rid) -> None:
        key = self._index_key(info, row)
        if info.unique and info.tree.search(key):
            raise IntegrityError(
                f"unique index {info.name}: duplicate key {key}"
            )
        info.tree.insert(key, rid)

    def _index_delete(self, info: IndexInfo, row: tuple, rid: Rid) -> None:
        info.tree.delete(self._index_key(info, row), rid)

    def find_index(self, columns: tuple[str, ...]) -> IndexInfo | None:
        """An index whose column list starts with ``columns`` (prefix match)."""
        for info in self._indexes.values():
            if info.columns[: len(columns)] == columns:
                return info
        return None

    # -- mutations -----------------------------------------------------------

    def insert(self, values: tuple) -> Rid:
        row = self.schema.validate_row(values)
        with self._latch:
            if self._pk_index is not None:
                key = self.schema.key_of(row)
                if self._pk_index.search(key):
                    raise IntegrityError(
                        f"table {self.name}: duplicate primary key {key}"
                    )
            rid = self._heap.insert(row)
            if self._pk_index is not None:
                self._pk_index.insert(self.schema.key_of(row), rid)
            for info in self._indexes.values():
                self._index_insert(info, row, rid)
            sink = txcontext.undo_sink()
            if sink is not None:
                sink.append(("insert", self, rid))
        self._fire("insert", row, None)
        return rid

    def insert_many(
        self,
        values_list: list[tuple],
        validated: bool = False,
        payloads: list[bytes] | None = None,
    ) -> list[Rid]:
        """Insert many rows under one latch hold, batching page writes.

        Equivalent to calling :meth:`insert` per row — same RIDs, same
        index entries, same undo records, same triggers — but the heap
        writes each filled page back once, which is what lets the freeze
        switch copy a segment's live rows without stalling appliers.
        ``validated=True`` skips per-row schema coercion for rows that
        were just read out of this table (already stored coerced).
        ``payloads`` (requires ``validated=True``) supplies the exact
        encoded bytes per row so a physical clone skips re-encoding;
        each entry must equal ``encode_record`` of its row.
        """
        if validated:
            rows = [tuple(values) for values in values_list]
        else:
            rows = [self.schema.validate_row(values) for values in values_list]
        with self._latch:
            if self._pk_index is not None:
                seen: set = set()
                for row in rows:
                    key = self.schema.key_of(row)
                    if key in seen or self._pk_index.search(key):
                        raise IntegrityError(
                            f"table {self.name}: duplicate primary key {key}"
                        )
                    seen.add(key)
            if payloads is not None:
                rids = self._heap.insert_payloads(payloads)
            else:
                rids = self._heap.insert_many(rows)
            sink = txcontext.undo_sink()
            for row, rid in zip(rows, rids):
                if self._pk_index is not None:
                    self._pk_index.insert(self.schema.key_of(row), rid)
                for info in self._indexes.values():
                    self._index_insert(info, row, rid)
                if sink is not None:
                    sink.append(("insert", self, rid))
        for row in rows:
            self._fire("insert", row, None)
        return rids

    def read(self, rid: Rid) -> tuple:
        with self._latch:
            return self._heap.read(rid)

    def update_rid(self, rid: Rid, values: tuple) -> Rid:
        """Rewrite the row at ``rid``; returns the (possibly moved) RID."""
        row = self.schema.validate_row(values)
        with self._latch:
            old = self._heap.read(rid)
            new_rid = self._heap.update(rid, row)
            if self._pk_index is not None:
                self._pk_index.delete(self.schema.key_of(old), rid)
                self._pk_index.insert(self.schema.key_of(row), new_rid)
            for info in self._indexes.values():
                self._index_delete(info, old, rid)
                self._index_insert(info, row, new_rid)
            sink = txcontext.undo_sink()
            if sink is not None:
                sink.append(("update", self, rid, new_rid, old))
        self._fire("update", row, old)
        return new_rid

    def delete_rid(self, rid: Rid) -> None:
        with self._latch:
            old = self._heap.read(rid)
            self._heap.delete(rid)
            if self._pk_index is not None:
                self._pk_index.delete(self.schema.key_of(old), rid)
            for info in self._indexes.values():
                self._index_delete(info, old, rid)
            sink = txcontext.undo_sink()
            if sink is not None:
                sink.append(("delete", self, old, rid))
        self._fire("delete", old, None)

    def lookup_pk(self, key: tuple) -> Rid | None:
        """RID of the row with the given primary key, when one exists."""
        if self._pk_index is None:
            raise CatalogError(f"table {self.name} has no primary key")
        with self._latch:
            hits = self._pk_index.search(key)
            return hits[0] if hits else None

    def update_where(
        self, predicate: Callable[[dict], bool], changes: dict[str, object]
    ) -> int:
        """Update all rows matching a predicate over a row dict.

        Convenience API for direct (non-SQL) callers such as the workload
        driver.  Returns the number of rows changed.
        """
        for column in changes:
            self.schema.position(column)
        with self._latch:
            victims = [
                (rid, row) for rid, row in self._heap.scan()
                if predicate(self.row_dict(row))
            ]
            for rid, row in victims:
                new_row = list(row)
                for column, value in changes.items():
                    new_row[self.schema.position(column)] = value
                self.update_rid(rid, tuple(new_row))
        return len(victims)

    def delete_where(self, predicate: Callable[[dict], bool]) -> int:
        with self._latch:
            victims = [
                rid for rid, row in self._heap.scan()
                if predicate(self.row_dict(row))
            ]
            for rid in victims:
                self.delete_rid(rid)
        return len(victims)

    def truncate(self) -> None:
        with self._latch:
            self._heap.truncate()
            for info in self._indexes.values():
                info.tree = BPlusTree()
            if self._pk_index is not None:
                self._pk_index = BPlusTree()

    def compact(self) -> None:
        """Rewrite the heap densely and rebuild all indexes.

        Does not fire triggers: compaction is a physical reorganization,
        not a logical change.  Used after segment freezes and archive
        compression reclaim space (paper Section 6.1 rewrites segments).
        """
        with self._latch:
            self._heap.compact()
            for info in self._indexes.values():
                info.tree = BPlusTree()
            if self._pk_index is not None:
                self._pk_index = BPlusTree()
            for rid, row in self._heap.scan():
                if self._pk_index is not None:
                    self._pk_index.insert(self.schema.key_of(row), rid)
                for info in self._indexes.values():
                    self._index_insert(info, row, rid)

    def prune_empty_pages(self) -> int:
        """Release heap pages that hold no live records.

        RIDs never change, so indexes stay valid and no rebuild happens —
        the cheap space reclamation the background segment rewrite uses
        in place of :meth:`compact` (whose full index rebuild would hold
        the history lock for O(heap)).  Returns the pages released.
        """
        with self._latch:
            return self._heap.prune_empty_pages()

    # -- reads ----------------------------------------------------------------

    def scan(self) -> Iterator[tuple[Rid, tuple]]:
        """All (rid, row) pairs, materialized under the latch.

        Materializing makes the scan a consistent point-in-time picture
        even with concurrent writers (and fixes the pre-existing hazard
        of mutating the heap under a live iterator).  When the calling
        thread has an AS-OF day pinned, rows are rendered at that day.
        """
        with self._latch:
            items = list(self._heap.scan())
        day = txcontext.as_of_day()
        if day is None:
            return iter(items)
        out = []
        for rid, row in items:
            rendered = self._as_of_row(row, day)
            if rendered is not None:
                out.append((rid, rendered))
        return iter(out)

    def rows(self) -> Iterator[tuple]:
        return iter([row for _, row in self.scan()])

    def row_dict(self, row: tuple) -> dict[str, object]:
        return dict(zip(self.schema.column_names, row))

    def index_records_containing(
        self,
        index_name: str,
        low: tuple,
        high: tuple,
        pattern: bytes,
        high_inclusive: bool = True,
    ) -> list[tuple[bytes, tuple]]:
        """(payload, row) pairs in an index range containing ``pattern``.

        A raw-storage bulk read (no AS-OF rendering) with a byte-level
        prefilter — rows that cannot contain the searched field value
        are skipped before decoding.  Conservative: the caller must
        re-check the decoded field (the pattern can straddle another
        field's bytes).  The freeze switch uses this to pull a segment's
        live rows without decoding the dead majority, then clones the
        payloads directly (see :meth:`insert_many`'s ``payloads``).
        """
        info = self._indexes.get(index_name)
        if info is None:
            raise CatalogError(f"no index named {index_name}")
        with self._latch:
            rids = [
                rid
                for _, rid in info.tree.range(
                    low, high, True, high_inclusive
                )
            ]
            return self._heap.read_records_containing(rids, pattern)

    def index_scan(
        self,
        index_name: str,
        low: tuple | None = None,
        high: tuple | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[Rid, tuple]]:
        """Range-scan an index, yielding (rid, row) in key order.

        Materialized under the latch and rendered at the thread's AS-OF
        day, like :meth:`scan`.
        """
        info = self._indexes.get(index_name)
        if info is None:
            raise CatalogError(f"no index named {index_name}")
        with self._latch:
            rids = [
                rid
                for _, rid in info.tree.range(
                    low, high, low_inclusive, high_inclusive
                )
            ]
            # key-order reads revisit pages arbitrarily; the bulk read
            # parses each touched page once instead of once per row
            items = list(zip(rids, self._heap.read_many(rids)))
        day = txcontext.as_of_day()
        if day is None:
            return iter(items)
        out = []
        for rid, row in items:
            rendered = self._as_of_row(row, day)
            if rendered is not None:
                out.append((rid, rendered))
        return iter(out)
