"""Tables: a heap file plus secondary indexes plus trigger hooks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import CatalogError, IntegrityError
from repro.index.bptree import BPlusTree
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile, Rid
from repro.rdb.types import TableSchema


@dataclass
class IndexInfo:
    """Metadata + structure for one secondary index."""

    name: str
    columns: tuple[str, ...]
    tree: BPlusTree
    unique: bool = False


RowCallback = Callable[[str, tuple, "tuple | None"], None]
# signature: (operation, new_or_old_row, old_row_for_updates)


class _NullKey:
    """Sorts before every real value: represents NULL in index keys.

    SQL NULLs are not comparable, but B+ tree keys must have a total
    order; mapping NULL to this sentinel keeps null-keyed rows out of any
    real-valued range scan while still letting them be indexed.
    """

    __slots__ = ()

    def __lt__(self, other) -> bool:
        return other is not self

    def __gt__(self, other) -> bool:
        return False

    def __le__(self, other) -> bool:
        return True

    def __ge__(self, other) -> bool:
        return other is self

    def __eq__(self, other) -> bool:
        return other is self

    def __hash__(self) -> int:
        return 0x2170

    def __repr__(self) -> str:
        return "<NULL>"


NULL_KEY = _NullKey()


class Table:
    """A stored table.

    Maintains its indexes on every mutation and fires registered triggers
    *after* the mutation, which is how the DB2-profile ArchIS tracker
    archives changes (paper Section 5.2).
    """

    def __init__(self, schema: TableSchema, pool: BufferPool) -> None:
        self.schema = schema
        self._heap = HeapFile(pool, schema.name)
        self._indexes: dict[str, IndexInfo] = {}
        self._pk_index: BPlusTree | None = None
        if schema.primary_key:
            self._pk_index = BPlusTree()
        self._triggers: list[RowCallback] = []

    # -- metadata -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_count(self) -> int:
        return self._heap.record_count

    @property
    def indexes(self) -> dict[str, IndexInfo]:
        return dict(self._indexes)

    def size_bytes(self, include_indexes: bool = True) -> int:
        """On-disk footprint of heap pages (plus index estimates)."""
        total = self._heap.size_bytes()
        if include_indexes:
            for info in self._indexes.values():
                total += info.tree.approx_bytes()
            if self._pk_index is not None:
                total += self._pk_index.approx_bytes()
        return total

    # -- triggers ------------------------------------------------------------

    def add_trigger(self, callback: RowCallback) -> None:
        """Register an after-row trigger: fired with ("insert", row, None),
        ("update", new_row, old_row) or ("delete", row, None)."""
        self._triggers.append(callback)

    def remove_trigger(self, callback: RowCallback) -> None:
        self._triggers.remove(callback)

    def _fire(self, op: str, row: tuple, old: tuple | None) -> None:
        for callback in self._triggers:
            callback(op, row, old)

    # -- indexes ------------------------------------------------------------

    def create_index(
        self, name: str, columns: tuple[str, ...], unique: bool = False
    ) -> None:
        if name in self._indexes:
            raise CatalogError(f"index {name} already exists")
        for column in columns:
            self.schema.position(column)  # validates existence
        tree = BPlusTree()
        info = IndexInfo(name, columns, tree, unique)
        for rid, row in self._heap.scan():
            self._index_insert(info, row, rid)
        self._indexes[name] = info

    def drop_index(self, name: str) -> None:
        if name not in self._indexes:
            raise CatalogError(f"no index named {name}")
        del self._indexes[name]

    def _index_key(self, info: IndexInfo, row: tuple) -> tuple:
        return tuple(
            NULL_KEY if row[self.schema.position(c)] is None
            else row[self.schema.position(c)]
            for c in info.columns
        )

    def _index_insert(self, info: IndexInfo, row: tuple, rid: Rid) -> None:
        key = self._index_key(info, row)
        if info.unique and info.tree.search(key):
            raise IntegrityError(
                f"unique index {info.name}: duplicate key {key}"
            )
        info.tree.insert(key, rid)

    def _index_delete(self, info: IndexInfo, row: tuple, rid: Rid) -> None:
        info.tree.delete(self._index_key(info, row), rid)

    def find_index(self, columns: tuple[str, ...]) -> IndexInfo | None:
        """An index whose column list starts with ``columns`` (prefix match)."""
        for info in self._indexes.values():
            if info.columns[: len(columns)] == columns:
                return info
        return None

    # -- mutations -----------------------------------------------------------

    def insert(self, values: tuple) -> Rid:
        row = self.schema.validate_row(values)
        if self._pk_index is not None:
            key = self.schema.key_of(row)
            if self._pk_index.search(key):
                raise IntegrityError(
                    f"table {self.name}: duplicate primary key {key}"
                )
        rid = self._heap.insert(row)
        if self._pk_index is not None:
            self._pk_index.insert(self.schema.key_of(row), rid)
        for info in self._indexes.values():
            self._index_insert(info, row, rid)
        self._fire("insert", row, None)
        return rid

    def read(self, rid: Rid) -> tuple:
        return self._heap.read(rid)

    def update_rid(self, rid: Rid, values: tuple) -> Rid:
        """Rewrite the row at ``rid``; returns the (possibly moved) RID."""
        row = self.schema.validate_row(values)
        old = self._heap.read(rid)
        new_rid = self._heap.update(rid, row)
        if self._pk_index is not None:
            self._pk_index.delete(self.schema.key_of(old), rid)
            self._pk_index.insert(self.schema.key_of(row), new_rid)
        for info in self._indexes.values():
            self._index_delete(info, old, rid)
            self._index_insert(info, row, new_rid)
        self._fire("update", row, old)
        return new_rid

    def delete_rid(self, rid: Rid) -> None:
        old = self._heap.read(rid)
        self._heap.delete(rid)
        if self._pk_index is not None:
            self._pk_index.delete(self.schema.key_of(old), rid)
        for info in self._indexes.values():
            self._index_delete(info, old, rid)
        self._fire("delete", old, None)

    def lookup_pk(self, key: tuple) -> Rid | None:
        """RID of the row with the given primary key, when one exists."""
        if self._pk_index is None:
            raise CatalogError(f"table {self.name} has no primary key")
        hits = self._pk_index.search(key)
        return hits[0] if hits else None

    def update_where(
        self, predicate: Callable[[dict], bool], changes: dict[str, object]
    ) -> int:
        """Update all rows matching a predicate over a row dict.

        Convenience API for direct (non-SQL) callers such as the workload
        driver.  Returns the number of rows changed.
        """
        for column in changes:
            self.schema.position(column)
        victims = [
            (rid, row) for rid, row in self._heap.scan()
            if predicate(self.row_dict(row))
        ]
        for rid, row in victims:
            new_row = list(row)
            for column, value in changes.items():
                new_row[self.schema.position(column)] = value
            self.update_rid(rid, tuple(new_row))
        return len(victims)

    def delete_where(self, predicate: Callable[[dict], bool]) -> int:
        victims = [
            rid for rid, row in self._heap.scan()
            if predicate(self.row_dict(row))
        ]
        for rid in victims:
            self.delete_rid(rid)
        return len(victims)

    def truncate(self) -> None:
        self._heap.truncate()
        for info in self._indexes.values():
            info.tree = BPlusTree()
        if self._pk_index is not None:
            self._pk_index = BPlusTree()

    def compact(self) -> None:
        """Rewrite the heap densely and rebuild all indexes.

        Does not fire triggers: compaction is a physical reorganization,
        not a logical change.  Used after segment freezes and archive
        compression reclaim space (paper Section 6.1 rewrites segments).
        """
        self._heap.compact()
        for info in self._indexes.values():
            info.tree = BPlusTree()
        if self._pk_index is not None:
            self._pk_index = BPlusTree()
        for rid, row in self._heap.scan():
            if self._pk_index is not None:
                self._pk_index.insert(self.schema.key_of(row), rid)
            for info in self._indexes.values():
                self._index_insert(info, row, rid)

    # -- reads ----------------------------------------------------------------

    def scan(self) -> Iterator[tuple[Rid, tuple]]:
        return self._heap.scan()

    def rows(self) -> Iterator[tuple]:
        for _, row in self._heap.scan():
            yield row

    def row_dict(self, row: tuple) -> dict[str, object]:
        return dict(zip(self.schema.column_names, row))

    def index_scan(
        self,
        index_name: str,
        low: tuple | None = None,
        high: tuple | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[Rid, tuple]]:
        """Range-scan an index, yielding (rid, row) in key order."""
        info = self._indexes.get(index_name)
        if info is None:
            raise CatalogError(f"no index named {index_name}")
        for _, rid in info.tree.range(low, high, low_inclusive, high_inclusive):
            yield rid, self._heap.read(rid)
