"""Concurrent-access subsystem: MVCC transactions over transaction time.

See :mod:`repro.txn.manager` for the model.  Public surface:

* :class:`TxnManager` — hands out snapshots and write transactions.
* :class:`Snapshot` — lock-free reads AS OF a pinned commit day.
* :class:`Transaction` — strict-2PL writes on a private commit day.
* :class:`LockTable` — per-table exclusive locks with deadlock detection.
"""

from repro.txn.locks import LockTable
from repro.txn.manager import (
    ARCHIVE_RESOURCE,
    CATALOG_RESOURCE,
    DAY_GAP,
    Snapshot,
    Transaction,
    TxnManager,
)

__all__ = [
    "ARCHIVE_RESOURCE",
    "CATALOG_RESOURCE",
    "DAY_GAP",
    "LockTable",
    "Snapshot",
    "Transaction",
    "TxnManager",
]
