"""Point-in-time reconstruction of tracked current tables.

Current tables are mutated in place — they carry no ``tstart``/``tend``
intervals — so a snapshot cannot read them directly: it would see later
(or worse, uncommitted) writes.  The archive already holds everything
needed: the paper's snapshot query (Section 6.3) rebuilds a relation's
state at day ``T`` from its key table (which keys were alive) and its
attribute H-tables (each attribute's value at ``T``).

:func:`snapshot_table` materializes that reconstruction into an
ephemeral in-memory :class:`~repro.rdb.table.Table` with the current
table's schema, backed by a throwaway pager so nothing touches the real
database's storage or WAL.  Snapshot transactions substitute it for the
live table through the thread-local overlay in
:mod:`repro.rdb.txcontext`.

Correctness with writers in flight relies on the gapped-commit-day MVCC
scheme (see :mod:`repro.txn.manager`): an uncommitted writer's H-table
rows open at ``tstart > T`` (invisible) and its interval closures write
``tend = W - 1 >= T + 1`` (still live at ``T``), so the H-table read at
``T`` is snapshot-consistent without any locks.
"""

from __future__ import annotations

from repro.obs.metrics import get_registry
from repro.rdb import txcontext
from repro.rdb.table import Table
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager

_RECONSTRUCTIONS = get_registry().counter("txn.snapshot.reconstructions")


def _alive_keys(archis, relation, day: int) -> list:
    """Keys of ``relation`` whose key-table interval covers ``day``.

    Mirrors ``ArchIS.snapshot_rows``: restricted to the segment covering
    the day and read through the compressed archive when that segment
    has been BlockZIPed.  A sharded coordinator holds no history itself —
    the alive set is the union over its shard stores (keys are disjoint
    across shards).
    """
    stores = getattr(archis, "shard_stores", ())
    if stores:
        keys: list = []
        for store in stores:
            keys.extend(_alive_keys(store, store.relations[relation.name], day))
        return keys
    table_name = relation.key_table
    segno = archis.segments.segment_for(day)
    table = archis.db.table(table_name)
    tstart_pos = table.schema.position("tstart")
    tend_pos = table.schema.position("tend")
    seg_pos = table.schema.position("segno")
    if table_name in archis.archive.compressed_tables and (
        segno != archis.segments.live_segno
    ):
        rows = archis.archive.read_rows(table_name, [segno])
        return [
            row[0]
            for row in rows
            if row[seg_pos] == segno
            and row[tstart_pos] <= day <= row[tend_pos]
        ]
    result = archis.db.sql(
        f"SELECT t.id FROM {table_name} t "
        f"WHERE t.segno = :segno AND t.tstart <= :d AND t.tend >= :d",
        {"segno": segno, "d": day},
    )
    return [row[0] for row in result.rows]


def snapshot_table(archis, relation_name: str, day: int) -> Table:
    """The state of tracked relation ``relation_name`` at day ``day``,
    as an ephemeral in-memory table with the current table's schema.

    Untracked columns (none, under the default ``track_table``) cannot
    be recovered from the archive and come back as NULL.
    """
    relation = archis.relations[relation_name]
    # reconstruction reads the real catalog: drop the snapshot's own
    # overlay for this block or resolving the current table's schema
    # would re-enter the provider for the name being reconstructed
    with txcontext.providing_tables(None):
        current = archis.db.table(relation_name)
        keys = sorted(_alive_keys(archis, relation, day))
        values = {
            attribute: dict(
                archis.snapshot_rows(relation_name, attribute, day).rows
            )
            for attribute in relation.attributes
        }
    rows = []
    for key in keys:
        row = []
        for column in current.schema.column_names:
            if column == relation.key:
                row.append(key)
            elif column in values:
                row.append(values[column].get(key))
            else:
                row.append(None)
        rows.append(tuple(row))
    pool = BufferPool(Pager(None, durability="none"), capacity=256)
    view = Table(current.schema, pool)
    with txcontext.no_undo():
        for row in rows:
            view.insert(row)
    _RECONSTRUCTIONS.inc()
    return view
