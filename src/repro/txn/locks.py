"""Per-resource exclusive locks with deadlock detection.

Write transactions lock whole tables (plus the pseudo-resources
``#catalog`` for DDL and ``#archive`` for mutations the tracker mirrors
into shared H-tables).  Locks are held to end of transaction (strict
two-phase locking); read-only snapshot transactions never appear here at
all — MVCC gives them a consistent view for free.

Deadlocks are detected eagerly on every blocked acquire: each waiter
waits for exactly one resource and each resource has one owner, so the
wait-for graph is a functional graph and cycle detection is a chain
walk.  The *requester* that would close a cycle is the victim — it gets
a :class:`~repro.errors.DeadlockError` immediately instead of timing
out, and should abort and retry.  A separate wall-clock timeout guards
against non-cycle starvation (e.g. a stuck owner).
"""

from __future__ import annotations

import threading
from time import monotonic

from repro.errors import DeadlockError, LockTimeoutError, TxnError
from repro.obs.metrics import get_registry

_ACQUIRED = get_registry().counter("txn.locks.acquired")
_WAITS = get_registry().counter("txn.locks.waits")
_WAIT_SECONDS = get_registry().histogram("txn.lock_wait.seconds")
_DEADLOCKS = get_registry().counter("txn.deadlocks")
_TIMEOUTS = get_registry().counter("txn.lock_timeouts")


class HistoryLock:
    """A reader-writer lock guarding the shared H-tables.

    Snapshot reads hold the **read** side while they scan history;
    update-log application (and any other H-table mutation) holds the
    **write** side.  MVCC day filtering alone is not enough: applying an
    entry *rewrites* rows (closing a version changes its ``tend``, which
    can move the row within its page), so an unguarded concurrent scan
    can miss a row entirely even when the entry's day is beyond the
    snapshot.

    The read side is re-entrant per thread — the XQuery path calls
    ``apply_pending`` mid-read, which must become a no-op rather than a
    self-deadlock (see :meth:`held_read`).  The write side is re-entrant
    per thread too: the transaction manager's ``apply_committed`` holds
    write while the batch archiver (and, in background-maintenance mode,
    the segment switch) re-acquires it on the same thread.  Writers are
    preferred: once one waits, new first-acquisition readers queue
    behind it.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writer_owner: int | None = None
        self._writer_depth = 0
        self._writers_waiting = 0
        self._local = threading.local()

    def held_read(self) -> bool:
        """Is the calling thread inside the read side?"""
        return getattr(self._local, "depth", 0) > 0

    def held_write(self) -> bool:
        """Is the calling thread inside the write side?"""
        return self._writer_owner == threading.get_ident()

    def acquire_read(self) -> None:
        depth = getattr(self._local, "depth", 0)
        if depth:
            self._local.depth = depth + 1
            return
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        self._local.depth = 1

    def release_read(self) -> None:
        self._local.depth -= 1
        if self._local.depth:
            return
        with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        me = threading.get_ident()
        if self._writer_owner == me:
            self._writer_depth += 1
            return
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
                self._writer_active = True
                self._writer_owner = me
                self._writer_depth = 1
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        if self._writer_depth > 1:
            self._writer_depth -= 1
            return
        with self._cond:
            self._writer_owner = None
            self._writer_depth = 0
            self._writer_active = False
            self._cond.notify_all()

    class _Side:
        def __init__(self, acquire, release):
            self._acquire = acquire
            self._release = release

        def __enter__(self):
            self._acquire()

        def __exit__(self, *exc):
            self._release()

    def read(self) -> "_Side":
        return self._Side(self.acquire_read, self.release_read)

    def write(self) -> "_Side":
        return self._Side(self.acquire_write, self.release_write)


class LockTable:
    """Exclusive, re-entrant, per-resource locks keyed by transaction."""

    def __init__(self, timeout: float = 5.0) -> None:
        self.default_timeout = timeout
        self._cond = threading.Condition()
        self._owners: dict[str, int] = {}  # resource -> owning txn id
        self._depth: dict[tuple[int, str], int] = {}  # re-entrancy count
        self._waits: dict[int, str] = {}  # blocked txn -> awaited resource

    def acquire(
        self, txn_id: int, resource: str, timeout: float | None = None
    ) -> None:
        """Take ``resource`` exclusively for ``txn_id`` (re-entrant).

        Raises :class:`DeadlockError` if waiting would close a wait-for
        cycle, :class:`LockTimeoutError` after ``timeout`` seconds.
        """
        if timeout is None:
            timeout = self.default_timeout
        deadline = monotonic() + timeout
        wait_started: float | None = None
        with self._cond:
            while True:
                owner = self._owners.get(resource)
                if owner is None or owner == txn_id:
                    self._owners[resource] = txn_id
                    key = (txn_id, resource)
                    self._depth[key] = self._depth.get(key, 0) + 1
                    self._waits.pop(txn_id, None)
                    _ACQUIRED.inc()
                    if wait_started is not None:
                        _WAIT_SECONDS.observe(monotonic() - wait_started)
                    return
                self._waits[txn_id] = resource
                if self._closes_cycle(txn_id):
                    del self._waits[txn_id]
                    _DEADLOCKS.inc()
                    if wait_started is not None:
                        _WAIT_SECONDS.observe(monotonic() - wait_started)
                    raise DeadlockError(
                        f"txn {txn_id} waiting for {resource!r} (held by "
                        f"txn {owner}) would deadlock; aborting the wait"
                    )
                remaining = deadline - monotonic()
                if remaining <= 0:
                    del self._waits[txn_id]
                    _TIMEOUTS.inc()
                    _WAIT_SECONDS.observe(timeout)
                    raise LockTimeoutError(
                        f"txn {txn_id} timed out after {timeout:.1f}s "
                        f"waiting for {resource!r} (held by txn {owner})"
                    )
                if wait_started is None:
                    wait_started = monotonic()
                    _WAITS.inc()
                # Bounded wait so a cycle formed *while we sleep* (another
                # txn starts waiting on a lock we hold) is re-checked.
                self._cond.wait(min(remaining, 0.05))

    def _closes_cycle(self, start: int) -> bool:
        """Does the wait-for chain starting at ``start`` loop back?

        Each transaction waits for at most one resource and each resource
        has exactly one owner, so the graph is functional: follow
        waiter → resource → owner until the chain ends or revisits.
        """
        current = start
        seen: set[int] = set()
        while True:
            resource = self._waits.get(current)
            if resource is None:
                return False
            owner = self._owners.get(resource)
            if owner is None or owner == current:
                return False
            if owner == start:
                return True
            if owner in seen:
                return False  # a cycle not involving the requester
            seen.add(owner)
            current = owner

    def release(self, txn_id: int, resource: str) -> None:
        with self._cond:
            key = (txn_id, resource)
            depth = self._depth.get(key)
            if depth is None or self._owners.get(resource) != txn_id:
                raise TxnError(
                    f"txn {txn_id} does not hold lock on {resource!r}"
                )
            if depth > 1:
                self._depth[key] = depth - 1
                return
            del self._depth[key]
            del self._owners[resource]
            self._cond.notify_all()

    def release_all(self, txn_id: int) -> list[str]:
        """Release every lock ``txn_id`` holds (end of transaction)."""
        with self._cond:
            held = [r for r, o in self._owners.items() if o == txn_id]
            for resource in held:
                del self._owners[resource]
                self._depth.pop((txn_id, resource), None)
            self._waits.pop(txn_id, None)
            if held:
                self._cond.notify_all()
            return held

    def held_by(self, txn_id: int) -> list[str]:
        with self._cond:
            return sorted(r for r, o in self._owners.items() if o == txn_id)

    def stats(self) -> dict[str, int]:
        with self._cond:
            return {
                "held": len(self._owners),
                "waiting": len(self._waits),
            }
