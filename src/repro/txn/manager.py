"""MVCC transactions over the transaction-time machinery.

The paper's central property — every past state of the database is an
immutable, queryable object — is exactly what makes concurrency cheap:

* A **snapshot transaction** pins a commit day and runs every query AS
  OF that day through the ordinary plan/segment path.  History rows are
  immutable, so snapshot reads take *no locks at all*; the only
  coordination is the thread-local AS-OF day (:mod:`repro.rdb.txcontext`)
  that the table layer uses to render intervals at the pinned day.
* A **write transaction** gets its own commit day and stamps every
  mutation with it, takes per-table exclusive locks from the
  :class:`~repro.txn.locks.LockTable` (strict 2PL, wait-for-graph
  deadlock detection), and commits through the WAL's group-commit path.

Commit days are spaced **two apart**.  The gap is what makes snapshot
visibility unambiguous: closing a history interval at day ``W`` writes
``tend = W - 1``, so with gapped days a snapshot day ``T`` can never
equal another transaction's ``W - 1`` — a stored ``tend`` at or before
the snapshot is always a closure the snapshot must honour, and one after
it always renders back to FOREVER.

Durability: heap page lists live in the catalog sidecar, so commit on a
file-backed database stages the catalog (and the ArchIS sidecar, when an
archive is attached) as META frames tagged with the transaction's id,
then appends the COMMIT frame — recovery replays all of it or none.
Abort replays the transaction's undo log in reverse (with triggers
muted), discards its update-log entries and drops its WAL dirty state.
"""

from __future__ import annotations

import contextlib
import threading
import time

from repro.errors import TxnError
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.rdb import txcontext
from repro.rdb.database import Database
from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.sql.session import execute_statement
from repro.txn.locks import HistoryLock, LockTable

_BEGUN = get_registry().counter("txn.begun")
_COMMITS = get_registry().counter("txn.commits")
_COMMIT_SECONDS = get_registry().histogram("txn.commit.seconds")
_ABORTS = get_registry().counter("txn.aborts")
_SNAPSHOTS = get_registry().counter("txn.snapshots")
_ACTIVE = get_registry().gauge("txn.active")

#: Commit days are spaced this far apart (see the module docstring).
DAY_GAP = 2

#: Pseudo-resources: DDL serializes on the catalog; DML on tracked
#: tables serializes on the shared archive structures (H-tables, the
#: segment manager) that the tracker mutates alongside the base table.
CATALOG_RESOURCE = "#catalog"
ARCHIVE_RESOURCE = "#archive"


def referenced_tables(statement) -> set[str]:
    """Every table name a statement reads, including subquery sources."""
    tables: set[str] = set()

    def visit_exprs(exprs) -> None:
        for expr in exprs:
            if expr is None:
                continue
            for node in ast.walk_exprs(expr):
                if isinstance(node, ast.Subquery):
                    visit_select(node.select)
                elif isinstance(
                    node, (ast.InSubquery, ast.ExistsSubquery)
                ):
                    visit_select(node.subquery.select)

    def visit_select(select) -> None:
        for source in ast.flat_source_refs(select.sources):
            if isinstance(source, ast.TableRef):
                tables.add(source.name)
        visit_exprs(item.expr for item in select.items)
        visit_exprs([select.where])
        visit_exprs(select.group_by)
        visit_exprs(item.expr for item in select.order_by)

    if isinstance(statement, ast.Select):
        visit_select(statement)
    elif isinstance(statement, ast.InsertSelect):
        visit_select(statement.select)
    elif isinstance(statement, ast.Insert):
        for row in statement.rows:
            visit_exprs(row)
    elif isinstance(statement, ast.Update):
        visit_exprs(expr for _, expr in statement.assignments)
        visit_exprs([statement.where])
    elif isinstance(statement, ast.Delete):
        visit_exprs([statement.where])
    return tables


class Snapshot:
    """A read-only view of the database as of one commit day.

    Queries run through the ordinary SQL/XQuery paths with the AS-OF day
    pinned on the calling thread; no locks are taken.  A snapshot may be
    shared across threads — the pin is scoped per call.

    H-table reads render intervals at the pinned day.  *Current* tables
    are mutated in place, so reads of tracked relations are served from
    an ephemeral :func:`~repro.txn.reconstruct.snapshot_table`
    reconstruction instead, cached per relation (history at or before
    the pinned day is immutable, so the cache never goes stale).
    Untracked, un-archived tables have no history to reconstruct from
    and read as they are now.
    """

    def __init__(self, manager: "TxnManager", day: int) -> None:
        self._manager = manager
        self.day = day
        self._views: dict[str, object] = {}
        self._views_lock = threading.Lock()

    def _provide(self, name: str):
        """Thread-local table overlay: tracked name → reconstruction."""
        archis = self._manager.archis
        if archis is None or name not in getattr(archis, "relations", {}):
            return None
        with self._views_lock:
            view = self._views.get(name)
            if view is None:
                from repro.txn.reconstruct import snapshot_table

                view = snapshot_table(archis, name, self.day)
                self._views[name] = view
            return view

    def sql(self, text: str, params=None):
        """Run a SELECT against the snapshot."""
        statement = parse_sql(text)
        if not isinstance(statement, ast.Select):
            raise TxnError("snapshots are read-only; use a transaction")
        return self.run(
            execute_statement, self._manager.db, statement, params, text=text
        )

    def run(self, fn, *args, **kwargs):
        """Call ``fn`` with the snapshot pinned (for non-SQL read APIs,
        e.g. ``ArchIS.xquery`` or the history table functions)."""
        self._manager.apply_committed()
        with self._manager.history.read(), txcontext.reading_as_of(
            self.day
        ), txcontext.providing_tables(self._provide):
            previous = txcontext.clock_day()
            txcontext.set_clock(self.day)
            try:
                return fn(*args, **kwargs)
            finally:
                txcontext.set_clock(previous)

    def __repr__(self) -> str:
        return f"<Snapshot day={self.day}>"


class Transaction:
    """One write transaction: a commit day, an undo log and locks."""

    def __init__(self, manager: "TxnManager", txn_id: int, day: int) -> None:
        self.manager = manager
        self.id = txn_id
        self.day = day
        self.undo: list[tuple] = []
        self.state = "active"

    def sql(self, text: str, params=None):
        return self.manager.execute(self, text, params)

    def commit(self) -> None:
        self.manager.commit(self)

    def abort(self) -> None:
        self.manager.abort(self)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.state == "active":
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False

    def __repr__(self) -> str:
        return f"<Transaction {self.id} day={self.day} {self.state}>"


class TxnManager:
    """Hands out snapshots and write transactions over one database."""

    def __init__(
        self,
        db: Database,
        archis=None,
        lock_timeout: float = 5.0,
    ) -> None:
        self.db = db
        self.archis = archis
        self.locks = LockTable(lock_timeout)
        self._lock = threading.Lock()
        self._next_txn = 1
        self._active: dict[int, Transaction] = {}
        # Set when a commit fails *after* its update-log entries were
        # drained into the H-tables: abort() can no longer take them
        # back out, so the in-process archive is untrustworthy and the
        # manager refuses new work (reopening the database recovers —
        # crash consistency is guaranteed by the txn-tagged WAL frames).
        self._poisoned: str | None = None
        # The last day whose effects are fully committed.  Starts at the
        # database clock: everything written before the manager existed
        # is by definition committed.
        self._last_completed_day = db.current_date
        self._next_day = db.current_date + DAY_GAP
        # Guards the shared H-tables: snapshot reads hold the read side,
        # update-log application / tracked DML / undo replay the write
        # side.  Applying an entry rewrites rows (closing a version can
        # move it within its page), so even MVCC-invisible mutations
        # must not run under an active history scan.  The archive already
        # owns such a lock (its maintenance worker and batch archiver
        # synchronize on it); adopt that instance so there is exactly one
        # lock per archive.
        self.history = (
            getattr(archis, "history_lock", None) if archis is not None else None
        ) or HistoryLock()
        if archis is not None:
            archis.txn_manager = self
            archis.segments.freeze_floor = self._freeze_floor
            # a sharded coordinator archives through per-shard segment
            # managers; every one must respect the snapshot floor or a
            # shard-local freeze could strand an active snapshot's day
            # in a frozen segment mid-read
            for store in getattr(archis, "shard_stores", ()):
                store.segments.freeze_floor = self._freeze_floor

    # -- lifecycle ---------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a write transaction on its own commit day."""
        self._check_poisoned()
        with self._lock:
            txn_id = self._next_txn
            self._next_txn += 1
            day = self._next_day
            self._next_day += DAY_GAP
            txn = Transaction(self, txn_id, day)
            self._active[txn_id] = txn
            _ACTIVE.set(len(self._active))
        _BEGUN.inc()
        return txn

    def snapshot(self, day: int | None = None) -> Snapshot:
        """Pin a read snapshot (defaults to the latest stable day)."""
        self._check_poisoned()
        if day is None:
            day = self.stable_day()
        _SNAPSHOTS.inc()
        return Snapshot(self, day)

    def stable_day(self) -> int:
        """The most recent day every transaction at or before which has
        completed — the default snapshot pin.

        With writers in flight this is just below the earliest active
        commit day (days are handed out in order, so everything earlier
        is settled); otherwise it is the last completed day.
        """
        with self._lock:
            if self._active:
                return min(t.day for t in self._active.values()) - DAY_GAP
            return self._last_completed_day

    def active_days(self) -> set[int]:
        with self._lock:
            return {t.day for t in self._active.values()}

    def _freeze_floor(self) -> int | None:
        """The lowest day a future archived change may still carry.

        Installed as ``SegmentManager.freeze_floor``: an active
        transaction will archive rows at its own day, and a committed
        transaction's update-log entries still pending carry theirs —
        a segment boundary drawn at or above either would strand those
        rows in a segment that does not cover them.
        """
        days = self.active_days()
        days.update(
            entry.timestamp for entry in self.db.update_log.pending()
        )
        return min(days) if days else None

    # -- statement execution ----------------------------------------------

    def execute(self, txn: Transaction, text: str, params=None):
        """Run one statement inside ``txn`` on the calling thread."""
        self._check_active(txn)
        self._check_poisoned()
        statement = parse_sql(text)
        resources = self._lock_resources(statement)
        for resource in resources:
            self.locks.acquire(txn.id, resource)
        txcontext.set_clock(txn.day)
        txcontext.set_undo_sink(txn.undo)
        self.db.pager.set_wal_txn(txn.id)
        # tracked DML mirrors into the shared H-tables (synchronously
        # under trigger tracking) — exclude concurrent snapshot scans
        history = (
            self.history.write()
            if ARCHIVE_RESOURCE in resources
            else contextlib.nullcontext()
        )
        try:
            with history:
                return execute_statement(
                    self.db, statement, params, text=text
                )
        finally:
            txcontext.set_clock(None)
            txcontext.set_undo_sink(None)
            self.db.pager.clear_wal_txn()

    def _lock_resources(self, statement) -> list[str]:
        if isinstance(
            statement, (ast.CreateTable, ast.CreateIndex, ast.DropTable)
        ):
            return [CATALOG_RESOURCE]
        if isinstance(
            statement, (ast.Insert, ast.InsertSelect, ast.Update, ast.Delete)
        ):
            resources = {statement.table}
            resources.update(referenced_tables(statement))
            if self._is_tracked(statement.table):
                # The tracker mirrors this DML into shared H-tables and
                # the segment manager; #archive sorts first, giving every
                # tracked-DML statement the same acquisition order.
                resources.add(ARCHIVE_RESOURCE)
            return sorted(resources)
        if isinstance(statement, ast.Select):
            # Reads *inside a write transaction* lock their tables too
            # (the lock table has no shared mode, so exclusively): the
            # current tables are mutated in place, and without a lock a
            # concurrent writer's uncommitted in-place update would leak
            # into this transaction's reads.  Lock-free point-in-time
            # reads are what snapshots are for.
            return sorted(referenced_tables(statement))
        return []

    def _is_tracked(self, table: str) -> bool:
        return self.archis is not None and table in getattr(
            self.archis, "relations", {}
        )

    # -- commit / abort ----------------------------------------------------

    def commit(self, txn: Transaction) -> None:
        self._check_active(txn)
        self._check_poisoned()
        started = time.perf_counter()
        with get_tracer().span("txn.commit", txn=txn.id, day=txn.day):
            txcontext.set_clock(txn.day)
            txcontext.set_undo_sink(None)
            self.db.pager.set_wal_txn(txn.id)
            try:
                self.apply_committed(include_day=txn.day)
                if (
                    self.db.pager.path is not None
                    and self.db.durability == "wal"
                ):
                    from repro.rdb.persistence import save_catalog

                    # Stage under the history write lock: the sidecars
                    # snapshot catalog/segment state that the background
                    # maintenance worker mutates under the same lock.
                    # The COMMIT frame below stays outside it — the
                    # group-commit leader wait must not stall appliers,
                    # and WAL transaction tags keep this transaction's
                    # staged frames isolated from the worker's tag-0
                    # commits.
                    with self.history.write():
                        save_catalog(self.db, _defer_checkpoint=True)
                        if self.archis is not None:
                            from repro.archis.persistence import (
                                stage_archive,
                            )

                            stage_archive(self.archis)
                # default cause ("txn") labels the wal.commits.cause
                # counter; passed implicitly so test doubles with narrower
                # signatures keep working
                self.db.pager.commit()
            except BaseException:
                # With a log-tracking archive the transaction's entries
                # may already be drained into the shared H-tables, and
                # abort() cannot take them back out (discard_pending
                # finds nothing; undo replay runs trigger-suppressed).
                # Poison the manager so the divergent in-process state
                # cannot serve further reads or writes.
                if (
                    self.archis is not None
                    and getattr(self.archis.profile, "tracking", None)
                    == "log"
                ):
                    self._poisoned = (
                        f"commit of transaction {txn.id} failed after its "
                        "changes were archived; reopen the database to "
                        "recover a consistent state"
                    )
                raise
            finally:
                txcontext.set_clock(None)
                self.db.pager.clear_wal_txn()
            self._complete(txn, "committed")
            self.db.advance_to(txn.day)
        _COMMIT_SECONDS.observe(time.perf_counter() - started)
        _COMMITS.inc()

    def abort(self, txn: Transaction) -> None:
        self._check_active(txn)
        with get_tracer().span("txn.abort", txn=txn.id, day=txn.day):
            # undo rewrites H-rows under trigger tracking: exclude scans
            with self.history.write():
                with txcontext.suppressed_triggers(), txcontext.no_undo():
                    self._replay_undo(txn.undo)
            txn.undo.clear()
            self.db.update_log.discard_pending(
                lambda entry: entry.timestamp == txn.day
            )
            self.db.pager.discard_wal_txn(txn.id)
            self._complete(txn, "aborted")
        _ABORTS.inc()

    @staticmethod
    def _replay_undo(undo: list[tuple]) -> None:
        """Apply inverse operations, newest first.

        Mutations may relocate rows (heap updates move RIDs), so a
        translation map chases each recorded RID to where that row lives
        *now* before undoing the next-older entry against it.
        """
        moves: dict[tuple[str, tuple], tuple] = {}

        def resolve(table, rid):
            key = (table.name, rid)
            while key in moves:
                rid = moves[key]
                key = (table.name, rid)
            return rid

        for entry in reversed(undo):
            kind, table = entry[0], entry[1]
            if kind == "insert":
                table.delete_rid(resolve(table, entry[2]))
            elif kind == "update":
                _, _, old_rid, new_rid, old_row = entry
                back_rid = table.update_rid(resolve(table, new_rid), old_row)
                if back_rid != old_rid:
                    moves[(table.name, old_rid)] = back_rid
            elif kind == "delete":
                _, _, old_row, rid = entry
                new_rid = table.insert(old_row)
                if new_rid != rid:
                    moves[(table.name, rid)] = new_rid
            else:  # pragma: no cover - defensive
                raise TxnError(f"unknown undo entry {kind!r}")

    def _complete(self, txn: Transaction, state: str) -> None:
        with self._lock:
            self._active.pop(txn.id, None)
            if txn.day > self._last_completed_day:
                self._last_completed_day = txn.day
            _ACTIVE.set(len(self._active))
        txn.state = state
        self.locks.release_all(txn.id)

    def _check_active(self, txn: Transaction) -> None:
        if txn.state != "active":
            raise TxnError(f"transaction {txn.id} is {txn.state}")

    def _check_poisoned(self) -> None:
        # abort() stays allowed so sessions can still tear down.
        if self._poisoned is not None:
            raise TxnError(self._poisoned)

    # -- archive integration ----------------------------------------------

    def apply_committed(self, include_day: int | None = None) -> None:
        """Archive committed update-log entries into the H-tables.

        Entries stamped with a day belonging to a transaction still in
        flight stay pending (they are not committed yet); ``include_day``
        lets a committing transaction apply its own entries.  No-op
        unless an ATLaS-profile archive is attached.

        The drain itself goes through ``archis.apply_log_entries``,
        which honours the archive's configured ``batch_size``: with
        batching on, committed entries are archived through the
        :class:`~repro.archis.batch.BatchArchiver` (amortized H-table
        lookups, one clustering check per batch) while this manager's
        history write lock and day-order guarantees are unchanged —
        durability stays one WAL commit frame per *transaction*, not
        per batch.
        """
        if self.archis is None:
            return
        if getattr(self.archis.profile, "tracking", None) != "log":
            return
        if self.history.held_read():
            # A snapshot read on this thread re-entered (the XQuery path
            # calls apply_pending).  Its view was settled before the read
            # began — anything still pending is from a later day — and
            # applying now would rewrite H-rows under the active scan.
            return
        # Both the pending() check and the active-day snapshot must be
        # taken *inside* the lock.  The check: a thread mid-apply has
        # already drained the log, and a reader skipping past it here
        # would see the H-tables with a version closed but its successor
        # not yet inserted (a visibility hole).  The active set: tracked
        # DML holds the history write lock while appending its pending
        # entries, so reading active_days() under the lock freezes the
        # pending set — read before the lock, a transaction that begins
        # and writes in the gap is missing from the stale set and its
        # *uncommitted* entries get applied (and survive its abort,
        # since discard_pending then finds nothing to discard).
        with self.history.write():
            if not self.db.update_log.pending():
                return
            uncommitted = self.active_days()
            uncommitted.discard(include_day)
            self.archis.apply_log_entries(
                lambda entry: entry.timestamp not in uncommitted
            )

    def stats(self) -> dict[str, object]:
        with self._lock:
            active = len(self._active)
            last = self._last_completed_day
        return {
            "active": active,
            "last_completed_day": last,
            "stable_day": self.stable_day(),
            "locks": self.locks.stats(),
        }
