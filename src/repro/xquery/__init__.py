"""XQuery engine: parser, tree-walking evaluator, temporal function library."""

from __future__ import annotations

from typing import Callable, Mapping

from repro.xmlkit.dom import Element
from repro.xquery.evaluator import XQueryContext, evaluate
from repro.xquery.functions import STANDARD_FUNCTIONS
from repro.xquery.parser import parse_xquery
from repro.xquery.temporal import TEMPORAL_FUNCTIONS
from repro.xquery.values import DateValue

ALL_FUNCTIONS = {**STANDARD_FUNCTIONS, **TEMPORAL_FUNCTIONS}


def make_context(
    documents: Mapping[str, Element] | Callable[[str], Element],
    current_date: int,
    extra_functions: Mapping[str, Callable] | None = None,
) -> XQueryContext:
    """Build an evaluation context.

    ``documents`` is a mapping from URI to DOM root, or a resolver callable.
    """
    if callable(documents):
        resolver = documents
    else:
        mapping = dict(documents)

        def resolver(uri: str) -> Element | None:
            return mapping.get(uri)

    functions = dict(ALL_FUNCTIONS)
    if extra_functions:
        functions.update(extra_functions)
    return XQueryContext(resolver, current_date, {}, functions)


def run_xquery(
    query: str,
    documents: Mapping[str, Element] | Callable[[str], Element],
    current_date: int,
    extra_functions: Mapping[str, Callable] | None = None,
) -> list:
    """Parse and evaluate an XQuery, returning the result sequence."""
    return evaluate(
        parse_xquery(query), make_context(documents, current_date, extra_functions)
    )


__all__ = [
    "ALL_FUNCTIONS",
    "DateValue",
    "XQueryContext",
    "evaluate",
    "make_context",
    "parse_xquery",
    "run_xquery",
]
