"""Tree-walking XQuery evaluator.

This is the "native XML database" execution path (the Tamino role in the
paper's experiments) and the reference semantics against which the
SQL/XML translation is tested for equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import XQueryError, XQueryTypeError
from repro.xmlkit.dom import Element, Text
from repro.xquery import ast
from repro.xquery.values import (
    DateValue,
    as_sequence,
    atomize,
    compare_atoms,
    effective_boolean,
    numeric_value,
    string_value,
)


@dataclass
class XQueryContext:
    """Static + dynamic context for one evaluation.

    ``resolver`` maps document URIs (e.g. ``employees.xml``) to DOM roots.
    ``current_date`` backs ``current-date()`` and the temporal functions'
    *now* substitution; it is days since the epoch.
    ``focus_position``/``focus_size`` carry the predicate focus for
    ``position()`` and ``last()``.
    """

    resolver: Callable[[str], Element]
    current_date: int
    variables: dict[str, list] = field(default_factory=dict)
    functions: dict[str, Callable] = field(default_factory=dict)
    focus_position: int | None = None
    focus_size: int | None = None

    def child(self, var: str, value: list) -> "XQueryContext":
        variables = dict(self.variables)
        variables[var] = value
        return XQueryContext(
            self.resolver, self.current_date, variables, self.functions,
            self.focus_position, self.focus_size,
        )

    def with_focus(self, position: int, size: int) -> "XQueryContext":
        return XQueryContext(
            self.resolver, self.current_date, self.variables,
            self.functions, position, size,
        )


def evaluate(node: object, ctx: XQueryContext, focus: object | None = None) -> list:
    """Evaluate an AST node to a sequence (list of items)."""
    handler = _HANDLERS.get(type(node))
    if handler is None:
        raise XQueryError(f"no evaluator for {type(node).__name__}")
    return handler(node, ctx, focus)


def evaluate_query(node: object, ctx: XQueryContext) -> list:
    """Top-level entry for whole queries: :func:`evaluate` plus telemetry.

    Recursion makes per-node spans prohibitively expensive, so only the
    query root is timed (``xquery.native.evaluate`` span and the
    ``xquery.native.seconds`` histogram).
    """
    from time import perf_counter

    from repro.obs.metrics import get_registry
    from repro.obs.tracer import get_tracer

    started = perf_counter()
    with get_tracer().span("xquery.native.evaluate"):
        result = evaluate(node, ctx)
    get_registry().histogram("xquery.native.seconds").observe(
        perf_counter() - started
    )
    return result


# -- leaf expressions ------------------------------------------------------


def _eval_literal(node: ast.Literal, ctx, focus) -> list:
    return [node.value]


def _eval_varref(node: ast.VarRef, ctx, focus) -> list:
    try:
        return list(ctx.variables[node.name])
    except KeyError:
        raise XQueryError(f"unbound variable ${node.name}") from None


def _eval_context_item(node: ast.ContextItem, ctx, focus) -> list:
    if focus is None:
        raise XQueryError("context item '.' used without a focus")
    return [focus]


def _eval_sequence(node: ast.SequenceExpr, ctx, focus) -> list:
    out: list = []
    for item in node.items:
        out.extend(evaluate(item, ctx, focus))
    return out


# -- operators ---------------------------------------------------------------


def _eval_binary(node: ast.BinaryOp, ctx, focus) -> list:
    op = node.op
    if op == "and":
        left = effective_boolean(evaluate(node.left, ctx, focus))
        if not left:
            return [False]
        return [effective_boolean(evaluate(node.right, ctx, focus))]
    if op == "or":
        left = effective_boolean(evaluate(node.left, ctx, focus))
        if left:
            return [True]
        return [effective_boolean(evaluate(node.right, ctx, focus))]
    left_seq = evaluate(node.left, ctx, focus)
    right_seq = evaluate(node.right, ctx, focus)
    if op in ("=", "!=", "<", "<=", ">", ">="):
        for lv in atomize(left_seq):
            for rv in atomize(right_seq):
                if compare_atoms(op, lv, rv):
                    return [True]
        return [False]
    # arithmetic: empty sequence propagates
    if not left_seq or not right_seq:
        return []
    lv, rv = left_seq[0], right_seq[0]
    if isinstance(lv, DateValue) or isinstance(rv, DateValue):
        return [_date_arith(op, lv, rv)]
    a, b = numeric_value(lv), numeric_value(rv)
    if op == "+":
        result = a + b
    elif op == "-":
        result = a - b
    elif op == "*":
        result = a * b
    elif op == "div":
        if b == 0:
            raise XQueryTypeError("division by zero")
        result = a / b
    elif op == "mod":
        if b == 0:
            raise XQueryTypeError("modulo by zero")
        result = a % b
    else:
        raise XQueryError(f"unknown operator {op}")
    if result.is_integer() and op != "div":
        return [int(result)]
    return [result]


def _date_arith(op: str, lv: object, rv: object):
    if op == "-" and isinstance(lv, DateValue) and isinstance(rv, DateValue):
        return lv.days - rv.days
    if op == "+" and isinstance(lv, DateValue):
        return DateValue(lv.days + int(numeric_value(rv)))
    if op == "+" and isinstance(rv, DateValue):
        return DateValue(rv.days + int(numeric_value(lv)))
    if op == "-" and isinstance(lv, DateValue):
        return DateValue(lv.days - int(numeric_value(rv)))
    raise XQueryTypeError(f"unsupported date arithmetic {op}")


def _eval_unary(node: ast.UnaryOp, ctx, focus) -> list:
    seq = evaluate(node.operand, ctx, focus)
    if not seq:
        return []
    value = numeric_value(seq[0])
    if node.op == "-":
        value = -value
    if value.is_integer():
        return [int(value)]
    return [value]


# -- paths ----------------------------------------------------------------------


def _eval_path(node: ast.PathExpr, ctx, focus) -> list:
    if node.start is None:
        raise XQueryError(
            "absolute paths require doc(): use doc(\"name\")/... instead"
        )
    current = evaluate(node.start, ctx, focus)
    for step in node.steps:
        current = _apply_step(current, step, ctx)
    return current


def _apply_step(sequence: list, step: ast.Step, ctx: XQueryContext) -> list:
    gathered: list = []
    for item in sequence:
        gathered.extend(_step_candidates(item, step))
    # document order dedup is unnecessary for our tree shapes; keep order.
    if not step.predicates:
        return gathered
    survivors = gathered
    for predicate in step.predicates:
        filtered = []
        position = 0
        size = len(survivors)
        for candidate in survivors:
            position += 1
            focused = ctx.with_focus(position, size)
            value = evaluate(predicate, focused, candidate)
            if _predicate_truth(value, position):
                filtered.append(candidate)
        survivors = filtered
    return survivors


def _predicate_truth(value: list, position: int) -> bool:
    if len(value) == 1 and isinstance(value[0], (int, float)) and not isinstance(
        value[0], bool
    ):
        return position == int(value[0])
    return effective_boolean(value)


def _step_candidates(item: object, step: ast.Step) -> list:
    if step.axis == "self":
        return [item]
    if not isinstance(item, Element):
        raise XQueryTypeError(
            f"cannot navigate {step.test!r} below an atomic value"
        )
    if step.axis == "descendant":
        pool = list(item.descendants())
    else:
        pool = item.elements()
    test = step.test
    if test == "*":
        return pool
    if test == "node()":
        if step.axis == "descendant":
            return pool
        return list(item.children)
    if test == "text()":
        source = pool if step.axis == "descendant" else [item]
        out = []
        for element in source:
            for child in element.children:
                if isinstance(child, Text):
                    out.append(child.value)
        return out
    if test.startswith("@"):
        attr = test[1:]
        source = [item, *pool] if step.axis == "descendant" else [item]
        return [e.attrs[attr] for e in source if attr in e.attrs]
    return [e for e in pool if e.name == test]


# -- FLWOR ------------------------------------------------------------------------


def _eval_flwor(node: ast.Flwor, ctx, focus) -> list:
    out: list = []
    if any(isinstance(c, ast.OrderByClause) for c in node.clauses):
        rows = list(_expand_clauses(list(node.clauses), ctx, focus))
        rows.sort(key=lambda pair: tuple(pair[1]))
        for binding_ctx, _ in rows:
            out.extend(evaluate(node.return_expr, binding_ctx, focus))
        return out
    for binding_ctx, _ in _expand_clauses(list(node.clauses), ctx, focus):
        out.extend(evaluate(node.return_expr, binding_ctx, focus))
    return out


class _SortKey:
    """Wraps heterogeneous order-by keys so sort tuples always compare."""

    __slots__ = ("value", "rank", "descending")

    def __init__(self, value, descending: bool) -> None:
        if isinstance(value, DateValue):
            value = value.days
        if isinstance(value, bool):
            value = int(value)
        self.rank = 0 if value is None else 1
        if descending and isinstance(value, (int, float)):
            value = -value
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_SortKey") -> bool:
        if self.rank != other.rank:
            return self.rank < other.rank
        if type(self.value) is not type(other.value):
            return str(self.value) < str(other.value)
        if self.descending and isinstance(self.value, str):
            return self.value > other.value
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value


def _expand_clauses(clauses: list, ctx: XQueryContext, focus):
    """Yield (context, order_keys) for every binding tuple."""
    if not clauses:
        yield ctx, []
        return
    head, rest = clauses[0], clauses[1:]
    if isinstance(head, ast.ForClause):
        source = evaluate(head.source, ctx, focus)
        for position, item in enumerate(source, start=1):
            bound = ctx.child(head.var, [item])
            if head.position_var:
                bound = bound.child(head.position_var, [position])
            yield from _expand_clauses(rest, bound, focus)
    elif isinstance(head, ast.LetClause):
        value = evaluate(head.source, ctx, focus)
        yield from _expand_clauses(rest, ctx.child(head.var, value), focus)
    elif isinstance(head, ast.WhereClause):
        if effective_boolean(evaluate(head.condition, ctx, focus)):
            yield from _expand_clauses(rest, ctx, focus)
    elif isinstance(head, ast.OrderByClause):
        for inner_ctx, keys in _expand_clauses(rest, ctx, focus):
            new_keys = []
            for spec in head.specs:
                seq = evaluate(spec.key, inner_ctx, focus)
                raw = atomize(seq)[0] if seq else None
                new_keys.append(_SortKey(raw, spec.descending))
            yield inner_ctx, new_keys + keys
    else:
        raise XQueryError(f"unknown clause {type(head).__name__}")


def _eval_quantified(node: ast.Quantified, ctx, focus) -> list:
    def recurse(bindings: tuple, bound: XQueryContext) -> bool:
        if not bindings:
            return effective_boolean(evaluate(node.condition, bound, focus))
        head, rest = bindings[0], bindings[1:]
        source = evaluate(head.source, bound, focus)
        if node.kind == "some":
            return any(
                recurse(rest, bound.child(head.var, [item])) for item in source
            )
        return all(
            recurse(rest, bound.child(head.var, [item])) for item in source
        )

    return [recurse(node.bindings, ctx)]


def _eval_if(node: ast.IfExpr, ctx, focus) -> list:
    if effective_boolean(evaluate(node.condition, ctx, focus)):
        return evaluate(node.then_branch, ctx, focus)
    return evaluate(node.else_branch, ctx, focus)


# -- constructors ----------------------------------------------------------------------


def _content_to_children(element: Element, sequence: list) -> None:
    """Append evaluated content to an element, XQuery-style.

    Adjacent atomic values are joined with single spaces; nodes are copied.
    """
    pending_atoms: list[str] = []

    def flush() -> None:
        if pending_atoms:
            element.append(Text(" ".join(pending_atoms)))
            pending_atoms.clear()

    for item in sequence:
        if isinstance(item, Element):
            flush()
            element.append(item.copy())
        elif isinstance(item, Text):
            flush()
            element.append(Text(item.value))
        else:
            pending_atoms.append(string_value(item))
    flush()


def _eval_computed_element(node: ast.ComputedElement, ctx, focus) -> list:
    element = Element(node.name)
    if node.content is not None:
        _content_to_children(element, evaluate(node.content, ctx, focus))
    return [element]


def _eval_direct_element(node: ast.DirectElement, ctx, focus) -> list:
    element = Element(node.name)
    for attr in node.attrs:
        pieces = []
        for part in attr.parts:
            if isinstance(part, str):
                pieces.append(part)
            else:
                seq = evaluate(part, ctx, focus)
                pieces.append(" ".join(string_value(i) for i in seq))
        element.set(attr.name, "".join(pieces))
    for part in node.content:
        if isinstance(part, str):
            element.append(Text(part))
        else:
            _content_to_children(element, evaluate(part, ctx, focus))
    return [element]


# -- function calls --------------------------------------------------------------------


def _eval_function(node: ast.FunctionCall, ctx, focus) -> list:
    name = node.name.lower()
    fn = ctx.functions.get(name)
    if fn is None:
        raise XQueryError(f"unknown function {node.name}()")
    args = [evaluate(arg, ctx, focus) for arg in node.args]
    result = fn(ctx, *args)
    return as_sequence(result)


_HANDLERS = {
    ast.Literal: _eval_literal,
    ast.VarRef: _eval_varref,
    ast.ContextItem: _eval_context_item,
    ast.SequenceExpr: _eval_sequence,
    ast.BinaryOp: _eval_binary,
    ast.UnaryOp: _eval_unary,
    ast.PathExpr: _eval_path,
    ast.Flwor: _eval_flwor,
    ast.Quantified: _eval_quantified,
    ast.IfExpr: _eval_if,
    ast.ComputedElement: _eval_computed_element,
    ast.DirectElement: _eval_direct_element,
    ast.FunctionCall: _eval_function,
}
