"""The temporal user-defined function library (paper Section 4.2).

These are the functions the paper defines for querying H-documents:
``tstart``/``tend`` (interval accessors with *now* substitution),
Allen-relation predicates (``toverlaps``, ``tprecedes``, ``tcontains``,
``tequals``, ``tmeets``), constructors (``telement``,
``overlapinterval``, ``tinterval``), restructuring (``coalesce``,
``restructure``), duration (``timespan``), *now* rewriting (``rtend``,
``externalnow``) and the temporal aggregates (``tavg`` and friends).

They delegate interval mathematics to :mod:`repro.util.intervals`, the same
code the SQL UDFs use — which is what keeps the two query paths consistent.
"""

from __future__ import annotations

from repro.errors import XQueryTypeError
from repro.util.intervals import (
    Interval,
    coalesce as coalesce_intervals,
    restructure as restructure_intervals,
    sweep_aggregate,
)
from repro.util.timeutil import FOREVER, FOREVER_STR, NOW_LABEL, format_date
from repro.xmlkit.dom import Element, Text
from repro.xquery.values import DateValue, numeric_value, string_value


def node_interval(item: object) -> Interval:
    """The ``[tstart, tend]`` interval of an element."""
    if not isinstance(item, Element):
        raise XQueryTypeError(
            f"temporal functions need timestamped elements, got "
            f"{type(item).__name__}"
        )
    tstart = item.get("tstart")
    tend = item.get("tend")
    if tstart is None or tend is None:
        raise XQueryTypeError(
            f"element <{item.name}> carries no tstart/tend attributes"
        )
    return Interval.from_strings(tstart, tend)


def _single_node(seq: list, fn: str) -> Element | None:
    """One node, or None for the empty sequence (which propagates:
    temporal functions on () return (), reading as false in predicates)."""
    if not seq:
        return None
    if len(seq) != 1:
        raise XQueryTypeError(f"{fn}() expects one node, got {len(seq)}")
    return seq[0]


def interval_element(interval: Interval) -> Element:
    """Build ``<interval tstart=".." tend=".."/>``."""
    element = Element("interval")
    element.set("tstart", format_date(interval.start))
    element.set("tend", format_date(interval.end))
    return element


# -- accessors ----------------------------------------------------------------


def fn_tstart(ctx, seq):
    node = _single_node(seq, "tstart")
    if node is None:
        return []
    return [DateValue(node_interval(node).start)]


def fn_tend(ctx, seq):
    """End of the interval; *now* is reported as the current date.

    Paper Section 4.3: ``tend`` returns the interval end "if this is
    different from 9999-12-31 and current_date otherwise".
    """
    node = _single_node(seq, "tend")
    if node is None:
        return []
    end = node_interval(node).end
    if end == FOREVER:
        return [DateValue(ctx.current_date)]
    return [DateValue(end)]


def fn_tinterval(ctx, seq):
    node = _single_node(seq, "tinterval")
    if node is None:
        return []
    return [interval_element(node_interval(node))]


def fn_timespan(ctx, seq):
    """Days covered by the node's interval (clamped to the current date)."""
    node = _single_node(seq, "timespan")
    if node is None:
        return []
    interval = node_interval(node)
    end = ctx.current_date if interval.end == FOREVER else interval.end
    return [end - interval.start + 1]


def fn_telement(ctx, start_seq, end_seq):
    start = _as_days(start_seq, "telement")
    end = _as_days(end_seq, "telement")
    element = Element("telement")
    element.set("tstart", format_date(start))
    element.set("tend", format_date(end))
    return [element]


def _as_days(seq: list, fn: str) -> int:
    if len(seq) != 1:
        raise XQueryTypeError(f"{fn}() expects one value")
    item = seq[0]
    if isinstance(item, DateValue):
        return item.days
    if isinstance(item, Element):
        return node_interval(item).start
    if isinstance(item, str):
        from repro.util.timeutil import parse_date

        return parse_date(item)
    return int(numeric_value(item))


# -- Allen predicates ---------------------------------------------------------------


def _binary_relation(name: str, relation):
    def fn(ctx, left_seq, right_seq):
        left_node = _single_node(left_seq, name)
        right_node = _single_node(right_seq, name)
        if left_node is None or right_node is None:
            return []
        return [relation(node_interval(left_node), node_interval(right_node))]

    fn.__name__ = f"fn_{name}"
    fn.__doc__ = f"Allen relation ``{name}`` over two timestamped nodes."
    return fn


fn_toverlaps = _binary_relation("toverlaps", Interval.overlaps)
fn_tprecedes = _binary_relation("tprecedes", Interval.precedes)
fn_tcontains = _binary_relation("tcontains", Interval.contains)
fn_tequals = _binary_relation("tequals", Interval.equals)
fn_tmeets = _binary_relation("tmeets", Interval.meets)


def fn_overlapinterval(ctx, left_seq, right_seq):
    """The overlapped interval of two nodes, or empty when disjoint."""
    left_node = _single_node(left_seq, "overlapinterval")
    right_node = _single_node(right_seq, "overlapinterval")
    if left_node is None or right_node is None:
        return []
    shared = node_interval(left_node).intersect(node_interval(right_node))
    if shared is None:
        return []
    return [interval_element(shared)]


# -- restructuring -----------------------------------------------------------------------


def fn_coalesce(ctx, seq):
    """Coalesce a list of timestamped nodes into interval elements."""
    intervals = [node_interval(item) for item in seq]
    return [interval_element(iv) for iv in coalesce_intervals(intervals)]


def fn_restructure(ctx, left_seq, right_seq):
    """All overlapped periods between two node lists (QUERY 6)."""
    left = [node_interval(item) for item in left_seq]
    right = [node_interval(item) for item in right_seq]
    return [
        interval_element(iv) for iv in restructure_intervals(left, right)
    ]


# -- now rewriting ----------------------------------------------------------------------------


def _rewrite_now(node: Element, replacement: str) -> Element:
    clone = node.copy()
    stack = [clone]
    while stack:
        current = stack.pop()
        for attr, value in list(current.attrs.items()):
            if value == FOREVER_STR:
                current.attrs[attr] = replacement
        for child in current.children:
            if isinstance(child, Element):
                stack.append(child)
            elif isinstance(child, Text) and child.value == FOREVER_STR:
                child.value = replacement
    return clone


def fn_rtend(ctx, seq):
    """Replace every ``9999-12-31`` with the current date, recursively."""
    return [
        _rewrite_now(_require_element(item), format_date(ctx.current_date))
        for item in seq
    ]


def fn_externalnow(ctx, seq):
    """Replace every ``9999-12-31`` with the string ``now``, recursively."""
    return [
        _rewrite_now(_require_element(item), NOW_LABEL) for item in seq
    ]


def _require_element(item: object) -> Element:
    if not isinstance(item, Element):
        raise XQueryTypeError("rtend/externalnow need element arguments")
    return item


# -- temporal aggregates ----------------------------------------------------------------------------


def _temporal_aggregate(name: str, kind: str):
    def fn(ctx, seq):
        pairs = []
        for item in seq:
            interval = node_interval(item)
            value = numeric_value(item)
            pairs.append((value, interval))
        out = []
        for value, interval in sweep_aggregate(pairs, kind=kind):
            element = interval_element(interval)
            element.name = name
            element.append(Text(string_value(value)))
            out.append(element)
        return out

    fn.__name__ = f"fn_{name}"
    fn.__doc__ = (
        f"Temporal aggregate ``{name}``: constant-{kind} periods over the "
        f"input nodes' value histories (paper QUERY 5 strategy)."
    )
    return fn


fn_tavg = _temporal_aggregate("tavg", "avg")
fn_tsum = _temporal_aggregate("tsum", "sum")
fn_tcount = _temporal_aggregate("tcount", "count")
fn_tmin = _temporal_aggregate("tmin", "min")
fn_tmax = _temporal_aggregate("tmax", "max")


def fn_rising(ctx, seq):
    """RISING: the longest period during which the value never decreased.

    Returns an interval element for the longest rising run (paper
    Section 4: "other temporal aggregates such as RISING").
    """
    timed = sorted(
        ((node_interval(item), numeric_value(item)) for item in seq),
        key=lambda pair: pair[0].start,
    )
    if not timed:
        return []
    best: Interval | None = None
    run_start = timed[0][0].start
    prev_value = timed[0][1]
    prev_end = timed[0][0].end
    for interval, value in timed[1:]:
        if value >= prev_value:
            prev_end = interval.end
        else:
            candidate = Interval(run_start, prev_end)
            if best is None or candidate.timespan() > best.timespan():
                best = candidate
            run_start = interval.start
            prev_end = interval.end
        prev_value = value
    candidate = Interval(run_start, prev_end)
    if best is None or candidate.timespan() > best.timespan():
        best = candidate
    return [interval_element(best)]


TEMPORAL_FUNCTIONS = {
    "tstart": fn_tstart,
    "tend": fn_tend,
    "tinterval": fn_tinterval,
    "timespan": fn_timespan,
    "telement": fn_telement,
    "toverlaps": fn_toverlaps,
    "tprecedes": fn_tprecedes,
    "tcontains": fn_tcontains,
    "tequals": fn_tequals,
    "tmeets": fn_tmeets,
    "overlapinterval": fn_overlapinterval,
    "coalesce": fn_coalesce,
    "restructure": fn_restructure,
    "rtend": fn_rtend,
    "externalnow": fn_externalnow,
    "tavg": fn_tavg,
    "tsum": fn_tsum,
    "tcount": fn_tcount,
    "tmin": fn_tmin,
    "tmax": fn_tmax,
    "rising": fn_rising,
}
