"""XQuery AST node definitions.

The parser produces these dataclasses; the native evaluator walks them and
the ArchIS translator pattern-matches on them (paper Algorithm 1 consumes
the query's for/let/where/return structure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

Expr = Union[
    "Literal",
    "VarRef",
    "ContextItem",
    "SequenceExpr",
    "BinaryOp",
    "UnaryOp",
    "FunctionCall",
    "PathExpr",
    "Flwor",
    "Quantified",
    "IfExpr",
    "DirectElement",
    "ComputedElement",
]


@dataclass(frozen=True)
class Literal:
    """A string or numeric literal."""

    value: object


@dataclass(frozen=True)
class VarRef:
    """A ``$name`` variable reference."""

    name: str


@dataclass(frozen=True)
class ContextItem:
    """The ``.`` context item."""


@dataclass(frozen=True)
class SequenceExpr:
    """Comma sequence construction: ``expr, expr, ...``."""

    items: tuple


@dataclass(frozen=True)
class BinaryOp:
    """``and``/``or``, general comparisons, arithmetic."""

    op: str
    left: object
    right: object


@dataclass(frozen=True)
class UnaryOp:
    """Unary minus / plus."""

    op: str
    operand: object


@dataclass(frozen=True)
class FunctionCall:
    """``name(arg, ...)`` — built-in, temporal or ``xs:`` constructor."""

    name: str
    args: tuple


@dataclass(frozen=True)
class Step:
    """One path step.

    ``axis`` is ``child`` or ``descendant``; ``test`` is an element name,
    ``*``, ``@attr`` or ``text()``.  ``predicates`` are full expressions
    evaluated with the candidate node as context item.
    """

    axis: str
    test: str
    predicates: tuple = ()


@dataclass(frozen=True)
class PathExpr:
    """``start/step/step...``.

    ``start`` is None for absolute paths (resolved against the context
    document) or an expression (``doc(...)``, ``$v``, ``.``, parenthesized).
    The first step may also carry predicates when the path begins with a
    name test.
    """

    start: object | None
    steps: tuple


@dataclass(frozen=True)
class ForClause:
    var: str
    source: object
    position_var: str | None = None


@dataclass(frozen=True)
class LetClause:
    var: str
    source: object


@dataclass(frozen=True)
class WhereClause:
    condition: object


@dataclass(frozen=True)
class OrderSpec:
    key: object
    descending: bool = False


@dataclass(frozen=True)
class OrderByClause:
    specs: tuple


@dataclass(frozen=True)
class Flwor:
    """A FLWOR expression: interleaved for/let/where clauses + return."""

    clauses: tuple
    return_expr: object


@dataclass(frozen=True)
class QuantifiedBinding:
    var: str
    source: object


@dataclass(frozen=True)
class Quantified:
    """``some|every $v in expr (, ...) satisfies expr``."""

    kind: str  # "some" | "every"
    bindings: tuple
    condition: object


@dataclass(frozen=True)
class IfExpr:
    condition: object
    then_branch: object
    else_branch: object


@dataclass(frozen=True)
class AttrTemplate:
    """A direct-constructor attribute: literal text and embedded exprs."""

    name: str
    parts: tuple  # of str (literal) or Expr


@dataclass(frozen=True)
class DirectElement:
    """``<name attr="...">content</name>`` with ``{expr}`` holes."""

    name: str
    attrs: tuple  # of AttrTemplate
    content: tuple  # of str (literal text) or Expr


@dataclass(frozen=True)
class ComputedElement:
    """``element name { content }``."""

    name: str
    content: object | None
