"""XQuery data model (XDM-lite): sequences, atomics and dates.

Sequences are plain Python lists.  Items are DOM nodes
(:class:`~repro.xmlkit.dom.Element` / ``Text``), strings, numbers, booleans
or :class:`DateValue`.  Helpers here implement atomization, effective
boolean value and general-comparison value matching.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import XQueryTypeError
from repro.util.timeutil import format_date, parse_date
from repro.xmlkit.dom import Element, Text


@dataclass(frozen=True, order=True)
class DateValue:
    """An ``xs:date`` value, in days since the epoch."""

    days: int

    def __str__(self) -> str:
        return format_date(self.days)


def as_sequence(value: object) -> list:
    """Normalize any evaluator result to a sequence (list)."""
    if value is None:
        return []
    if isinstance(value, list):
        return value
    return [value]


def atomize_item(item: object) -> object:
    """Atomize one item: nodes become their string value."""
    if isinstance(item, Element):
        return item.text()
    if isinstance(item, Text):
        return item.value
    return item


def atomize(sequence: list) -> list:
    return [atomize_item(item) for item in sequence]


def effective_boolean(sequence: list) -> bool:
    """XQuery effective boolean value."""
    if not sequence:
        return False
    first = sequence[0]
    if isinstance(first, (Element, Text)):
        return True
    if len(sequence) > 1:
        raise XQueryTypeError(
            "effective boolean value of a multi-item atomic sequence"
        )
    if isinstance(first, bool):
        return first
    if isinstance(first, (int, float)):
        return first != 0
    if isinstance(first, str):
        return len(first) > 0
    if isinstance(first, DateValue):
        return True
    raise XQueryTypeError(f"no boolean value for {type(first).__name__}")


def string_value(item: object) -> str:
    """String value of one item."""
    atom = atomize_item(item)
    if isinstance(atom, bool):
        return "true" if atom else "false"
    if isinstance(atom, float) and atom.is_integer():
        return str(int(atom))
    return str(atom)


def numeric_value(item: object) -> float:
    atom = atomize_item(item)
    if isinstance(atom, bool):
        raise XQueryTypeError("cannot use a boolean as a number")
    if isinstance(atom, (int, float)):
        return float(atom)
    if isinstance(atom, str):
        try:
            return float(atom)
        except ValueError:
            raise XQueryTypeError(f"cannot cast {atom!r} to a number") from None
    if isinstance(atom, DateValue):
        return float(atom.days)
    raise XQueryTypeError(f"no numeric value for {type(atom).__name__}")


def compare_atoms(op: str, left: object, right: object) -> bool:
    """Value comparison between two atomized items.

    Follows the untyped-data conventions the paper's queries rely on:
    if either side is a date, both are treated as dates; else if either
    side is numeric, numeric comparison (with string casts); otherwise
    string comparison.
    """
    if isinstance(left, DateValue) or isinstance(right, DateValue):
        lv = _to_days(left)
        rv = _to_days(right)
        return _apply(op, lv, rv)
    if isinstance(left, bool) or isinstance(right, bool):
        return _apply(op, bool(left), bool(right))
    if isinstance(left, (int, float)) or isinstance(right, (int, float)):
        try:
            return _apply(op, _to_number(left), _to_number(right))
        except XQueryTypeError:
            return _apply(op, str(left), str(right))
    return _apply(op, str(left), str(right))


def _to_days(value: object) -> int:
    if isinstance(value, DateValue):
        return value.days
    if isinstance(value, str):
        try:
            return parse_date(value)
        except ValueError:
            raise XQueryTypeError(f"cannot cast {value!r} to xs:date") from None
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return int(value)
    raise XQueryTypeError(f"cannot compare {value!r} with a date")


def _to_number(value: object) -> float:
    if isinstance(value, bool):
        raise XQueryTypeError("boolean in numeric comparison")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            raise XQueryTypeError(f"cannot cast {value!r} to a number") from None
    raise XQueryTypeError(f"no numeric value for {type(value).__name__}")


def _apply(op: str, a, b) -> bool:
    if op == "=":
        return a == b
    if op == "!=":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise XQueryTypeError(f"unknown comparison operator {op}")
