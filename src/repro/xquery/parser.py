"""XQuery subset parser.

Covers the language the paper exercises (Sections 4 and 7): FLWOR with
interleaved ``for``/``let``/``where``/``order by``, quantified expressions
(``some``/``every ... satisfies``), path expressions with full predicate
expressions, direct (``<e>{...}</e>``) and computed (``element e {...}``)
constructors, general comparisons, arithmetic and function calls.

The scanner is integrated with the parser because direct element
constructors require character-level parsing with re-entry into expression
mode inside ``{ }`` holes — the same structure real XQuery parsers use.

Notable XQuery conventions honoured here: names may contain ``-``
(``current-date``), so subtraction needs surrounding whitespace; comments
are ``(: ... :)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import XQuerySyntaxError
from repro.xquery.ast import (
    AttrTemplate,
    BinaryOp,
    ComputedElement,
    ContextItem,
    DirectElement,
    Flwor,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    OrderByClause,
    OrderSpec,
    PathExpr,
    Quantified,
    QuantifiedBinding,
    SequenceExpr,
    Step,
    UnaryOp,
    VarRef,
    WhereClause,
)

_NAME_RE = re.compile(r"[A-Za-z_][\w\-]*(?::[A-Za-z_][\w\-]*)?")
_NUMBER_RE = re.compile(r"\d+(?:\.\d+)?")
_SYMBOLS = (
    ":=", "//", "!=", "<=", ">=", "(", ")", "[", "]", "{", "}",
    ",", "/", "$", ".", "=", "<", ">", "+", "-", "*", "@",
)

_KEYWORD_OPS = {"and", "or", "div", "mod", "to"}


@dataclass
class _Token:
    kind: str  # NAME, NUMBER, STRING, SYM, EOF
    value: str
    pos: int


class _ParserBase:
    """Shared scanner machinery."""

    def __init__(self, text: str, pos: int = 0) -> None:
        self.text = text
        self.pos = pos
        self._cache: _Token | None = None

    # -- scanning ---------------------------------------------------------

    def _error(self, message: str, pos: int | None = None) -> XQuerySyntaxError:
        at = self.pos if pos is None else pos
        snippet = self.text[at : at + 24].replace("\n", " ")
        return XQuerySyntaxError(f"{message} near {snippet!r} (offset {at})")

    def _skip_ws(self) -> None:
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char.isspace():
                self.pos += 1
            elif self.text.startswith("(:", self.pos):
                depth = 1
                scan = self.pos + 2
                while scan < len(self.text) and depth:
                    if self.text.startswith("(:", scan):
                        depth += 1
                        scan += 2
                    elif self.text.startswith(":)", scan):
                        depth -= 1
                        scan += 2
                    else:
                        scan += 1
                if depth:
                    raise self._error("unterminated comment")
                self.pos = scan
            else:
                return

    def _scan_token(self) -> _Token:
        self._skip_ws()
        if self.pos >= len(self.text):
            return _Token("EOF", "", self.pos)
        start = self.pos
        char = self.text[start]
        if char in ("'", '"'):
            end = start + 1
            parts = []
            while end < len(self.text):
                if self.text[end] == char:
                    if self.text[end + 1 : end + 2] == char:  # doubled quote
                        parts.append(char)
                        end += 2
                        continue
                    self.pos = end + 1
                    return _Token("STRING", "".join(parts), start)
                parts.append(self.text[end])
                end += 1
            raise self._error("unterminated string literal", start)
        match = _NUMBER_RE.match(self.text, start)
        if match:
            self.pos = match.end()
            return _Token("NUMBER", match.group(0), start)
        match = _NAME_RE.match(self.text, start)
        if match:
            self.pos = match.end()
            return _Token("NAME", match.group(0), start)
        for symbol in _SYMBOLS:
            if self.text.startswith(symbol, start):
                self.pos = start + len(symbol)
                return _Token("SYM", symbol, start)
        raise self._error(f"unexpected character {char!r}", start)

    def _peek(self) -> _Token:
        if self._cache is None:
            self._cache = self._scan_token()
        return self._cache

    def _next(self) -> _Token:
        token = self._peek()
        self._cache = None
        return token

    def _at(self, kind: str, value: str | None = None) -> bool:
        token = self._peek()
        return token.kind == kind and (value is None or token.value == value)

    def _expect(self, kind: str, value: str | None = None) -> _Token:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            want = value or kind
            raise self._error(f"expected {want!r}, got {token.value!r}", token.pos)
        return token

    def _rewind_to(self, pos: int) -> None:
        self.pos = pos
        self._cache = None


class XQueryParser(_ParserBase):
    """Recursive-descent parser for the XQuery subset."""

    def parse(self):
        expr = self._parse_expr()
        if self._peek().kind != "EOF":
            raise self._error("trailing content after query")
        return expr

    # -- expression levels --------------------------------------------------

    def _parse_expr(self):
        items = [self._parse_single()]
        while self._at("SYM", ","):
            self._next()
            items.append(self._parse_single())
        if len(items) == 1:
            return items[0]
        return SequenceExpr(tuple(items))

    def _parse_single(self):
        token = self._peek()
        if token.kind == "NAME":
            if token.value in ("for", "let") and self._lookahead_is_dollar():
                return self._parse_flwor()
            if token.value in ("some", "every") and self._lookahead_is_dollar():
                return self._parse_quantified()
            if token.value == "if" and self._lookahead_is_lparen():
                return self._parse_if()
            if token.value == "element":
                return self._parse_computed_element()
        return self._parse_or()

    def _lookahead_is_dollar(self) -> bool:
        saved_pos, saved_cache = self.pos, self._cache
        self._next()
        result = self._at("SYM", "$")
        self.pos, self._cache = saved_pos, saved_cache
        return result

    def _lookahead_is_lparen(self) -> bool:
        saved_pos, saved_cache = self.pos, self._cache
        self._next()
        result = self._at("SYM", "(")
        self.pos, self._cache = saved_pos, saved_cache
        return result

    # -- FLWOR -----------------------------------------------------------------

    def _parse_flwor(self):
        clauses: list = []
        while True:
            token = self._peek()
            if token.kind == "NAME" and token.value == "for":
                self._next()
                clauses.extend(self._parse_for_bindings())
            elif token.kind == "NAME" and token.value == "let":
                self._next()
                clauses.extend(self._parse_let_bindings())
            elif token.kind == "NAME" and token.value == "where":
                self._next()
                clauses.append(WhereClause(self._parse_single()))
            elif token.kind == "NAME" and token.value == "order":
                self._next()
                self._expect("NAME", "by")
                clauses.append(self._parse_order_by())
            else:
                break
        self._expect("NAME", "return")
        return Flwor(tuple(clauses), self._parse_single())

    def _parse_for_bindings(self) -> list:
        out = []
        while True:
            self._expect("SYM", "$")
            var = self._expect("NAME").value
            position_var = None
            if self._at("NAME", "at"):
                self._next()
                self._expect("SYM", "$")
                position_var = self._expect("NAME").value
            self._expect("NAME", "in")
            out.append(ForClause(var, self._parse_single(), position_var))
            if self._at("SYM", ","):
                self._next()
                continue
            return out

    def _parse_let_bindings(self) -> list:
        out = []
        while True:
            self._expect("SYM", "$")
            var = self._expect("NAME").value
            self._expect("SYM", ":=")
            out.append(LetClause(var, self._parse_single()))
            if self._at("SYM", ","):
                self._next()
                continue
            return out

    def _parse_order_by(self) -> OrderByClause:
        specs = []
        while True:
            key = self._parse_single()
            descending = False
            if self._at("NAME", "descending"):
                self._next()
                descending = True
            elif self._at("NAME", "ascending"):
                self._next()
            specs.append(OrderSpec(key, descending))
            if self._at("SYM", ","):
                self._next()
                continue
            return OrderByClause(tuple(specs))

    def _parse_quantified(self):
        kind = self._next().value
        bindings = []
        while True:
            self._expect("SYM", "$")
            var = self._expect("NAME").value
            self._expect("NAME", "in")
            bindings.append(QuantifiedBinding(var, self._parse_or()))
            if self._at("SYM", ","):
                self._next()
                continue
            break
        self._expect("NAME", "satisfies")
        return Quantified(kind, tuple(bindings), self._parse_single())

    def _parse_if(self):
        self._next()  # if
        self._expect("SYM", "(")
        condition = self._parse_expr()
        self._expect("SYM", ")")
        self._expect("NAME", "then")
        then_branch = self._parse_single()
        self._expect("NAME", "else")
        else_branch = self._parse_single()
        return IfExpr(condition, then_branch, else_branch)

    def _parse_computed_element(self):
        self._next()  # element
        name = self._expect("NAME").value
        self._expect("SYM", "{")
        if self._at("SYM", "}"):
            content = None
        else:
            content = self._parse_expr()
        self._expect("SYM", "}")
        return ComputedElement(name, content)

    # -- operators ---------------------------------------------------------------

    def _parse_or(self):
        node = self._parse_and()
        while self._at("NAME", "or"):
            self._next()
            node = BinaryOp("or", node, self._parse_and())
        return node

    def _parse_and(self):
        node = self._parse_comparison()
        while self._at("NAME", "and"):
            self._next()
            node = BinaryOp("and", node, self._parse_comparison())
        return node

    def _parse_comparison(self):
        node = self._parse_additive()
        token = self._peek()
        if token.kind == "SYM" and token.value in ("=", "!=", "<", "<=", ">", ">="):
            self._next()
            return BinaryOp(token.value, node, self._parse_additive())
        return node

    def _parse_additive(self):
        node = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind == "SYM" and token.value in ("+", "-"):
                self._next()
                node = BinaryOp(token.value, node, self._parse_multiplicative())
            else:
                return node

    def _parse_multiplicative(self):
        node = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind == "SYM" and token.value == "*":
                self._next()
                node = BinaryOp("*", node, self._parse_unary())
            elif token.kind == "NAME" and token.value in ("div", "mod"):
                op = self._next().value
                node = BinaryOp(op, node, self._parse_unary())
            else:
                return node

    def _parse_unary(self):
        token = self._peek()
        if token.kind == "SYM" and token.value in ("-", "+"):
            self._next()
            return UnaryOp(token.value, self._parse_unary())
        return self._parse_path()

    # -- paths ------------------------------------------------------------------

    def _parse_path(self):
        token = self._peek()
        if token.kind == "SYM" and token.value in ("/", "//"):
            # absolute path
            steps = self._parse_steps(initial_slash_consumed=False)
            return PathExpr(None, tuple(steps))
        start, first_steps = self._parse_primary_or_namestep()
        steps = list(first_steps)
        while self._at("SYM", "/") or self._at("SYM", "//"):
            steps.extend(self._parse_steps(initial_slash_consumed=False))
        if steps:
            return PathExpr(start, tuple(steps))
        return start

    def _parse_steps(self, initial_slash_consumed: bool) -> list[Step]:
        steps: list[Step] = []
        while True:
            if not initial_slash_consumed:
                token = self._peek()
                if not (token.kind == "SYM" and token.value in ("/", "//")):
                    return steps
                self._next()
                axis = "descendant" if token.value == "//" else "child"
            else:
                axis = "child"
                initial_slash_consumed = False
            steps.append(self._parse_step(axis))

    def _parse_step(self, axis: str) -> Step:
        token = self._peek()
        if token.kind == "SYM" and token.value == "@":
            self._next()
            name = self._expect("NAME").value
            return Step(axis, "@" + name, tuple(self._parse_predicates()))
        if token.kind == "SYM" and token.value == "$":
            raise self._error("variable cannot appear mid-path")
        if token.kind == "SYM" and token.value == "*":
            self._next()
            return Step(axis, "*", tuple(self._parse_predicates()))
        if token.kind == "NAME":
            name = self._next().value
            if name == "text" and self._at("SYM", "("):
                self._next()
                self._expect("SYM", ")")
                return Step(axis, "text()", tuple(self._parse_predicates()))
            if name == "node" and self._at("SYM", "("):
                self._next()
                self._expect("SYM", ")")
                return Step(axis, "node()", tuple(self._parse_predicates()))
            return Step(axis, name, tuple(self._parse_predicates()))
        if token.kind == "SYM" and token.value == ".":
            self._next()
            return Step("self", ".", tuple(self._parse_predicates()))
        raise self._error("expected a path step")

    def _parse_predicates(self) -> list:
        predicates = []
        while self._at("SYM", "["):
            self._next()
            predicates.append(self._parse_expr())
            self._expect("SYM", "]")
        return predicates

    # -- primaries ------------------------------------------------------------------

    def _parse_primary_or_namestep(self):
        """Parse a primary expression, or a relative name-step path start.

        Returns (start_expr, initial_steps): a relative path like
        ``employee[x]/y`` yields (ContextItem(), [Step(employee)...]).
        """
        token = self._peek()
        if token.kind == "STRING":
            self._next()
            return Literal(token.value), ()
        if token.kind == "NUMBER":
            self._next()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value), ()
        if token.kind == "SYM" and token.value == "$":
            self._next()
            name = self._expect("NAME").value
            return VarRef(name), ()
        if token.kind == "SYM" and token.value == ".":
            self._next()
            return ContextItem(), ()
        if token.kind == "SYM" and token.value == "(":
            self._next()
            if self._at("SYM", ")"):
                self._next()
                return SequenceExpr(()), ()
            inner = self._parse_expr()
            self._expect("SYM", ")")
            return inner, ()
        if token.kind == "SYM" and token.value == "@":
            self._next()
            name = self._expect("NAME").value
            step = Step("child", "@" + name, tuple(self._parse_predicates()))
            return ContextItem(), (step,)
        if token.kind == "SYM" and token.value == "<":
            return self._parse_direct_constructor(token.pos), ()
        if token.kind == "SYM" and token.value == "*":
            self._next()
            step = Step("child", "*", tuple(self._parse_predicates()))
            return ContextItem(), (step,)
        if token.kind == "NAME":
            name = token.value
            self._next()
            if self._at("SYM", "(") and name not in _KEYWORD_OPS:
                self._next()
                args = []
                if not self._at("SYM", ")"):
                    args.append(self._parse_single())
                    while self._at("SYM", ","):
                        self._next()
                        args.append(self._parse_single())
                self._expect("SYM", ")")
                return FunctionCall(name, tuple(args)), ()
            if name == "text" and self._at("SYM", "("):
                pass  # unreachable; text() handled as function-less above
            # a relative path starting with a name test
            step = Step("child", name, tuple(self._parse_predicates()))
            return ContextItem(), (step,)
        raise self._error(f"unexpected token {token.value!r}", token.pos)

    # -- direct constructors (character-level) -------------------------------------

    def _parse_direct_constructor(self, start_pos: int) -> DirectElement:
        self._rewind_to(start_pos)
        element = self._scan_direct_element()
        return element

    def _scan_direct_element(self) -> DirectElement:
        if self.text[self.pos : self.pos + 1] != "<":
            raise self._error("expected '<'")
        self.pos += 1
        match = _NAME_RE.match(self.text, self.pos)
        if not match:
            raise self._error("expected element name after '<'")
        name = match.group(0)
        self.pos = match.end()
        attrs = self._scan_attributes()
        if self.text.startswith("/>", self.pos):
            self.pos += 2
            self._cache = None
            return DirectElement(name, tuple(attrs), ())
        if not self.text.startswith(">", self.pos):
            raise self._error(f"malformed start tag <{name}")
        self.pos += 1
        content = self._scan_content(name)
        self._cache = None
        return DirectElement(name, tuple(attrs), tuple(content))

    def _scan_attributes(self) -> list[AttrTemplate]:
        attrs = []
        while True:
            while self.pos < len(self.text) and self.text[self.pos].isspace():
                self.pos += 1
            char = self.text[self.pos : self.pos + 1]
            if char in (">", "/", ""):
                return attrs
            match = _NAME_RE.match(self.text, self.pos)
            if not match:
                raise self._error("expected attribute name")
            attr_name = match.group(0)
            self.pos = match.end()
            while self.pos < len(self.text) and self.text[self.pos].isspace():
                self.pos += 1
            if self.text[self.pos : self.pos + 1] != "=":
                raise self._error(f"attribute {attr_name} missing '='")
            self.pos += 1
            while self.pos < len(self.text) and self.text[self.pos].isspace():
                self.pos += 1
            quote = self.text[self.pos : self.pos + 1]
            if quote not in ("'", '"'):
                raise self._error(f"attribute {attr_name} value not quoted")
            self.pos += 1
            parts = self._scan_template_until(quote)
            attrs.append(AttrTemplate(attr_name, tuple(parts)))

    def _scan_template_until(self, terminator: str) -> list:
        """Scan literal text + {expr} holes until ``terminator``."""
        parts: list = []
        buffer: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self._error("unterminated constructor")
            char = self.text[self.pos]
            if char == terminator:
                self.pos += 1
                if buffer:
                    parts.append("".join(buffer))
                return parts
            if char == "{":
                if self.text.startswith("{{", self.pos):
                    buffer.append("{")
                    self.pos += 2
                    continue
                if buffer:
                    parts.append("".join(buffer))
                    buffer = []
                self.pos += 1
                self._cache = None
                parts.append(self._parse_expr())
                self._skip_ws()
                self._expect("SYM", "}")
                self._cache = None
                continue
            if char == "}":
                if self.text.startswith("}}", self.pos):
                    buffer.append("}")
                    self.pos += 2
                    continue
                raise self._error("unescaped '}' in constructor")
            buffer.append(char)
            self.pos += 1

    def _scan_content(self, name: str) -> list:
        parts: list = []
        buffer: list[str] = []

        def flush() -> None:
            if buffer:
                text = "".join(buffer)
                if text.strip():
                    parts.append(text)
                buffer.clear()

        while True:
            if self.pos >= len(self.text):
                raise self._error(f"unterminated element <{name}>")
            if self.text.startswith("</", self.pos):
                flush()
                self.pos += 2
                match = _NAME_RE.match(self.text, self.pos)
                if not match or match.group(0) != name:
                    raise self._error(f"mismatched end tag for <{name}>")
                self.pos = match.end()
                while self.pos < len(self.text) and self.text[self.pos].isspace():
                    self.pos += 1
                if not self.text.startswith(">", self.pos):
                    raise self._error("malformed end tag")
                self.pos += 1
                return parts
            char = self.text[self.pos]
            if char == "<":
                flush()
                parts.append(self._scan_direct_element())
                continue
            if char == "{":
                if self.text.startswith("{{", self.pos):
                    buffer.append("{")
                    self.pos += 2
                    continue
                flush()
                self.pos += 1
                self._cache = None
                parts.append(self._parse_expr())
                self._skip_ws()
                self._expect("SYM", "}")
                self._cache = None
                continue
            if char == "}":
                if self.text.startswith("}}", self.pos):
                    buffer.append("}")
                    self.pos += 2
                    continue
                raise self._error("unescaped '}' in content")
            buffer.append(char)
            self.pos += 1


def parse_xquery(text: str):
    """Parse XQuery text into an AST expression."""
    return XQueryParser(text).parse()
