"""Standard XQuery function library (the subset the paper's queries use).

Functions receive the :class:`~repro.xquery.evaluator.XQueryContext` as the
first argument and already-evaluated argument sequences after it.  They
return a sequence, a single item, or ``None`` (empty sequence).
"""

from __future__ import annotations

from repro.errors import XQueryError, XQueryTypeError
from repro.util.timeutil import parse_date
from repro.xmlkit.dom import Element
from repro.xquery.values import (
    DateValue,
    atomize,
    effective_boolean,
    numeric_value,
    string_value,
)


def _single(seq: list, fn: str) -> object:
    if len(seq) != 1:
        raise XQueryTypeError(f"{fn}() expects a single item, got {len(seq)}")
    return seq[0]


# -- documents ----------------------------------------------------------------


def fn_doc(ctx, uri_seq):
    """Resolve a document URI to its *document node*.

    XQuery's ``doc()`` returns a document node whose single element child is
    the root, so ``doc("e.xml")/employees`` addresses the root element.  The
    wrapper is created lazily and reused via the root's parent pointer.
    """
    uri = string_value(_single(uri_seq, "doc"))
    root = ctx.resolver(uri)
    if root is None:
        raise XQueryError(f"document not found: {uri}")
    if root.name == "#document":
        return [root]
    if root.parent is not None and root.parent.name == "#document":
        return [root.parent]
    wrapper = Element("#document")
    wrapper.append(root)
    return [wrapper]


# -- boolean ---------------------------------------------------------------------


def fn_not(ctx, seq):
    return [not effective_boolean(seq)]


def fn_boolean(ctx, seq):
    return [effective_boolean(seq)]


def fn_true(ctx):
    return [True]


def fn_false(ctx):
    return [False]


def fn_empty(ctx, seq):
    return [not seq]


def fn_exists(ctx, seq):
    return [bool(seq)]


# -- aggregates -----------------------------------------------------------------------


def fn_count(ctx, seq):
    return [len(seq)]


def _numeric_items(seq: list) -> list[float]:
    return [numeric_value(item) for item in seq]


def fn_max(ctx, seq):
    if not seq:
        return []
    atoms = atomize(seq)
    if all(isinstance(a, DateValue) for a in atoms):
        return [max(atoms)]
    return [max(_numeric_items(seq))]


def fn_min(ctx, seq):
    if not seq:
        return []
    atoms = atomize(seq)
    if all(isinstance(a, DateValue) for a in atoms):
        return [min(atoms)]
    return [min(_numeric_items(seq))]


def fn_sum(ctx, seq):
    return [sum(_numeric_items(seq))] if seq else [0]


def fn_avg(ctx, seq):
    if not seq:
        return []
    values = _numeric_items(seq)
    return [sum(values) / len(values)]


# -- strings --------------------------------------------------------------------------


def fn_string(ctx, seq=None):
    if seq is None:
        raise XQueryError("string() without argument is unsupported")
    if not seq:
        return [""]
    return [string_value(_single(seq, "string"))]


def fn_concat(ctx, *seqs):
    return ["".join(string_value(_single(s, "concat")) for s in seqs)]


def fn_contains(ctx, haystack, needle):
    h = string_value(_single(haystack, "contains")) if haystack else ""
    n = string_value(_single(needle, "contains")) if needle else ""
    return [n in h]


def fn_starts_with(ctx, haystack, needle):
    h = string_value(_single(haystack, "starts-with")) if haystack else ""
    n = string_value(_single(needle, "starts-with")) if needle else ""
    return [h.startswith(n)]


def fn_string_length(ctx, seq):
    if not seq:
        return [0]
    return [len(string_value(_single(seq, "string-length")))]


def fn_substring(ctx, source, start, length=None):
    text = string_value(_single(source, "substring")) if source else ""
    begin = int(numeric_value(_single(start, "substring"))) - 1
    if length is None:
        return [text[max(begin, 0) :]]
    count = int(numeric_value(_single(length, "substring")))
    return [text[max(begin, 0) : max(begin, 0) + count]]


def fn_string_join(ctx, seq, separator):
    sep = string_value(_single(separator, "string-join")) if separator else ""
    return [sep.join(string_value(item) for item in seq)]


# -- numbers -----------------------------------------------------------------------------


def fn_number(ctx, seq):
    if not seq:
        return [float("nan")]
    return [numeric_value(_single(seq, "number"))]


def fn_round(ctx, seq):
    if not seq:
        return []
    return [round(numeric_value(_single(seq, "round")))]


def fn_floor(ctx, seq):
    if not seq:
        return []
    import math

    return [math.floor(numeric_value(_single(seq, "floor")))]


def fn_abs(ctx, seq):
    if not seq:
        return []
    return [abs(numeric_value(_single(seq, "abs")))]


# -- sequences --------------------------------------------------------------------------------


def fn_distinct_values(ctx, seq):
    seen = []
    for atom in atomize(seq):
        if atom not in seen:
            seen.append(atom)
    return seen


def fn_reverse(ctx, seq):
    return list(reversed(seq))


def fn_data(ctx, seq):
    return atomize(seq)


def fn_name(ctx, seq):
    node = _single(seq, "name")
    if not isinstance(node, Element):
        raise XQueryTypeError("name() requires an element")
    return [node.name]


# -- dates -------------------------------------------------------------------------------------


def fn_xs_date(ctx, seq):
    raw = _single(seq, "xs:date")
    if isinstance(raw, DateValue):
        return [raw]
    text = string_value(raw)
    try:
        return [DateValue(parse_date(text))]
    except ValueError:
        raise XQueryTypeError(f"invalid xs:date literal {text!r}") from None


def fn_xs_integer(ctx, seq):
    return [int(numeric_value(_single(seq, "xs:integer")))]


def fn_xs_string(ctx, seq):
    return [string_value(_single(seq, "xs:string"))]


def fn_current_date(ctx):
    return [DateValue(ctx.current_date)]


def fn_position(ctx):
    if ctx.focus_position is None:
        raise XQueryError("position() used outside a predicate")
    return [ctx.focus_position]


def fn_last(ctx):
    if ctx.focus_size is None:
        raise XQueryError("last() used outside a predicate")
    return [ctx.focus_size]


STANDARD_FUNCTIONS = {
    "doc": fn_doc,
    "document": fn_doc,
    "not": fn_not,
    "boolean": fn_boolean,
    "true": fn_true,
    "false": fn_false,
    "empty": fn_empty,
    "exists": fn_exists,
    "count": fn_count,
    "max": fn_max,
    "min": fn_min,
    "sum": fn_sum,
    "avg": fn_avg,
    "string": fn_string,
    "concat": fn_concat,
    "contains": fn_contains,
    "starts-with": fn_starts_with,
    "string-length": fn_string_length,
    "substring": fn_substring,
    "string-join": fn_string_join,
    "number": fn_number,
    "round": fn_round,
    "floor": fn_floor,
    "abs": fn_abs,
    "distinct-values": fn_distinct_values,
    "reverse": fn_reverse,
    "data": fn_data,
    "name": fn_name,
    "xs:date": fn_xs_date,
    "xs:integer": fn_xs_integer,
    "xs:string": fn_xs_string,
    "current-date": fn_current_date,
    "position": fn_position,
    "last": fn_last,
    "fn:doc": fn_doc,
    "fn:not": fn_not,
    "fn:empty": fn_empty,
    "fn:count": fn_count,
}
