"""Span export: append finished trace trees to a JSONL file.

One line per finished *root* span; the whole tree is nested under it, so
a line is a self-contained trace of one request.  Registered on the
process tracer via :meth:`~repro.obs.tracer.Tracer.add_exporter` (the
``repro.tools serve --span-log`` flag wires this up for the server):

    {"trace_id": "4f...", "span_id": "9a...", "parent_id": null,
     "name": "server.request", "start": ..., "end": ...,
     "seconds": 0.0012, "attrs": {"op": "sql", ...}, "children": [...]}

The writer holds a lock per line, so spans finishing on many worker
threads interleave whole lines, never bytes.  Export failures are
swallowed by the tracer — telemetry must never take down requests.
"""

from __future__ import annotations

import json
import threading


def span_to_record(span) -> dict:
    """The JSONL record for one span (children nested recursively)."""
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": span.start_time,
        "end": span.end_time,
        "seconds": span.duration,
        "attrs": {
            key: value
            if isinstance(value, (str, int, float, bool, type(None)))
            else repr(value)
            for key, value in span.attrs.items()
        },
        "children": [span_to_record(child) for child in span.children],
    }


class JsonlSpanExporter:
    """Appends every exported root span as one JSON line to ``path``."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._file = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def export(self, span) -> None:
        line = json.dumps(
            span_to_record(span), separators=(",", ":"), sort_keys=True
        )
        with self._lock:
            if self._file.closed:
                return
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "JsonlSpanExporter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


__all__ = ["JsonlSpanExporter", "span_to_record"]
