"""Bounded slow-query log with a configurable threshold."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class SlowQuery:
    """One query that exceeded the slow threshold."""

    query: str
    seconds: float
    sql: str | None = None
    fallback_reason: str | None = None
    #: the distributed trace the query ran under (client-minted when it
    #: arrived through the server protocol), or ``None`` outside any
    #: trace context
    trace_id: str | None = None


class SlowQueryLog:
    """Keeps the most recent slow queries.

    ``threshold`` is in seconds; ``None`` disables recording entirely.
    The log is bounded (``capacity`` entries) so it is safe to leave on
    in long-running processes.
    """

    def __init__(self, threshold: float | None = 0.5, capacity: int = 128) -> None:
        self.threshold = threshold
        self.entries: deque[SlowQuery] = deque(maxlen=capacity)

    def record(
        self,
        query: str,
        seconds: float,
        sql: str | None = None,
        fallback_reason: str | None = None,
        trace_id: str | None = None,
    ) -> bool:
        """Record the query if it is slow; returns whether it was kept."""
        if self.threshold is None or seconds < self.threshold:
            return False
        self.entries.append(
            SlowQuery(query, seconds, sql, fallback_reason, trace_id)
        )
        return True

    def clear(self) -> None:
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)
