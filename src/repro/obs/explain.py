"""EXPLAIN output: the span tree + translation + IO profile of one query."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracer import Span


@dataclass
class PlanReport:
    """The three plan stages of one SELECT, rendered as text.

    Produced by ``SelectPlan.report()``: the naive logical plan, the plan
    after the rule pipeline, the compiled physical operator tree, and one
    ``rule: detail`` line per optimizer rule firing.
    """

    logical: str
    optimized: str
    physical: str
    rules: list[str] = field(default_factory=list)
    #: the snapshot day pinned on the executing thread, when the plan ran
    #: inside a snapshot transaction (reads rendered AS OF that day)
    as_of: int | None = None

    def format(self) -> str:
        lines = []
        if self.as_of is not None:
            lines.append(f"as of: day {self.as_of} (snapshot read)")
        lines.append("rules:")
        if self.rules:
            lines.extend(f"  {rule}" for rule in self.rules)
        else:
            lines.append("  (none fired)")
        lines.append("logical plan:")
        lines.extend(f"  {line}" for line in self.logical.splitlines())
        lines.append("optimized plan:")
        lines.extend(f"  {line}" for line in self.optimized.splitlines())
        lines.append("physical plan:")
        lines.extend(f"  {line}" for line in self.physical.splitlines())
        return "\n".join(lines)


@dataclass
class ExplainResult:
    """What ``ArchIS.explain(xquery)`` returns.

    ``root`` is the query's ``archis.xquery`` span; ``sql`` is the
    SQL/XML translation (``None`` when the query fell back to native
    evaluation, in which case ``fallback_reason`` says why).
    ``physical_reads`` counts buffer-pool misses during the run.
    ``plan`` carries the SELECT's :class:`PlanReport` when the translated
    path executed.
    """

    query: str
    seconds: float
    result_count: int
    physical_reads: int
    cache_hits: int
    root: Span
    sql: str | None = None
    fallback_reason: str | None = None
    params: dict = field(default_factory=dict)
    plan: PlanReport | None = None

    def stages(self) -> dict[str, float]:
        """Seconds per pipeline stage, summed over the span tree."""
        out: dict[str, float] = {}
        for span in self.root.walk():
            if span is self.root:
                continue
            out[span.name] = out.get(span.name, 0.0) + span.duration
        return out

    def span_tree(self) -> dict:
        """The span tree as plain data (name / seconds / attrs / children)."""
        return self.root.to_dict()

    def format(self) -> str:
        """A human-readable EXPLAIN report."""
        lines = [f"query: {self.query.strip()}"]
        if self.fallback_reason is not None:
            lines.append(f"plan:  native fallback ({self.fallback_reason})")
        else:
            lines.append("plan:  SQL/XML translation")
            lines.append(f"sql:   {self.sql}")
            if self.params:
                lines.append(f"params: {self.params}")
            if self.plan is not None:
                lines.extend(self.plan.format().splitlines())
        lines.append(
            f"time:  {self.seconds * 1000:.3f} ms, "
            f"{self.result_count} result item(s)"
        )
        total = self.physical_reads + self.cache_hits
        hit_rate = self.cache_hits / total if total else 0.0
        lines.append(
            f"io:    {self.physical_reads} physical reads, "
            f"{self.cache_hits} buffer hits ({hit_rate:.0%} hit rate)"
        )
        lines.append("spans:")
        lines.extend(_format_span(self.root, indent=1))
        return "\n".join(lines)


def _format_span(span: Span, indent: int = 0) -> list[str]:
    attrs = {
        k: v for k, v in span.attrs.items() if k not in ("query", "sql")
    }
    suffix = f"  {attrs}" if attrs else ""
    lines = [
        f"{'  ' * indent}{span.name:<24s} {span.duration * 1000:9.3f} ms"
        f"{suffix}"
    ]
    for child in span.children:
        lines.extend(_format_span(child, indent + 1))
    return lines
