"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

A single :class:`MetricsRegistry` (reachable via :func:`get_registry`)
aggregates instrumentation from every layer of the stack — the buffer
pool's hits/misses, the pager's physical IO, the SQL executor's row
counts, the tracker/clustering/BlockZIP pipeline and the XQuery
translator.  Hot paths hoist their instrument objects at import time
(``_MISSES = get_registry().counter("buffer.misses")``) so recording is a
plain attribute increment; :meth:`MetricsRegistry.reset` therefore zeroes
instruments *in place* instead of rebinding them, preserving every
hoisted reference.

Zero dependencies.  Since the concurrency subsystem landed, the engine
serves many sessions at once, so every instrument guards its updates with
a small per-instrument lock: ``value += n`` is not atomic across threads
(the load/add/store can interleave), and the hit/miss counters must stay
exact under contention — they feed correctness assertions in the
concurrency tests, not just dashboards.
"""

from __future__ import annotations

import threading
from bisect import bisect_left


class Counter:
    """A monotonically increasing count (resettable for measurement runs)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def reset(self) -> None:
        with self._lock:
            self.value = 0


class LabeledCounter:
    """A counter family keyed by a free-form label.

    Used where *why* matters as much as *how often* — e.g.
    ``xquery.fallback`` counts native-evaluation fallbacks per
    :class:`~repro.errors.UnsupportedQueryError` reason.
    """

    __slots__ = ("name", "values", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: dict[str, int] = {}
        self._lock = threading.Lock()

    def inc(self, label: str, n: int = 1) -> None:
        with self._lock:
            self.values[label] = self.values.get(label, 0) + n

    @property
    def total(self) -> int:
        return sum(self.values.values())

    def reset(self) -> None:
        with self._lock:
            self.values.clear()


class Gauge:
    """A point-in-time value (e.g. the live segment number).

    Plain assignment is atomic under the GIL, so gauges stay lock-free.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0.0


#: Default bucket bounds for duration histograms, in seconds.  Spans the
#: range from sub-millisecond translations to multi-second full-history
#: scans; the last bucket is the +Inf overflow.
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default bounds for byte-size histograms (e.g. BlockZIP block sizes).
DEFAULT_SIZE_BUCKETS = (
    256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144, 1048576,
)

#: Default bounds for ratios in [0, 1] (usefulness, compression ratio).
DEFAULT_RATIO_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


class Histogram:
    """A fixed-bucket histogram: cumulative-free per-bucket counts.

    ``bounds`` are inclusive upper bounds; an implicit overflow bucket
    catches everything beyond the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count", "_lock")

    def __init__(self, name: str, bounds=DEFAULT_TIME_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.sum += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """(upper_bound, count) pairs; the overflow bound is ``inf``."""
        bounds = [*self.bounds, float("inf")]
        return list(zip(bounds, self.counts))

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.bounds) + 1)
            self.sum = 0.0
            self.count = 0


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Instrument identity is stable for the process lifetime: ``counter``
    with the same name always returns the same object, and ``reset``
    zeroes values without rebinding, so modules may hoist instruments at
    import time.  Lookup is locked so two threads asking for the same new
    name can never create two instruments.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._labeled: dict[str, LabeledCounter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def labeled_counter(self, name: str) -> LabeledCounter:
        with self._lock:
            instrument = self._labeled.get(name)
            if instrument is None:
                instrument = self._labeled[name] = LabeledCounter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str, bounds=DEFAULT_TIME_BUCKETS) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, bounds)
            return instrument

    def snapshot(self) -> dict[str, object]:
        """A plain-data view of every instrument, keyed by name.

        Counters and gauges map to numbers; labeled counters to
        ``{label: count}`` dicts; histograms to
        ``{count, sum, mean, buckets}`` dicts.
        """
        with self._lock:
            counters = list(self._counters.items())
            labeled = list(self._labeled.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        out: dict[str, object] = {}
        for name, counter in counters:
            out[name] = counter.value
        for name, family in labeled:
            out[name] = dict(family.values)
        for name, gauge in gauges:
            out[name] = gauge.value
        for name, histogram in histograms:
            out[name] = {
                "count": histogram.count,
                "sum": histogram.sum,
                "mean": histogram.mean,
                "buckets": histogram.bucket_counts(),
            }
        return dict(sorted(out.items()))

    def reset(self) -> None:
        """Zero every instrument in place (identities are preserved)."""
        with self._lock:
            groups = [
                list(self._counters.values()),
                list(self._labeled.values()),
                list(self._gauges.values()),
                list(self._histograms.values()),
            ]
        for group in groups:
            for instrument in group:
                instrument.reset()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry all subsystems report into."""
    return _REGISTRY
