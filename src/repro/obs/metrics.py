"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

A single :class:`MetricsRegistry` (reachable via :func:`get_registry`)
aggregates instrumentation from every layer of the stack — the buffer
pool's hits/misses, the pager's physical IO, the SQL executor's row
counts, the tracker/clustering/BlockZIP pipeline and the XQuery
translator.  Hot paths hoist their instrument objects at import time
(``_MISSES = get_registry().counter("buffer.misses")``) so recording is a
plain attribute increment; :meth:`MetricsRegistry.reset` therefore zeroes
instruments *in place* instead of rebinding them, preserving every
hoisted reference.

Zero dependencies.  Since the concurrency subsystem landed, the engine
serves many sessions at once, so every instrument guards its updates with
a small per-instrument lock: ``value += n`` is not atomic across threads
(the load/add/store can interleave), and the hit/miss counters must stay
exact under contention — they feed correctness assertions in the
concurrency tests, not just dashboards.
"""

from __future__ import annotations

import threading
from bisect import bisect_left


class Counter:
    """A monotonically increasing count (resettable for measurement runs)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def reset(self) -> None:
        with self._lock:
            self.value = 0


class LabeledCounter:
    """A counter family keyed by a free-form label.

    Used where *why* matters as much as *how often* — e.g.
    ``xquery.fallback`` counts native-evaluation fallbacks per
    :class:`~repro.errors.UnsupportedQueryError` reason.
    """

    __slots__ = ("name", "values", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: dict[str, int] = {}
        self._lock = threading.Lock()

    def inc(self, label: str, n: int = 1) -> None:
        with self._lock:
            self.values[label] = self.values.get(label, 0) + n

    @property
    def total(self) -> int:
        return sum(self.values.values())

    def reset(self) -> None:
        with self._lock:
            self.values.clear()


class Gauge:
    """A point-in-time value (e.g. the live segment number).

    Plain assignment is atomic under the GIL, so gauges stay lock-free.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0.0


class LabeledGauge:
    """A gauge family keyed by a free-form label.

    Used where one *name* is reported by several independent instances —
    e.g. ``updatelog.backlog`` per update log: a process-wide scalar
    gauge would be clobbered by whichever log last changed, so each log
    sets its own labelled series and the exposition reports the real
    per-log backlog.  ``total`` sums the family (meaningful for
    additive gauges like backlog depths).
    """

    __slots__ = ("name", "values", "label_key", "_lock")

    def __init__(self, name: str, label_key: str = "label") -> None:
        self.name = name
        self.values: dict[str, float] = {}
        #: label name used by the Prometheus exposition (e.g. ``log``)
        self.label_key = label_key
        self._lock = threading.Lock()

    def set(self, label: str, value: float) -> None:
        with self._lock:
            self.values[label] = value

    def get(self, label: str) -> float:
        with self._lock:
            return self.values.get(label, 0.0)

    def remove(self, label: str) -> None:
        """Drop one series (an instance going away)."""
        with self._lock:
            self.values.pop(label, None)

    @property
    def total(self) -> float:
        with self._lock:
            return sum(self.values.values())

    def reset(self) -> None:
        with self._lock:
            self.values.clear()


#: Default bucket bounds for duration histograms, in seconds.  Spans the
#: range from sub-millisecond translations to multi-second full-history
#: scans; the last bucket is the +Inf overflow.
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default bounds for byte-size histograms (e.g. BlockZIP block sizes).
DEFAULT_SIZE_BUCKETS = (
    256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144, 1048576,
)

#: Default bounds for ratios in [0, 1] (usefulness, compression ratio).
DEFAULT_RATIO_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


class Histogram:
    """A fixed-bucket histogram: cumulative-free per-bucket counts.

    ``bounds`` are inclusive upper bounds; an implicit overflow bucket
    catches everything beyond the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count", "_lock")

    def __init__(self, name: str, bounds=DEFAULT_TIME_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.sum += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """(upper_bound, count) pairs; the overflow bound is ``inf``."""
        bounds = [*self.bounds, float("inf")]
        return list(zip(bounds, self.counts))

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating inside buckets.

        The estimate assumes observations are uniformly distributed
        within each bucket (the Prometheus ``histogram_quantile``
        convention): the target rank is located in its bucket's
        cumulative count and interpolated linearly between the bucket's
        lower and upper bounds.  Values landing in the overflow bucket
        clamp to the last finite bound — the histogram cannot know how
        far beyond it they reached.  Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self.counts)
            total = self.count
        if not total:
            return 0.0
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                if index >= len(self.bounds):
                    # overflow bucket: unbounded above, clamp
                    return float(self.bounds[-1]) if self.bounds else 0.0
                lower = float(self.bounds[index - 1]) if index else 0.0
                upper = float(self.bounds[index])
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            cumulative += bucket_count
        return float(self.bounds[-1]) if self.bounds else 0.0

    def quantiles(self) -> dict[str, float]:
        """The conventional latency summary: p50, p95, p99."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.bounds) + 1)
            self.sum = 0.0
            self.count = 0


class LabeledHistogram:
    """A histogram family keyed by a free-form label (all same bounds).

    Used where the latency *breakdown* matters as much as the aggregate
    — e.g. ``server.request.seconds`` per protocol op.  The family also
    maintains one aggregate histogram across every label, so overall
    quantiles need no cross-label merging.
    """

    __slots__ = ("name", "bounds", "values", "aggregate", "label_key", "_lock")

    def __init__(
        self,
        name: str,
        bounds=DEFAULT_TIME_BUCKETS,
        label_key: str = "label",
    ) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds))
        self.values: dict[str, Histogram] = {}
        self.aggregate = Histogram(name, self.bounds)
        #: label name used by the Prometheus exposition (e.g. ``op``)
        self.label_key = label_key
        self._lock = threading.Lock()

    def observe(self, label: str, value: float) -> None:
        with self._lock:
            histogram = self.values.get(label)
            if histogram is None:
                histogram = self.values[label] = Histogram(
                    f"{self.name}{{{label}}}", self.bounds
                )
        histogram.observe(value)
        self.aggregate.observe(value)

    @property
    def count(self) -> int:
        return self.aggregate.count

    @property
    def sum(self) -> float:
        return self.aggregate.sum

    @property
    def mean(self) -> float:
        return self.aggregate.mean

    def quantile(self, q: float) -> float:
        """Aggregate quantile across every label."""
        return self.aggregate.quantile(q)

    def labels(self) -> list[tuple[str, Histogram]]:
        """(label, histogram) pairs in sorted label order."""
        with self._lock:
            return sorted(self.values.items())

    def reset(self) -> None:
        with self._lock:
            histograms = list(self.values.values())
        for histogram in histograms:
            histogram.reset()
        self.aggregate.reset()


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Instrument identity is stable for the process lifetime: ``counter``
    with the same name always returns the same object, and ``reset``
    zeroes values without rebinding, so modules may hoist instruments at
    import time.  Lookup is locked so two threads asking for the same new
    name can never create two instruments.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._labeled: dict[str, LabeledCounter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._labeled_gauges: dict[str, LabeledGauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._labeled_histograms: dict[str, LabeledHistogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def labeled_counter(self, name: str) -> LabeledCounter:
        with self._lock:
            instrument = self._labeled.get(name)
            if instrument is None:
                instrument = self._labeled[name] = LabeledCounter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def labeled_gauge(
        self, name: str, label_key: str = "label"
    ) -> LabeledGauge:
        with self._lock:
            instrument = self._labeled_gauges.get(name)
            if instrument is None:
                instrument = self._labeled_gauges[name] = LabeledGauge(
                    name, label_key
                )
            return instrument

    def histogram(self, name: str, bounds=DEFAULT_TIME_BUCKETS) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, bounds)
            return instrument

    def labeled_histogram(
        self,
        name: str,
        bounds=DEFAULT_TIME_BUCKETS,
        label_key: str = "label",
    ) -> LabeledHistogram:
        with self._lock:
            instrument = self._labeled_histograms.get(name)
            if instrument is None:
                instrument = self._labeled_histograms[name] = (
                    LabeledHistogram(name, bounds, label_key)
                )
            return instrument

    def names(self) -> list[str]:
        """Every registered instrument name, sorted."""
        with self._lock:
            return sorted(
                [
                    *self._counters,
                    *self._labeled,
                    *self._gauges,
                    *self._labeled_gauges,
                    *self._histograms,
                    *self._labeled_histograms,
                ]
            )

    def instrument(self, name: str) -> tuple[str, object]:
        """``(kind, instrument)`` for one registered name.

        ``kind`` is one of ``counter``, ``labeled_counter``, ``gauge``,
        ``histogram``, ``labeled_histogram``.  Raises ``KeyError`` for
        unknown names.
        """
        with self._lock:
            for kind, table in (
                ("counter", self._counters),
                ("labeled_counter", self._labeled),
                ("gauge", self._gauges),
                ("labeled_gauge", self._labeled_gauges),
                ("histogram", self._histograms),
                ("labeled_histogram", self._labeled_histograms),
            ):
                if name in table:
                    return kind, table[name]
        raise KeyError(name)

    @staticmethod
    def _histogram_data(histogram: Histogram) -> dict[str, object]:
        data: dict[str, object] = {
            "count": histogram.count,
            "sum": histogram.sum,
            "mean": histogram.mean,
            "buckets": histogram.bucket_counts(),
        }
        data.update(histogram.quantiles())
        return data

    def snapshot(self) -> dict[str, object]:
        """A plain-data view of every instrument, keyed by name.

        Counters and gauges map to numbers; labeled counters to
        ``{label: count}`` dicts; histograms to
        ``{count, sum, mean, p50, p95, p99, buckets}`` dicts, labeled
        histograms additionally carrying a per-label ``labels`` dict of
        the same shape.  Every dict is freshly built and label keys are
        sorted, so the snapshot is safe to mutate and deterministic to
        render.
        """
        with self._lock:
            counters = list(self._counters.items())
            labeled = list(self._labeled.items())
            gauges = list(self._gauges.items())
            labeled_gauges = list(self._labeled_gauges.items())
            histograms = list(self._histograms.items())
            labeled_histograms = list(self._labeled_histograms.items())
        out: dict[str, object] = {}
        for name, counter in counters:
            out[name] = counter.value
        for name, family in labeled:
            out[name] = dict(sorted(family.values.items()))
        for name, gauge in gauges:
            out[name] = gauge.value
        for name, family in labeled_gauges:
            out[name] = dict(sorted(family.values.items()))
        for name, histogram in histograms:
            out[name] = self._histogram_data(histogram)
        for name, family in labeled_histograms:
            data = self._histogram_data(family.aggregate)
            data["labels"] = {
                label: self._histogram_data(histogram)
                for label, histogram in family.labels()
            }
            out[name] = data
        return dict(sorted(out.items()))

    def reset(self) -> None:
        """Zero every instrument in place (identities are preserved)."""
        with self._lock:
            groups = [
                list(self._counters.values()),
                list(self._labeled.values()),
                list(self._gauges.values()),
                list(self._labeled_gauges.values()),
                list(self._histograms.values()),
                list(self._labeled_histograms.values()),
            ]
        for group in groups:
            for instrument in group:
                instrument.reset()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry all subsystems report into."""
    return _REGISTRY
