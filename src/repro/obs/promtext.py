"""Prometheus text-exposition rendering of the metrics registry.

Renders every instrument in the (or a) :class:`MetricsRegistry` in the
Prometheus text format, version 0.0.4 — the format every scraper and
``promtool`` understands:

    # HELP repro_server_request_seconds ...
    # TYPE repro_server_request_seconds histogram
    repro_server_request_seconds_bucket{op="sql",le="0.001"} 4
    ...

Naming conventions (see DESIGN.md §4g):

- every series is prefixed ``repro_`` and internal dots become
  underscores (``server.request.seconds`` → ``repro_server_request_seconds``);
- durations are in seconds and named ``*_seconds``; sizes in bytes are
  ``*_bytes`` — the unit lives in the metric name, never in a label;
- labeled counters expose their label as ``{label="..."}``; labeled
  histograms use a metric-specific label name (``op`` for server
  requests) carried by the instrument's ``label_key``;
- each histogram additionally exposes ``<name>_quantile`` gauge series
  (``{quantile="0.5"|"0.95"|"0.99"}``) holding the bucket-interpolated
  estimates of :meth:`Histogram.quantile` — scrape-side
  ``histogram_quantile`` needs rate windows; these give instant values
  for dashboards and the ``repro.tools top`` monitor.

Output is **deterministic**: metric names, label keys and label values
are emitted in sorted order, so expositions diff cleanly and the golden
test in ``tests/obs`` can pin the exact bytes.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Histogram,
    LabeledHistogram,
    MetricsRegistry,
    get_registry,
)

#: prefix of every exposed series
PREFIX = "repro_"

_QUANTILES = (("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99))


def metric_name(name: str) -> str:
    """The exposition name of an internal metric: prefixed, dots (and
    any other non-identifier characters) flattened to underscores."""
    safe = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return PREFIX + safe


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value)) if isinstance(value, float) else str(value)


def _header(lines: list[str], name: str, kind: str, help_text: str | None):
    if help_text:
        lines.append(f"# HELP {name} {_escape(help_text)}")
    lines.append(f"# TYPE {name} {kind}")


def _render_histogram(
    lines: list[str],
    name: str,
    histogram: Histogram,
    label: str | None = None,
) -> None:
    """The ``_bucket``/``_sum``/``_count`` series of one histogram, with
    an optional fixed label (for one member of a labeled family)."""
    extra = f'{label},' if label else ""
    cumulative = 0
    for bound, count in histogram.bucket_counts():
        cumulative += count
        le = "+Inf" if bound == float("inf") else _format_value(float(bound))
        lines.append(
            f'{name}_bucket{{{extra}le="{le}"}} {cumulative}'
        )
    suffix = f"{{{label}}}" if label else ""
    lines.append(f"{name}_sum{suffix} {_format_value(histogram.sum)}")
    lines.append(f"{name}_count{suffix} {histogram.count}")


def _render_quantiles(
    lines: list[str], name: str, histogram: Histogram | LabeledHistogram
) -> None:
    _header(
        lines,
        f"{name}_quantile",
        "gauge",
        "bucket-interpolated quantile estimates",
    )
    for text, q in _QUANTILES:
        lines.append(
            f'{name}_quantile{{quantile="{text}"}} '
            f"{_format_value(histogram.quantile(q))}"
        )


def render_prometheus(
    registry: MetricsRegistry | None = None,
    help_texts: dict[str, str] | None = None,
) -> str:
    """The full Prometheus text exposition of ``registry`` (the
    process-wide one by default).  ``help_texts`` maps internal metric
    names to ``# HELP`` lines; the documented inventory in
    :mod:`repro.obs` is used when not given."""
    if registry is None:
        registry = get_registry()
    if help_texts is None:
        from repro.obs import METRIC_INVENTORY

        help_texts = METRIC_INVENTORY
    lines: list[str] = []
    for name in sorted(registry.names()):
        kind, instrument = registry.instrument(name)
        exposed = metric_name(name)
        help_text = help_texts.get(name)
        if kind == "counter":
            _header(lines, exposed, "counter", help_text)
            lines.append(f"{exposed} {instrument.value}")
        elif kind == "gauge":
            _header(lines, exposed, "gauge", help_text)
            lines.append(f"{exposed} {_format_value(instrument.value)}")
        elif kind == "labeled_gauge":
            _header(lines, exposed, "gauge", help_text)
            for label, value in sorted(instrument.values.items()):
                lines.append(
                    f'{exposed}{{{instrument.label_key}='
                    f'"{_escape(label)}"}} {_format_value(value)}'
                )
        elif kind == "labeled_counter":
            _header(lines, exposed, "counter", help_text)
            for label, count in sorted(instrument.values.items()):
                lines.append(
                    f'{exposed}{{label="{_escape(label)}"}} {count}'
                )
        elif kind == "histogram":
            _header(lines, exposed, "histogram", help_text)
            _render_histogram(lines, exposed, instrument)
            _render_quantiles(lines, exposed, instrument)
        elif kind == "labeled_histogram":
            _header(lines, exposed, "histogram", help_text)
            for label, histogram in instrument.labels():
                _render_histogram(
                    lines,
                    exposed,
                    histogram,
                    label=f'{instrument.label_key}="{_escape(label)}"',
                )
            _render_quantiles(lines, exposed, instrument)
    return "\n".join(lines) + "\n"


__all__ = ["PREFIX", "metric_name", "render_prometheus"]
