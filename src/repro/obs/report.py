"""Text rendering of the metrics registry and recent traces (CLI surface)."""

from __future__ import annotations

from repro.obs.explain import _format_span
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def _histogram_lines(lines: list[str], name: str, value: dict) -> None:
    lines.append(
        f"{name:<36s} count={value['count']:<8d} "
        f"mean={value['mean'] * 1000:.3f}ms sum={value['sum']:.4f}s"
    )
    lines.append(
        f"{'':<38s}p50 {value['p50'] * 1000:.3f}ms  "
        f"p95 {value['p95'] * 1000:.3f}ms  "
        f"p99 {value['p99'] * 1000:.3f}ms"
    )
    for bound, count in value["buckets"]:
        if not count:
            continue
        label = "+Inf" if bound == float("inf") else f"{bound:g}"
        lines.append(f"{'':<38s}le {label:<10s} {count}")


def format_metrics(registry: MetricsRegistry) -> str:
    """Render every instrument in the registry as an aligned table.

    Output order is deterministic: the snapshot sorts metric names and
    label keys, so two runs over the same registry render identically.
    """
    lines = ["== metrics =="]
    for name, value in registry.snapshot().items():
        if isinstance(value, dict) and "buckets" in value:
            _histogram_lines(lines, name, value)
            for label, sub in sorted(value.get("labels", {}).items()):
                _histogram_lines(lines, f"  {name}{{{label}}}", sub)
        elif isinstance(value, dict):
            total = sum(value.values())
            lines.append(f"{name:<36s} {total}")
            for label, count in sorted(value.items()):
                lines.append(f"{'':<38s}{count:>6d}  {label}")
        elif isinstance(value, float):
            lines.append(f"{name:<36s} {value:g}")
        else:
            lines.append(f"{name:<36s} {value}")
    return "\n".join(lines)


def format_traces(tracer: Tracer, limit: int = 20) -> str:
    """Render the most recent finished root spans as indented trees."""
    roots = list(tracer.finished)[-limit:]
    if not roots:
        return "== traces ==\n(no finished spans; tracing may be disabled)"
    lines = ["== traces =="]
    for root in roots:
        query = root.attrs.get("query")
        if query:
            lines.append(f"-- {str(query).strip()}")
        lines.extend(_format_span(root))
    return "\n".join(lines)
