"""Zero-dependency observability: tracing, metrics, slow log, EXPLAIN.

Every layer of the ArchIS stack reports into one process-wide
:class:`~repro.obs.metrics.MetricsRegistry` and one
:class:`~repro.obs.tracer.Tracer`:

- storage: ``buffer.hits`` / ``buffer.misses`` (physical reads),
  ``pager.reads`` / ``pager.writes`` / ``pager.allocations``;
- durability: ``wal.frames`` / ``wal.bytes`` (log appends),
  ``wal.commits`` / ``wal.checkpoints`` / ``wal.recoveries`` /
  ``wal.frames_replayed`` (the WAL lifecycle; see
  ``repro.storage.wal``);
- sql: ``sql.statements``, ``sql.rows_scanned``, ``sql.rows_returned``,
  ``sql.statement.seconds``, per-statement ``sql.statement`` spans;
- xquery/translator: ``xquery.translate.seconds``,
  ``xquery.native.seconds``, ``xquery.fallback`` (labeled by reason),
  ``xquery.parse`` / ``xquery.translate`` / ``sql.execute`` spans;
- archis: ``archis.xquery.count`` / ``archis.xquery.seconds``,
  ``tracker.changes_applied`` (+ per-op counters),
  ``clustering.segments_frozen`` / ``clustering.rows_rewritten``,
  ``blockzip.bytes_in`` / ``blockzip.bytes_out`` / ``blockzip.blocks``.

Tracing is disabled by default (no-op spans); metrics are always on and
cost an integer increment.  See ``ArchIS.stats()``, ``ArchIS.explain()``
and ``python -m repro.tools obs``.
"""

from repro.obs.explain import ExplainResult
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    MetricsRegistry,
    get_registry,
)
from repro.obs.report import format_metrics, format_traces
from repro.obs.slowlog import SlowQuery, SlowQueryLog
from repro.obs.tracer import Span, Tracer, get_tracer

__all__ = [
    "Counter",
    "ExplainResult",
    "Gauge",
    "Histogram",
    "LabeledCounter",
    "MetricsRegistry",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "format_metrics",
    "format_traces",
    "get_registry",
    "get_tracer",
]
