"""Zero-dependency observability: tracing, metrics, slow log, EXPLAIN.

Every layer of the ArchIS stack reports into one process-wide
:class:`~repro.obs.metrics.MetricsRegistry` and one
:class:`~repro.obs.tracer.Tracer`.  The full metric surface is the
:data:`METRIC_INVENTORY` below — one entry per emitted metric, with its
``# HELP`` text for the Prometheus exposition
(:func:`~repro.obs.promtext.render_prometheus`).  The inventory is a
**contract**: ``scripts/lint_metrics.py`` (run by ``scripts/check.sh``)
fails the build when code under ``src/`` emits a metric name that is not
documented here.

Tracing is disabled by default (no-op spans) but *trace context* —
client-minted trace ids arriving over the wire — propagates regardless,
so the slow-query log can always attribute a query to its request.
Metrics are always on and cost an integer increment.  See
``ArchIS.stats()``, ``ArchIS.explain()``, the ``metrics``/``health``
server ops and ``python -m repro.tools obs`` / ``top``.
"""

from repro.obs.explain import ExplainResult
from repro.obs.export import JsonlSpanExporter
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    LabeledGauge,
    LabeledHistogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.promtext import render_prometheus
from repro.obs.report import format_metrics, format_traces
from repro.obs.slowlog import SlowQuery, SlowQueryLog
from repro.obs.tracer import Span, Tracer, get_tracer

#: Every metric the engine emits, with its exposition help text.
#: Grouped by subsystem; ``scripts/lint_metrics.py`` enforces that this
#: stays in sync with the instruments registered under ``src/``.
METRIC_INVENTORY: dict[str, str] = {
    # -- storage: buffer pool and pager ---------------------------------
    "buffer.hits": "buffer-pool page requests served from cache",
    "buffer.misses": "buffer-pool page requests that hit the pager",
    "buffer.occupancy": "pages currently cached in the buffer pool",
    "pager.reads": "physical page reads",
    "pager.writes": "physical page writes",
    "pager.allocations": "pages allocated",
    "pager.dirty_pages": "pages in the WAL overlay awaiting checkpoint",
    # -- durability: write-ahead log ------------------------------------
    "wal.frames": "frames appended to the WAL",
    "wal.bytes": "bytes appended to the WAL",
    "wal.size_bytes": "current WAL file size",
    "wal.commits": "COMMIT frames written",
    "wal.commits.cause": "COMMIT frames by trigger (txn, ingest, ...)",
    "wal.checkpoints": "WAL checkpoints (truncations)",
    "wal.recoveries": "recovery passes that replayed a committed save",
    "wal.frames_replayed": "frames replayed during recovery",
    "wal.fsyncs": "fsync calls on the WAL file",
    "wal.fsync.seconds": "WAL fsync latency",
    "wal.group_commit.batched": "commits that rode another leader's fsync",
    "wal.group_commit.batch_size": "COMMIT frames made durable per fsync",
    "wal.group_commit.adaptive_waits": (
        "group-commit leaders that lingered the window (contended)"
    ),
    "wal.group_commit.fast_syncs": (
        "group-commit leaders that fsynced immediately (uncontended)"
    ),
    # -- sql ------------------------------------------------------------
    "sql.statements": "SQL statements executed",
    "sql.rows_scanned": "rows scanned by SQL execution",
    "sql.rows_returned": "rows returned by SQL execution",
    "sql.statement.seconds": "SQL statement execution latency",
    # -- xquery / translator --------------------------------------------
    "xquery.translations": "XQuery-to-SQL translations performed",
    "xquery.translate.seconds": "XQuery-to-SQL translation latency",
    "xquery.native.seconds": "native-evaluation fallback latency",
    "xquery.fallback": "native-evaluation fallbacks by reason",
    "translator.cache_hits": "translation-cache hits",
    "translator.cache_misses": "translation-cache misses",
    # -- archis core ----------------------------------------------------
    "archis.xquery.count": "temporal XQuery requests answered",
    "archis.xquery.seconds": "end-to-end temporal XQuery latency",
    "tracker.changes_applied": "changes archived into H-tables",
    "tracker.inserts": "archived inserts",
    "tracker.updates": "archived updates",
    "tracker.deletes": "archived deletes",
    # -- clustering / compression ---------------------------------------
    "clustering.segments_frozen": "live segments frozen",
    "clustering.rows_rewritten": "rows rewritten by freezes",
    "clustering.live_rows_copied": "live rows copied into new segments",
    "clustering.usefulness_at_freeze": "segment usefulness when frozen",
    "clustering.live_segno": "current live segment number",
    "blockzip.blocks": "BlockZIP blocks compressed",
    "blockzip.blocks_decompressed": "BlockZIP blocks decompressed",
    "blockzip.bytes_in": "bytes fed into BlockZIP",
    "blockzip.bytes_out": "compressed bytes produced by BlockZIP",
    "blockzip.tables_compressed": "H-tables compressed into blob storage",
    "blockzip.block_bytes": "compressed block sizes",
    "blockzip.compression_ratio": "per-block compression ratios",
    # -- ingest (batched archival) --------------------------------------
    "ingest.batches": "batches applied by the batch archiver",
    "ingest.entries": "update-log entries archived in batches",
    "ingest.entries_per_batch": "entries per applied batch",
    "ingest.seconds": "batched-ingest apply latency per batch",
    "ingest.freeze_stall.seconds": (
        "time one apply stalled inside a synchronous segment freeze"
    ),
    "ingest.clearance_granted": "batches granted freeze clearance",
    "ingest.clearance_denied": "batches denied freeze clearance",
    "updatelog.backlog": "update-log entries pending archival, per log",
    # -- sharding (key-partitioned stores + scatter-gather) --------------
    "shard.entries_routed": (
        "update-log entries routed to each shard store, per shard"
    ),
    "shard.applies": "cross-shard apply rounds that archived entries",
    "exchange.queries": "scatter-gather exchange executions",
    "exchange.shards_hit": "shards scanned per exchange execution",
    "exchange.shards_pruned": (
        "shard scans avoided by key-equality pruning"
    ),
    # -- background segment maintenance ---------------------------------
    "maintenance.freezes_enqueued": (
        "freeze rewrites handed to the maintenance worker"
    ),
    "maintenance.freezes_completed": (
        "freeze rewrites fully applied by the maintenance worker"
    ),
    "maintenance.steps": "bounded maintenance steps performed",
    "maintenance.step.seconds": (
        "history-lock hold time of one maintenance step"
    ),
    "maintenance.rows_moved": (
        "frozen-segment rows rewritten by the maintenance worker"
    ),
    "maintenance.queue_depth": "freeze rewrites waiting for the worker",
    "maintenance.switch.seconds": (
        "time one apply spent in the synchronous logical segment switch"
    ),
    # -- plan / optimizer -----------------------------------------------
    "plan.rules_fired": "optimizer rule firings by rule",
    # -- temporal sql (FOR SYSTEM_TIME + sequenced operators) -----------
    "temporal.clauses": "FOR SYSTEM_TIME clauses planned, by kind",
    "temporal.queries": "temporal SQL statements executed via ArchIS.sql",
    "temporal.query.seconds": "end-to-end temporal SQL latency",
    "temporal.join.rows": "rows emitted by temporal joins",
    "temporal.join.dropped": (
        "matched pairs dropped by temporal joins (no interval overlap)"
    ),
    "temporal.coalesce.rows_merged": (
        "rows absorbed into merged periods by NORMALIZE coalescing"
    ),
    "temporal.aggregate.periods": (
        "constant-value periods emitted by sequenced aggregates"
    ),
    # -- transactions ---------------------------------------------------
    "txn.begun": "write transactions begun",
    "txn.commits": "transactions committed",
    "txn.commit.seconds": "transaction commit latency",
    "txn.aborts": "transactions aborted",
    "txn.active": "write transactions currently active",
    "txn.snapshots": "read snapshots handed out",
    "txn.snapshot.reconstructions": "snapshot table reconstructions",
    "txn.deadlocks": "deadlocks detected (victim aborted the wait)",
    "txn.lock_timeouts": "lock waits that hit the wall-clock timeout",
    "txn.locks.acquired": "table/resource locks acquired",
    "txn.locks.waits": "lock acquisitions that had to wait",
    "txn.lock_wait.seconds": "time spent blocked waiting for a lock",
    # -- server ---------------------------------------------------------
    "server.connections": "TCP connections accepted",
    "server.sessions": "sessions currently being served",
    "server.busy_rejections": "requests/connections rejected with BUSY",
    "server.errors": "requests answered with an error",
    "server.requests": "requests by protocol op",
    "server.request.seconds": "request latency (received to sent) by op",
    # -- async jobs -----------------------------------------------------
    "jobs.submitted": "async jobs accepted by job.submit",
    "jobs.completed": "async jobs that finished with a result",
    "jobs.failed": "async jobs that finished in ERROR",
    "jobs.aborted": "async jobs cancelled before completing",
    "jobs.rejected": "job submissions rejected (queue full)",
    "jobs.evicted": "finished jobs evicted past the result TTL",
    "jobs.active": "jobs currently queued or running",
    "job.seconds": "async job run time (queue exit to finish)",
    # -- binary result encoding -----------------------------------------
    "encoding.binary.frames": "binary result frames encoded",
    "encoding.binary.rows": "rows shipped in binary result frames",
    "encoding.binary.bytes": "bytes of binary result frames produced",
    "encoding.binary.seconds": "binary result frame encode latency",
}

__all__ = [
    "Counter",
    "ExplainResult",
    "Gauge",
    "Histogram",
    "JsonlSpanExporter",
    "LabeledCounter",
    "LabeledGauge",
    "LabeledHistogram",
    "METRIC_INVENTORY",
    "MetricsRegistry",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "format_metrics",
    "format_traces",
    "get_registry",
    "get_tracer",
    "render_prometheus",
]
