"""Context-manager spans with nesting, wall time and a ring buffer.

The tracer is **off by default**: ``Tracer.span`` then returns a shared
no-op handle, so instrumented hot paths pay one attribute check and no
allocation.  When enabled (globally via :meth:`Tracer.enable`, or scoped
via :meth:`Tracer.capture`), spans record name, attributes, wall-clock
start/end and their children; finished *root* spans land in a bounded
ring buffer (and in any active capture sinks and registered exporters),
so memory stays flat under production traffic.

**Distributed trace context.**  Every recorded span carries a
``trace_id`` (shared by a whole request tree, across processes), its own
``span_id`` and its ``parent_id``.  A server receiving a request enters
:meth:`Tracer.context` with the ids the client sent on the wire; the
next root span opened on that thread joins the client's trace instead of
minting a fresh id.  The context is tracked *independently of whether
tracing is enabled*, so the slow-query log can stamp trace ids even when
span recording is off.

``ArchIS.explain`` and the benchmark harness both read query timings from
these spans — paper figures and production telemetry come from the same
instrumentation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from collections import deque
from secrets import token_hex
from time import perf_counter
from typing import Iterator


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return token_hex(8)


class Span:
    """One timed operation: name, attributes, wall time, children."""

    __slots__ = (
        "name",
        "attrs",
        "start_time",
        "end_time",
        "children",
        "trace_id",
        "span_id",
        "parent_id",
    )

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.start_time = 0.0
        self.end_time = 0.0
        self.children: list["Span"] = []
        self.trace_id: str | None = None
        self.span_id: str = token_hex(8)
        self.parent_id: str | None = None

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while the span is still open)."""
        return max(self.end_time - self.start_time, 0.0)

    def set(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def stage_seconds(self, name: str) -> float:
        """Total duration of all descendant spans named ``name``."""
        return sum(s.duration for s in self.walk() if s.name == name)

    def to_dict(self) -> dict:
        """Plain-data span tree (the ``explain()`` output shape)."""
        return {
            "name": self.name,
            "seconds": self.duration,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"<Span {self.name} {self.duration * 1000:.3f}ms "
            f"children={len(self.children)}>"
        )


class _NoopSpan:
    """Shared do-nothing handle returned while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP = _NoopSpan()


class _ActiveSpan:
    """Context manager recording one span into its tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._span = Span(name, attrs)

    def __enter__(self) -> Span:
        span = self._span
        stack = self._tracer._thread_stack()
        if stack:
            parent = stack[-1]
            parent.children.append(span)
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
        else:
            context = self._tracer._thread_context()
            if context is not None:
                span.trace_id = context[0]
                span.parent_id = context[1]
            else:
                span.trace_id = new_trace_id()
        stack.append(span)
        span.start_time = perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.end_time = perf_counter()
        if exc is not None:
            span.attrs["error"] = f"{type(exc).__name__}: {exc}"
        stack = self._tracer._thread_stack()
        if stack and stack[-1] is span:
            stack.pop()
        if not stack:
            self._tracer._finish_root(span)
        return False


class Tracer:
    """Produces spans; keeps the last ``capacity`` finished root spans.

    Span nesting is tracked **per thread**: every server session/worker
    gets its own stack, so concurrent queries build independent span
    trees instead of interleaving children into each other's roots.
    Finished roots from all threads land in the shared ring buffer (and
    in any active capture sinks and registered exporters), guarded by a
    lock.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.enabled = False
        self.finished: deque[Span] = deque(maxlen=capacity)
        self._local = threading.local()
        self._sinks: list[list[Span]] = []
        self._exporters: list = []
        self._lock = threading.Lock()

    def _thread_stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _thread_context(self) -> tuple[str, str | None] | None:
        """The propagated (trace_id, parent_span_id) for this thread."""
        return getattr(self._local, "context", None)

    def span(self, name: str, **attrs):
        """Open a span; a shared no-op handle when tracing is disabled."""
        if not self.enabled:
            return _NOOP
        return _ActiveSpan(self, name, attrs)

    @contextmanager
    def context(self, trace_id: str | None, parent_id: str | None = None):
        """Adopt a propagated trace context for the scope.

        Root spans opened inside the scope carry ``trace_id`` (and
        ``parent_id`` as their remote parent) instead of minting a fresh
        trace id.  Tracks regardless of the enabled flag, so
        :meth:`current_trace_id` (and through it the slow-query log)
        sees the propagated id even with span recording off.  A ``None``
        trace id makes the scope a no-op.
        """
        if trace_id is None:
            yield
            return
        previous = getattr(self._local, "context", None)
        self._local.context = (str(trace_id), parent_id)
        try:
            yield
        finally:
            self._local.context = previous

    def current_span(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def current_trace_id(self) -> str | None:
        """The trace id of the innermost open span, falling back to the
        propagated context (which works with tracing disabled)."""
        span = self.current_span()
        if span is not None and span.trace_id:
            return span.trace_id
        context = self._thread_context()
        return context[0] if context is not None else None

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.finished.clear()
        self._thread_stack().clear()

    # -- export ------------------------------------------------------------

    def add_exporter(self, exporter) -> None:
        """Register a callable/object receiving every finished root span.

        An exporter is either a callable ``exporter(span)`` or an object
        with an ``export(span)`` method (see
        :class:`repro.obs.export.JsonlSpanExporter`).  Exporter failures
        are swallowed — telemetry must never take down the request path.
        """
        with self._lock:
            self._exporters.append(exporter)

    def remove_exporter(self, exporter) -> None:
        with self._lock:
            if exporter in self._exporters:
                self._exporters.remove(exporter)

    @contextmanager
    def capture(self):
        """Scoped tracing: enable, collect root spans, restore state.

        Yields the list that finished root spans are appended to; nesting
        captures is fine (each sink sees the roots finished within it).
        """
        previous = self.enabled
        self.enabled = True
        collected: list[Span] = []
        with self._lock:
            self._sinks.append(collected)
        try:
            yield collected
        finally:
            with self._lock:
                self._sinks.remove(collected)
            self.enabled = previous

    def _finish_root(self, span: Span) -> None:
        with self._lock:
            self.finished.append(span)
            for sink in self._sinks:
                sink.append(span)
            exporters = list(self._exporters)
        for exporter in exporters:
            try:
                export = getattr(exporter, "export", exporter)
                export(span)
            except Exception:  # noqa: BLE001 - never fail the hot path
                pass


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer all subsystems report into."""
    return _TRACER
