"""Context-manager spans with nesting, wall time and a ring buffer.

The tracer is **off by default**: ``Tracer.span`` then returns a shared
no-op handle, so instrumented hot paths pay one attribute check and no
allocation.  When enabled (globally via :meth:`Tracer.enable`, or scoped
via :meth:`Tracer.capture`), spans record name, attributes, wall-clock
start/end and their children; finished *root* spans land in a bounded
ring buffer (and in any active capture sinks), so memory stays flat under
production traffic.

``ArchIS.explain`` and the benchmark harness both read query timings from
these spans — paper figures and production telemetry come from the same
instrumentation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from collections import deque
from time import perf_counter
from typing import Iterator


class Span:
    """One timed operation: name, attributes, wall time, children."""

    __slots__ = ("name", "attrs", "start_time", "end_time", "children")

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.start_time = 0.0
        self.end_time = 0.0
        self.children: list["Span"] = []

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while the span is still open)."""
        return max(self.end_time - self.start_time, 0.0)

    def set(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def stage_seconds(self, name: str) -> float:
        """Total duration of all descendant spans named ``name``."""
        return sum(s.duration for s in self.walk() if s.name == name)

    def to_dict(self) -> dict:
        """Plain-data span tree (the ``explain()`` output shape)."""
        return {
            "name": self.name,
            "seconds": self.duration,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"<Span {self.name} {self.duration * 1000:.3f}ms "
            f"children={len(self.children)}>"
        )


class _NoopSpan:
    """Shared do-nothing handle returned while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP = _NoopSpan()


class _ActiveSpan:
    """Context manager recording one span into its tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._span = Span(name, attrs)

    def __enter__(self) -> Span:
        span = self._span
        stack = self._tracer._thread_stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        span.start_time = perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.end_time = perf_counter()
        if exc is not None:
            span.attrs["error"] = f"{type(exc).__name__}: {exc}"
        stack = self._tracer._thread_stack()
        if stack and stack[-1] is span:
            stack.pop()
        if not stack:
            self._tracer._finish_root(span)
        return False


class Tracer:
    """Produces spans; keeps the last ``capacity`` finished root spans.

    Span nesting is tracked **per thread**: every server session/worker
    gets its own stack, so concurrent queries build independent span
    trees instead of interleaving children into each other's roots.
    Finished roots from all threads land in the shared ring buffer (and
    in any active capture sinks), guarded by a lock.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.enabled = False
        self.finished: deque[Span] = deque(maxlen=capacity)
        self._local = threading.local()
        self._sinks: list[list[Span]] = []
        self._lock = threading.Lock()

    def _thread_stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs):
        """Open a span; a shared no-op handle when tracing is disabled."""
        if not self.enabled:
            return _NOOP
        return _ActiveSpan(self, name, attrs)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.finished.clear()
        self._thread_stack().clear()

    @contextmanager
    def capture(self):
        """Scoped tracing: enable, collect root spans, restore state.

        Yields the list that finished root spans are appended to; nesting
        captures is fine (each sink sees the roots finished within it).
        """
        previous = self.enabled
        self.enabled = True
        collected: list[Span] = []
        with self._lock:
            self._sinks.append(collected)
        try:
            yield collected
        finally:
            with self._lock:
                self._sinks.remove(collected)
            self.enabled = previous

    def _finish_root(self, span: Span) -> None:
        with self._lock:
            self.finished.append(span)
            for sink in self._sinks:
                sink.append(span)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer all subsystems report into."""
    return _TRACER
