"""Benchmark harness: engine builders, cold-query measurement, comparisons.

Reproduces the paper's measurement protocol (Section 7): caches are reset
before every measured query ("the hard drive with data is unmounted ...
databases are restarted for each query"), each query runs several times and
results are averaged, and buffer-pool physical reads are reported alongside
wall-clock time.

Measurements are read from the observability layer rather than ad-hoc
timers: wall time comes from the query's root span, stage times from its
children, and physical reads from the ``buffer.misses`` counter — the same
numbers ``ArchIS.explain()`` and production telemetry report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.archis import ArchIS
from repro.dataset import EmployeeHistoryGenerator
from repro.nativexml import NativeXmlDatabase
from repro.obs import Span, get_registry, get_tracer
from repro.rdb import Database
from repro.bench.queries import BenchQuery


@dataclass
class Measurement:
    seconds: float
    physical_reads: int
    result_size: int
    translate_seconds: float = 0.0
    execute_seconds: float = 0.0
    cache_hit_rate: float = 0.0
    rows_scanned: int = 0


@dataclass
class BenchSetup:
    """A populated experiment: ArchIS engines + native XML baseline."""

    generator: EmployeeHistoryGenerator
    archis: ArchIS
    native: NativeXmlDatabase
    events_applied: int = 0
    extra: dict = field(default_factory=dict)


def build_archis(
    scale: int = 1,
    employees: int = 60,
    years: int = 17,
    profile: str = "atlas",
    umin: float | None = 0.4,
    min_segment_rows: int = 512,
    compress: bool = False,
    seed: int = 20060403,
    maintenance: str = "inline",
    maintenance_step_rows: int = 1024,
    shards: int | None = None,
    shard_by: str | None = None,
) -> tuple[EmployeeHistoryGenerator, ArchIS, int]:
    """Generate the dataset into a tracked current database."""
    generator = EmployeeHistoryGenerator(
        employees=employees, years=years, scale=scale, seed=seed
    )
    db = Database()
    db.set_date("1985-01-01")
    EmployeeHistoryGenerator.create_current_table(db)
    from repro.archis import ArchISConfig

    archis = ArchIS(
        db,
        config=ArchISConfig(
            profile=profile,
            umin=umin,
            min_segment_rows=min_segment_rows,
            maintenance=maintenance,
            maintenance_step_rows=maintenance_step_rows,
            shards=shards,
            shard_by=shard_by,
        ),
    )
    archis.track_table("employee", document_name="employees.xml")
    events = generator.apply_to(db)
    archis.apply_pending()
    archis.drain_maintenance()
    if compress:
        archis.compress_archive()
    return generator, archis, events


def build_native(archis: ArchIS, compress: bool = True) -> NativeXmlDatabase:
    """Store the published H-document in the native XML baseline."""
    native = NativeXmlDatabase(compress=compress)
    for document in archis.document_names():
        relation = archis.relation_for_document(document)
        native.store_document(document, archis.publish(relation.name))
    native.set_date(archis.db.current_date)
    return native


def build_setup(**kwargs) -> BenchSetup:
    generator, archis, events = build_archis(**kwargs)
    native = build_native(archis)
    return BenchSetup(generator, archis, native, events)


# -- measurement -------------------------------------------------------------------


def _measure_cold(run_query, root_name: str) -> Measurement:
    """Run one cold query under a capture and read the telemetry back."""
    registry = get_registry()
    misses = registry.counter("buffer.misses")
    hits = registry.counter("buffer.hits")
    scanned = registry.counter("sql.rows_scanned")
    misses_before = misses.value
    hits_before = hits.value
    scanned_before = scanned.value
    with get_tracer().capture() as roots:
        result = run_query()
    root: Span = next(
        (s for s in reversed(roots) if s.name == root_name), roots[-1]
    )
    reads = misses.value - misses_before
    hit_count = hits.value - hits_before
    total = reads + hit_count
    return Measurement(
        seconds=root.duration,
        physical_reads=reads,
        result_size=len(getattr(result, "rows", result)),
        translate_seconds=root.stage_seconds("xquery.translate"),
        execute_seconds=root.stage_seconds("sql.execute"),
        cache_hit_rate=hit_count / total if total else 0.0,
        rows_scanned=scanned.value - scanned_before,
    )


def run_archis_cold(archis: ArchIS, query: BenchQuery) -> Measurement:
    archis.reset_caches()
    return _measure_cold(
        lambda: archis.xquery(query.xquery, allow_fallback=False),
        "archis.xquery",
    )


def run_native_cold(native: NativeXmlDatabase, query: BenchQuery) -> Measurement:
    native.reset_caches()
    return _measure_cold(
        lambda: native.xquery(query.xquery), "nativexml.xquery"
    )


def averaged(run, repeats: int = 3) -> Measurement:
    """Run a measurement function several times and average (paper: each
    query executed 7 times and averaged; we default to 3 for CI budgets)."""
    samples = [run() for _ in range(repeats)]
    count = len(samples)
    return Measurement(
        sum(s.seconds for s in samples) / count,
        samples[-1].physical_reads,
        samples[-1].result_size,
        sum(s.translate_seconds for s in samples) / count,
        sum(s.execute_seconds for s in samples) / count,
        samples[-1].cache_hit_rate,
        samples[-1].rows_scanned,
    )


def compare_engines(
    setup: BenchSetup, queries: list[BenchQuery], repeats: int = 3
) -> dict[str, dict[str, Measurement]]:
    """Cold-run every query on ArchIS and the native baseline."""
    out: dict[str, dict[str, Measurement]] = {}
    for query in queries:
        out[query.key] = {
            "archis": averaged(
                lambda q=query: run_archis_cold(setup.archis, q), repeats
            ),
            "native": averaged(
                lambda q=query: run_native_cold(setup.native, q), repeats
            ),
        }
    return out


def verify_equivalence(setup: BenchSetup, queries: list[BenchQuery]) -> None:
    """Assert ArchIS and the native baseline answer each query identically.

    Run before timing so a benchmark never reports speed on wrong answers.
    """
    from repro.xmlkit import serialize

    def canon(seq):
        return sorted(
            serialize(x) if hasattr(x, "name") else repr(_round(x)) for x in seq
        )

    def _round(value):
        if isinstance(value, float):
            rounded = round(value, 6)
            return int(rounded) if rounded.is_integer() else rounded
        return value

    for query in queries:
        a = canon(setup.archis.xquery(query.xquery, allow_fallback=False).rows)
        b = canon(setup.native.xquery(query.xquery))
        if a != b:
            raise AssertionError(
                f"{query.key}: ArchIS and native results diverge\n"
                f"  archis: {a[:3]}...\n  native: {b[:3]}..."
            )
