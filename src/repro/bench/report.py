"""Paper-vs-measured reporting for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import Measurement


@dataclass(frozen=True)
class PaperClaim:
    """One shape claim from the paper's evaluation."""

    experiment: str
    claim: str
    paper_value: str


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(str(row[i])) for row in [headers, *rows])
        for i in range(len(headers))
    ]
    def line(row):
        return "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep, *[line(r) for r in rows]])


def speedup(native: Measurement, archis: Measurement) -> float:
    if archis.seconds <= 0:
        return float("inf")
    return native.seconds / archis.seconds


def comparison_rows(
    results: dict[str, dict[str, Measurement]]
) -> list[list[str]]:
    rows = []
    for key in sorted(results):
        native = results[key]["native"]
        archis = results[key]["archis"]
        rows.append(
            [
                key,
                f"{native.seconds * 1000:.1f}",
                f"{archis.seconds * 1000:.1f}",
                f"{speedup(native, archis):.1f}x",
                f"{archis.translate_seconds * 1000:.2f}",
                f"{archis.execute_seconds * 1000:.2f}",
                str(archis.physical_reads),
                str(archis.rows_scanned),
                f"{archis.cache_hit_rate * 100:.0f}%",
                str(archis.result_size),
            ]
        )
    return rows


def print_comparison(
    title: str,
    results: dict[str, dict[str, Measurement]],
    paper_notes: dict[str, str] | None = None,
) -> str:
    headers = [
        "query", "native ms", "archis ms", "archis speedup",
        "translate ms", "exec ms", "archis phys reads", "rows scanned",
        "hit rate", "rows",
    ]
    rows = comparison_rows(results)
    if paper_notes:
        headers.append("paper")
        for row in rows:
            row.append(paper_notes.get(row[0], ""))
    text = f"\n== {title} ==\n" + format_table(headers, rows)
    print(text)
    return text
