"""The Table 3 benchmark queries, in XQuery over the employees H-view.

Dates are parameters so the harness can aim them at the generated
dataset's history; the defaults mirror the paper's mid-history choices.

Q5 counts matching salary *versions* (the paper counts employees; with
at most one salary version per employee live at any instant the two
coincide for snapshot-like windows, and the shape of the comparison is
unaffected — see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchQuery:
    key: str
    title: str
    xquery: str


def q1_snapshot_single(employee_id: int, date: str) -> BenchQuery:
    return BenchQuery(
        "Q1",
        f"snapshot (single object): salary of {employee_id} on {date}",
        f'for $s in doc("employees.xml")/employees/employee[id="{employee_id}"]'
        f'/salary[tstart(.) <= xs:date("{date}") and '
        f'tend(.) >= xs:date("{date}")] return $s',
    )


def q2_snapshot_avg(date: str) -> BenchQuery:
    return BenchQuery(
        "Q2",
        f"snapshot: average salary on {date}",
        f'avg(doc("employees.xml")/employees/employee/salary'
        f'[tstart(.) <= xs:date("{date}") and tend(.) >= xs:date("{date}")])',
    )


def q3_history_single(employee_id: int) -> BenchQuery:
    return BenchQuery(
        "Q3",
        f"history (single object): salary history of {employee_id}",
        f'for $s in doc("employees.xml")/employees/employee'
        f'[id="{employee_id}"]/salary return $s',
    )


def q4_history_count() -> BenchQuery:
    return BenchQuery(
        "Q4",
        "history: total number of salary changes",
        'count(doc("employees.xml")/employees/employee/salary)',
    )


def q5_slicing(threshold: int, start: str, end: str) -> BenchQuery:
    return BenchQuery(
        "Q5",
        f"temporal slicing: salaries > {threshold} in [{start}, {end}]",
        f'count(doc("employees.xml")/employees/employee/salary'
        f'[toverlaps(., telement(xs:date("{start}"), xs:date("{end}"))) '
        f"and . > {threshold}])",
    )


def q5_slicing_employees(threshold: int, start: str, end: str) -> BenchQuery:
    """The paper's exact Q5 wording: count *employees* whose salary
    exceeded the threshold during the window (distinct ids)."""
    return BenchQuery(
        "Q5e",
        f"temporal slicing: employees with salary > {threshold} "
        f"in [{start}, {end}]",
        f'count(distinct-values(doc("employees.xml")/employees/employee'
        f'[salary[toverlaps(., telement(xs:date("{start}"), '
        f'xs:date("{end}"))) and . > {threshold}]]/id))',
    )


def q6_temporal_join(after: str, window_days: int = 730) -> BenchQuery:
    return BenchQuery(
        "Q6",
        f"temporal join: max salary increase within {window_days} days "
        f"after {after}",
        f'max(for $e in doc("employees.xml")/employees/employee '
        f"for $a in $e/salary for $b in $e/salary "
        f'where tstart($a) >= xs:date("{after}") '
        f"and tstart($b) > tstart($a) "
        f"and tstart($b) - tstart($a) <= {window_days} "
        f"return $b - $a)",
    )


def default_queries(generator) -> list[BenchQuery]:
    """The Table 3 suite aimed at a generated dataset."""
    mid = generator.mid_history_date()
    late = generator.late_history_date()
    emp = generator.known_employee_id()
    return [
        q1_snapshot_single(emp, mid),
        q2_snapshot_avg(mid),
        q3_history_single(emp),
        q4_history_count(),
        q5_slicing(60000, mid, late),
        q5_slicing_employees(60000, mid, late),
        q6_temporal_join(mid),
    ]
