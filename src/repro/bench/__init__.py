"""Benchmark harness: Table 3 queries, engine builders, reporting."""

from repro.bench.harness import (
    BenchSetup,
    Measurement,
    averaged,
    build_archis,
    build_native,
    build_setup,
    compare_engines,
    run_archis_cold,
    run_native_cold,
    verify_equivalence,
)
from repro.bench.queries import BenchQuery, default_queries
from repro.bench.report import format_table, print_comparison, speedup

__all__ = [
    "BenchSetup",
    "averaged",
    "Measurement",
    "build_archis",
    "build_native",
    "build_setup",
    "compare_engines",
    "run_archis_cold",
    "run_native_cold",
    "verify_equivalence",
    "BenchQuery",
    "default_queries",
    "format_table",
    "print_comparison",
    "speedup",
]
