"""One-shot reproduction report.

Runs the core experiments (Table 3/Fig. 8, Fig. 9 clustering, Fig. 11/13
storage, Fig. 14 compressed queries, translation cost) at a configurable
scale and renders a single markdown report with paper-vs-measured rows —
the artifact a reviewer regenerates with one command:

    python -m repro.tools report -o report.md
"""

from __future__ import annotations

import time

from repro.bench.harness import (
    averaged,
    build_archis,
    build_native,
    build_setup,
    compare_engines,
    run_archis_cold,
    verify_equivalence,
)
from repro.bench.queries import default_queries
from repro.bench.report import format_table, speedup
from repro.xmlkit import serialize


def generate_report(employees: int = 50, years: int = 17, repeats: int = 2) -> str:
    sections = [
        "# ArchIS reproduction report",
        "",
        f"dataset: {employees} employees x {years} years "
        f"(synthetic TimeCenter-style history); {repeats} repeats per "
        "measurement, cold caches.",
        "",
    ]
    setup = build_setup(employees=employees, years=years)
    queries = default_queries(setup.generator)
    verify_equivalence(setup, queries)
    sections.append(
        f"equivalence: ArchIS (translated SQL/XML) and the native XML DB "
        f"agree on all {len(queries)} Table 3 queries.\n"
    )
    segment_count = setup.archis.segments.segment_count()
    sections.append(
        f"segments: {segment_count} "
        f"({setup.archis.segments.freeze_count} freezes at U_min=0.4). "
        "Clustering and BlockZIP effects need >= 2 segments; increase "
        "--employees/--years if this run shows only one.\n"
    )

    # Fig. 8
    results = compare_engines(setup, queries, repeats=repeats)
    paper8 = {"Q2": "~102x", "Q4": "~4x", "Q5": "~66x", "Q6": "~35x"}
    rows = [
        [
            key,
            f"{results[key]['native'].seconds*1000:.1f}",
            f"{results[key]['archis'].seconds*1000:.1f}",
            f"{speedup(results[key]['native'], results[key]['archis']):.1f}x",
            paper8.get(key, "wins"),
        ]
        for key in sorted(results)
    ]
    sections.append("## Table 3 / Fig. 8 — ArchIS vs native XML DB\n")
    sections.append(
        format_table(
            ["query", "native ms", "archis ms", "speedup", "paper"], rows
        )
    )

    # Fig. 9 (clustering)
    _, unclustered, _ = build_archis(
        employees=employees, years=years, umin=None
    )
    paper9 = {"Q2": "5.7x", "Q5": "5.5x", "Q6": "1.7x", "Q4": "slower"}
    rows = []
    for query in queries:
        clustered_cost = averaged(
            lambda q=query: run_archis_cold(setup.archis, q), repeats
        )
        unclustered_cost = averaged(
            lambda q=query: run_archis_cold(unclustered, q), repeats
        )
        rows.append(
            [
                query.key,
                f"{unclustered_cost.seconds*1000:.1f}",
                f"{clustered_cost.seconds*1000:.1f}",
                f"{unclustered_cost.seconds / max(clustered_cost.seconds, 1e-9):.2f}x",
                paper9.get(query.key, "~1x"),
            ]
        )
    sections.append("\n## Fig. 9 — segment clustering effect (ArchIS)\n")
    sections.append(
        format_table(
            ["query", "no-cluster ms", "clustered ms", "gain", "paper"], rows
        )
    )

    # Fig. 11 / 13 storage
    hdoc_bytes = len(serialize(setup.archis.publish("employee")).encode())
    tamino = build_native(setup.archis, compress=True).storage_bytes()
    tamino_plain = build_native(setup.archis, compress=False).storage_bytes()
    storage_rows = [
        ["tamino (compressed)", f"{tamino / hdoc_bytes:.2f}", "0.22"],
        ["tamino (uncompressed)", f"{tamino_plain / hdoc_bytes:.2f}", "1.47"],
    ]
    for profile, paper_plain, paper_zip in (
        ("db2", "0.75", "0.23"), ("atlas", "1.02", "0.23"),
    ):
        _, engine, _ = build_archis(
            employees=employees, years=years, profile=profile, umin=0.4
        )
        plain = engine.storage_bytes()
        engine.compress_archive()
        compressed = engine.storage_bytes()
        storage_rows.append(
            [f"archis-{profile} (plain)", f"{plain / hdoc_bytes:.2f}",
             paper_plain]
        )
        storage_rows.append(
            [f"archis-{profile} (blockzip)",
             f"{compressed / hdoc_bytes:.2f}", paper_zip]
        )
    sections.append("\n## Fig. 11 / Fig. 13 — storage over H-document size\n")
    sections.append(
        format_table(["system", "measured", "paper"], storage_rows)
    )

    # Fig. 14: compressed queries
    compressed_setup = build_setup(
        employees=employees, years=years, compress=True
    )
    verify_equivalence(compressed_setup, queries)
    results14 = compare_engines(compressed_setup, queries, repeats=repeats)
    rows = [
        [
            key,
            f"{results14[key]['native'].seconds*1000:.1f}",
            f"{results14[key]['archis'].seconds*1000:.1f}",
            f"{speedup(results14[key]['native'], results14[key]['archis']):.1f}x",
        ]
        for key in sorted(results14)
    ]
    sections.append("\n## Fig. 14 — query performance with BlockZIP\n")
    sections.append(
        format_table(["query", "native ms", "archis ms", "speedup"], rows)
    )

    # translation cost
    rows = []
    for query in queries:
        start = time.perf_counter()
        for _ in range(50):
            setup.archis.translate(query.xquery)
        per = (time.perf_counter() - start) / 50
        rows.append([query.key, f"{per*1000:.3f}"])
    sections.append(
        "\n## translation cost (paper: < 0.1 ms per query)\n"
    )
    sections.append(format_table(["query", "ms"], rows))
    sections.append("")
    return "\n".join(sections)
