"""Index structures: a B+ tree with duplicates and range scans."""

from repro.index.bptree import BPlusTree

__all__ = ["BPlusTree"]
