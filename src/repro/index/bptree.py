"""B+ tree index with duplicate keys, range scans and deletion.

The relational engine builds one of these per ``CREATE INDEX``.  Keys are
tuples of comparable Python values (ints, floats, strings); payloads are
RIDs.  Duplicates are supported by appending the payload to the key's entry
list in the leaf.

The tree is kept in memory but reports an approximate on-disk footprint
through :meth:`BPlusTree.approx_bytes`, which the storage experiments charge
as index overhead (see DESIGN.md substitution table).
"""

from __future__ import annotations

import bisect
from typing import Iterator

from repro.errors import IndexError_

Key = tuple
Payload = object


class _Node:
    __slots__ = ("keys", "leaf")

    def __init__(self, leaf: bool) -> None:
        self.keys: list[Key] = []
        self.leaf = leaf


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self) -> None:
        super().__init__(leaf=True)
        self.values: list[list[Payload]] = []
        self.next: _Leaf | None = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__(leaf=False)
        self.children: list[_Node] = []


class BPlusTree:
    """Order-``order`` B+ tree (max ``order`` keys per node)."""

    def __init__(self, order: int = 64) -> None:
        if order < 4:
            raise IndexError_("B+ tree order must be at least 4")
        self._order = order
        self._root: _Node = _Leaf()
        self._size = 0

    # -- public API -------------------------------------------------------

    @property
    def order(self) -> int:
        return self._order

    def __len__(self) -> int:
        """Total number of (key, payload) entries."""
        return self._size

    def insert(self, key: Key, payload: Payload) -> None:
        """Insert a payload under ``key`` (duplicates allowed)."""
        self._check_key(key)
        split = self._insert(self._root, key, payload)
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def delete(self, key: Key, payload: Payload | None = None) -> bool:
        """Delete one entry.

        With ``payload`` given, removes that specific payload under the key;
        otherwise removes the whole key with all duplicates.  Returns True
        when something was removed.
        """
        self._check_key(key)
        removed = self._delete(self._root, key, payload)
        if removed and isinstance(self._root, _Internal):
            if len(self._root.children) == 1:
                self._root = self._root.children[0]
        return removed > 0

    def search(self, key: Key) -> list[Payload]:
        """All payloads stored under ``key`` (empty list when absent)."""
        self._check_key(key)
        leaf = self._find_leaf(key)
        position = bisect.bisect_left(leaf.keys, key)
        if position < len(leaf.keys) and leaf.keys[position] == key:
            return list(leaf.values[position])
        return []

    def range(
        self,
        low: Key | None = None,
        high: Key | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[Key, Payload]]:
        """Iterate entries with ``low <= key <= high`` in key order.

        Either bound may be None (unbounded).  Prefix bounds work because
        tuple comparison is lexicographic.
        """
        leaf = self._leftmost_leaf() if low is None else self._find_leaf(low)
        position = 0
        if low is not None:
            position = (
                bisect.bisect_left(leaf.keys, low)
                if low_inclusive
                else bisect.bisect_right(leaf.keys, low)
            )
        while leaf is not None:
            while position < len(leaf.keys):
                key = leaf.keys[position]
                if high is not None:
                    if high_inclusive and key > high:
                        return
                    if not high_inclusive and key >= high:
                        return
                for payload in leaf.values[position]:
                    yield key, payload
                position += 1
            leaf = leaf.next
            position = 0

    def prefix(self, prefix_key: Key) -> Iterator[tuple[Key, Payload]]:
        """Iterate entries whose key starts with ``prefix_key``."""
        for key, payload in self.range(low=prefix_key):
            if key[: len(prefix_key)] != prefix_key:
                return
            yield key, payload

    def items(self) -> Iterator[tuple[Key, Payload]]:
        """All entries in key order."""
        return self.range()

    def keys(self) -> Iterator[Key]:
        """Distinct keys in order."""
        leaf: _Leaf | None = self._leftmost_leaf()
        while leaf is not None:
            yield from leaf.keys
            leaf = leaf.next

    def height(self) -> int:
        node = self._root
        levels = 1
        while isinstance(node, _Internal):
            node = node.children[0]
            levels += 1
        return levels

    def approx_bytes(self) -> int:
        """Approximate serialized size, used for storage accounting.

        Charges 8 bytes per key component plus 8 bytes per payload pointer
        and a small per-node header — a compact-but-realistic estimate for
        a disk-resident B+ tree with our integer/short-string keys.
        """
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            node_bytes = 24  # header
            for key in node.keys:
                node_bytes += 8 * len(key)
            if isinstance(node, _Leaf):
                node_bytes += 8 * sum(len(v) for v in node.values)
            else:
                node_bytes += 8 * len(node.children)
                stack.extend(node.children)
            total += node_bytes
        return total

    # -- insertion ---------------------------------------------------------

    def _insert(
        self, node: _Node, key: Key, payload: Payload
    ) -> tuple[Key, _Node] | None:
        if isinstance(node, _Leaf):
            position = bisect.bisect_left(node.keys, key)
            if position < len(node.keys) and node.keys[position] == key:
                node.values[position].append(payload)
                return None
            node.keys.insert(position, key)
            node.values.insert(position, [payload])
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None
        assert isinstance(node, _Internal)
        position = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[position], key, payload)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(position, sep)
        node.children.insert(position + 1, right)
        if len(node.keys) > self._order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Leaf) -> tuple[Key, _Leaf]:
        middle = len(node.keys) // 2
        right = _Leaf()
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> tuple[Key, _Internal]:
        middle = len(node.keys) // 2
        sep = node.keys[middle]
        right = _Internal()
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return sep, right

    # -- deletion -----------------------------------------------------------

    def _delete(
        self, node: _Node, key: Key, payload: Payload | None
    ) -> int:
        """Returns the number of entries removed under ``node``."""
        if isinstance(node, _Leaf):
            position = bisect.bisect_left(node.keys, key)
            if position >= len(node.keys) or node.keys[position] != key:
                return 0
            bucket = node.values[position]
            if payload is None:
                removed = len(bucket)
                bucket.clear()
            else:
                try:
                    bucket.remove(payload)
                except ValueError:
                    return 0
                removed = 1
            if not bucket:
                node.keys.pop(position)
                node.values.pop(position)
            self._size -= removed
            return removed
        assert isinstance(node, _Internal)
        position = bisect.bisect_right(node.keys, key)
        child = node.children[position]
        removed = self._delete(child, key, payload)
        if removed:
            self._rebalance(node, position)
        return removed

    def _min_keys(self) -> int:
        return self._order // 2

    def _rebalance(self, parent: _Internal, position: int) -> None:
        child = parent.children[position]
        if len(child.keys) >= self._min_keys():
            return
        left = parent.children[position - 1] if position > 0 else None
        right = (
            parent.children[position + 1]
            if position + 1 < len(parent.children)
            else None
        )
        if left is not None and len(left.keys) > self._min_keys():
            self._borrow_from_left(parent, position, left, child)
        elif right is not None and len(right.keys) > self._min_keys():
            self._borrow_from_right(parent, position, child, right)
        elif left is not None:
            self._merge(parent, position - 1, left, child)
        elif right is not None:
            self._merge(parent, position, child, right)

    def _borrow_from_left(
        self, parent: _Internal, position: int, left: _Node, child: _Node
    ) -> None:
        if isinstance(child, _Leaf):
            assert isinstance(left, _Leaf)
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[position - 1] = child.keys[0]
        else:
            assert isinstance(left, _Internal) and isinstance(child, _Internal)
            child.keys.insert(0, parent.keys[position - 1])
            parent.keys[position - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(
        self, parent: _Internal, position: int, child: _Node, right: _Node
    ) -> None:
        if isinstance(child, _Leaf):
            assert isinstance(right, _Leaf)
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[position] = right.keys[0]
        else:
            assert isinstance(right, _Internal) and isinstance(child, _Internal)
            child.keys.append(parent.keys[position])
            parent.keys[position] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(
        self, parent: _Internal, left_pos: int, left: _Node, right: _Node
    ) -> None:
        if isinstance(left, _Leaf):
            assert isinstance(right, _Leaf)
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            assert isinstance(left, _Internal) and isinstance(right, _Internal)
            left.keys.append(parent.keys[left_pos])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_pos)
        parent.children.pop(left_pos + 1)

    # -- lookup helpers -------------------------------------------------------

    def _find_leaf(self, key: Key) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            position = bisect.bisect_right(node.keys, key)
            node = node.children[position]
        assert isinstance(node, _Leaf)
        return node

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        assert isinstance(node, _Leaf)
        return node

    @staticmethod
    def _check_key(key: Key) -> None:
        if not isinstance(key, tuple):
            raise IndexError_(
                f"index keys must be tuples, got {type(key).__name__}"
            )

    # -- invariant checking (used by property tests) ---------------------------

    def check_invariants(self) -> None:
        """Raise when any structural invariant is violated."""
        self._check_node(self._root, None, None, is_root=True)
        # leaf chain must be sorted and complete
        chained = []
        leaf: _Leaf | None = self._leftmost_leaf()
        while leaf is not None:
            chained.extend(leaf.keys)
            leaf = leaf.next
        if chained != sorted(chained):
            raise IndexError_("leaf chain keys out of order")
        if len(chained) != self._distinct_count(self._root):
            raise IndexError_("leaf chain misses keys")

    def _distinct_count(self, node: _Node) -> int:
        if isinstance(node, _Leaf):
            return len(node.keys)
        assert isinstance(node, _Internal)
        return sum(self._distinct_count(child) for child in node.children)

    def _check_node(
        self,
        node: _Node,
        low: Key | None,
        high: Key | None,
        is_root: bool,
    ) -> None:
        if node.keys != sorted(node.keys):
            raise IndexError_("node keys out of order")
        for key in node.keys:
            if low is not None and key < low:
                raise IndexError_("key below subtree lower bound")
            if high is not None and key >= high and isinstance(node, _Internal):
                raise IndexError_("separator above subtree upper bound")
        if not is_root and len(node.keys) > self._order:
            raise IndexError_("node overflow")
        if isinstance(node, _Internal):
            if len(node.children) != len(node.keys) + 1:
                raise IndexError_("fanout mismatch")
            bounds = [low, *node.keys, high]
            for index, child in enumerate(node.children):
                self._check_node(
                    child, bounds[index], bounds[index + 1], is_root=False
                )
