"""H-table schemas (paper Section 5.1).

For each tracked relation ``R(key, a1, ..., an)`` ArchIS stores:

- a **key table** ``R_id(id, [extra key columns], tstart, tend, segno)``;
- one **attribute history table** ``R_ai(id, ai, tstart, tend, segno)`` per
  non-key attribute;
- a row in the **global relation table**
  ``relations(relationname, tstart, tend)``.

The ``segno`` column supports usefulness-based clustering (Section 6); in
unsegmented mode it stays at segment 1 forever and the indexes are built
without the ``segno`` prefix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchisError
from repro.rdb.database import Database
from repro.rdb.types import ColumnType

RELATIONS_TABLE = "relations"
SEGMENT_TABLE = "segment"


@dataclass(frozen=True)
class TrackedRelation:
    """Metadata for one relation archived into H-tables.

    ``key`` is the invariant key column; ``attributes`` maps attribute
    names to their column types (the history tables' value columns).
    """

    name: str
    key: str
    attributes: dict[str, ColumnType]

    @property
    def key_table(self) -> str:
        return f"{self.name}_id"

    def attribute_table(self, attribute: str) -> str:
        if attribute not in self.attributes:
            raise ArchisError(
                f"relation {self.name} has no tracked attribute {attribute}"
            )
        return f"{self.name}_{attribute}"

    def all_tables(self) -> list[str]:
        return [self.key_table] + [
            self.attribute_table(a) for a in self.attributes
        ]


def create_global_tables(db: Database) -> None:
    """Create ``relations`` and ``segment`` if they do not exist."""
    if not db.has_table(RELATIONS_TABLE):
        db.create_table(
            RELATIONS_TABLE,
            [
                ("relationname", ColumnType.VARCHAR),
                ("tstart", ColumnType.DATE),
                ("tend", ColumnType.DATE),
            ],
        )
    if not db.has_table(SEGMENT_TABLE):
        db.create_table(
            SEGMENT_TABLE,
            [
                ("segno", ColumnType.INT),
                ("segstart", ColumnType.DATE),
                ("segend", ColumnType.DATE),
            ],
        )


def create_htables(
    db: Database,
    relation: TrackedRelation,
    segmented: bool,
    value_indexes: bool = False,
) -> None:
    """Create the key and attribute history tables with their indexes.

    Segmented mode clusters every index on ``(segno, ...)`` so that a
    snapshot query restricted to one segment touches one index range
    (paper Section 6.3: "all indexes are now augmented with a segno
    information").
    """
    create_global_tables(db)
    key_table = db.create_table(
        relation.key_table,
        [
            ("id", ColumnType.INT),
            ("tstart", ColumnType.DATE),
            ("tend", ColumnType.DATE),
            ("segno", ColumnType.INT),
        ],
    )
    _history_indexes(key_table, relation.key_table, segmented)
    for attribute, ctype in relation.attributes.items():
        table = db.create_table(
            relation.attribute_table(attribute),
            [
                ("id", ColumnType.INT),
                (attribute, ctype),
                ("tstart", ColumnType.DATE),
                ("tend", ColumnType.DATE),
                ("segno", ColumnType.INT),
            ],
        )
        _history_indexes(table, relation.attribute_table(attribute), segmented)
        if value_indexes:
            _value_index(table, relation.attribute_table(attribute), attribute)
    db.table(RELATIONS_TABLE).insert(
        (relation.name, db.current_date, None)
    )
    # the relation history is open-ended: store 'now' in tend
    db.table(RELATIONS_TABLE).update_where(
        lambda r: r["relationname"] == relation.name and r["tend"] is None,
        {"tend": _forever()},
    )


def _forever() -> int:
    from repro.util.timeutil import FOREVER

    return FOREVER


def _history_indexes(table, name: str, segmented: bool) -> None:
    if segmented:
        table.create_index(f"{name}_ix_id", ("segno", "id"))
        table.create_index(f"{name}_ix_tstart", ("segno", "tstart"))
    else:
        table.create_index(f"{name}_ix_id", ("id",))
        table.create_index(f"{name}_ix_tstart", ("tstart",))


def _value_index(table, name: str, attribute: str) -> None:
    """Value index, matching the paper's "indexes are created for all
    nodes/attributes which have values selected"."""
    table.create_index(f"{name}_ix_value", (attribute,))
