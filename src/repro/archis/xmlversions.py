"""Multi-version XML document archiving (paper Section 9).

The paper's closing contribution claims the temporally grouped
timestamping scheme "is also applicable to generic multi-version XML
documents, to support evolution queries using XQuery ... e.g., the
successive revision of XLink standards, or, from the history of
university catalogs, when a new course was first introduced."

:class:`XmlVersionArchive` implements that: commit successive versions of
an arbitrary XML document; the archive diffs each version against the
previous one and maintains a **V-document** — a single tree in which every
node carries an inclusive ``[tstart, tend]`` interval, nodes that changed
are closed and re-opened, and unchanged subtrees keep their timestamps.
The V-document is ordinary timestamped XML, so the whole temporal XQuery
function library (``tstart``, ``tend``, ``toverlaps``, ...) works on it
unchanged.

Node identity follows the versioned-XML convention of [24]/[51]: a child
matches across versions when it has the same element name and the same
value of its *key attribute* (``id`` or ``name``, when present), else by
ordinal position among same-named siblings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ArchisError
from repro.util.timeutil import FOREVER, format_date, parse_date
from repro.xmlkit.dom import Element, Text

_KEY_ATTRS = ("id", "name", "key")


@dataclass
class _VNode:
    """One versioned element: static shape + lifetime interval."""

    name: str
    attrs: dict
    tstart: int
    tend: int = FOREVER
    text_runs: list = field(default_factory=list)  # [(value, tstart, tend)]
    children: list = field(default_factory=list)  # of _VNode

    @property
    def live(self) -> bool:
        return self.tend == FOREVER

    def close(self, end: int) -> None:
        self.tend = max(self.tstart, end)
        self.text_runs = [
            (value, start, t_end if t_end != FOREVER else max(start, end))
            for value, start, t_end in self.text_runs
        ]
        for child in self.children:
            if child.live:
                child.close(end)

    def identity(self) -> tuple:
        for attr in _KEY_ATTRS:
            if attr in self.attrs:
                return (self.name, attr, self.attrs[attr])
        return (self.name, None, None)

    def own_text(self) -> str:
        live = [v for v, _, end in self.text_runs if end == FOREVER]
        return "".join(live)


def _identity_of(element: Element) -> tuple:
    for attr in _KEY_ATTRS:
        if attr in element.attrs:
            return (element.name, attr, element.attrs[attr])
    return (element.name, None, None)


def _own_text(element: Element) -> str:
    return "".join(
        child.value for child in element.children if isinstance(child, Text)
    )


class XmlVersionArchive:
    """Archives the version history of one XML document."""

    def __init__(self, name: str = "document") -> None:
        self.name = name
        self._root: _VNode | None = None
        self._versions: list[int] = []

    @property
    def version_count(self) -> int:
        return len(self._versions)

    @property
    def version_dates(self) -> list[int]:
        return list(self._versions)

    # -- committing versions ---------------------------------------------------

    def commit(self, root: Element, date: int | str) -> None:
        """Record ``root`` as the document's content as of ``date``."""
        when = parse_date(date) if isinstance(date, str) else date
        if self._versions and when <= self._versions[-1]:
            raise ArchisError(
                "versions must be committed in increasing date order"
            )
        if self._root is None:
            self._root = self._build(root, when)
        else:
            if (
                self._root.name != root.name
                or self._root.attrs != root.attrs
            ):
                raise ArchisError(
                    "the document root must keep its name and attributes"
                )
            self._merge(self._root, root, when)
        self._versions.append(when)

    def _build(self, element: Element, when: int) -> _VNode:
        node = _VNode(element.name, dict(element.attrs), when)
        text = _own_text(element)
        if text.strip():
            node.text_runs.append((text, when, FOREVER))
        for child in element.elements():
            node.children.append(self._build(child, when))
        return node

    def _merge(self, vnode: _VNode, element: Element, when: int) -> None:
        # text content
        new_text = _own_text(element)
        old_text = vnode.own_text()
        if new_text != old_text:
            vnode.text_runs = [
                (v, s, e if e != FOREVER else max(s, when - 1))
                for v, s, e in vnode.text_runs
            ]
            if new_text.strip():
                vnode.text_runs.append((new_text, when, FOREVER))
        # children, matched by identity then ordinal
        live_children = [c for c in vnode.children if c.live]
        unmatched = list(live_children)
        ordinal_seen: dict[tuple, int] = {}
        for child in element.elements():
            identity = _identity_of(child)
            match = self._take_match(unmatched, child, identity, ordinal_seen)
            if match is None:
                vnode.children.append(self._build(child, when))
            elif match.attrs != dict(child.attrs):
                # attribute change = node replacement (new lifetime)
                match.close(when - 1)
                vnode.children.append(self._build(child, when))
            else:
                self._merge(match, child, when)
        for leftover in unmatched:
            leftover.close(when - 1)

    @staticmethod
    def _take_match(
        unmatched: list, child: Element, identity: tuple, ordinal_seen: dict
    ) -> "_VNode | None":
        if identity[1] is not None:
            for candidate in unmatched:
                if candidate.identity() == identity:
                    unmatched.remove(candidate)
                    return candidate
            return None
        # positional: pair with the first unmatched same-named sibling
        del ordinal_seen  # identity here is purely positional
        for candidate in unmatched:
            if candidate.name == child.name:
                unmatched.remove(candidate)
                return candidate
        return None

    # -- views ---------------------------------------------------------------------

    def vdocument(self) -> Element:
        """The temporally grouped V-document with tstart/tend everywhere."""
        if self._root is None:
            raise ArchisError("no versions committed yet")
        return self._render(self._root)

    def _render(self, vnode: _VNode) -> Element:
        element = Element(vnode.name, dict(vnode.attrs))
        element.set("tstart", format_date(vnode.tstart))
        element.set("tend", format_date(vnode.tend))
        for value, start, end in vnode.text_runs:
            run = Element("text")
            run.set("tstart", format_date(start))
            run.set("tend", format_date(end))
            run.append(Text(value))
            element.append(run)
        for child in vnode.children:
            element.append(self._render(child))
        return element

    def snapshot(self, date: int | str) -> Element | None:
        """Reconstruct the document as it stood on ``date``."""
        when = parse_date(date) if isinstance(date, str) else date
        if self._root is None:
            raise ArchisError("no versions committed yet")
        return self._reconstruct(self._root, when)

    def _reconstruct(self, vnode: _VNode, when: int) -> Element | None:
        if not (vnode.tstart <= when <= vnode.tend):
            return None
        element = Element(vnode.name, dict(vnode.attrs))
        for value, start, end in vnode.text_runs:
            if start <= when <= end:
                element.append(Text(value))
        for child in vnode.children:
            rebuilt = self._reconstruct(child, when)
            if rebuilt is not None:
                element.append(rebuilt)
        return element

    # -- evolution queries ----------------------------------------------------------

    def first_appearance(self, name: str, text: str | None = None) -> int | None:
        """When an element (optionally with given text) first appeared.

        The paper's "when a new course was first introduced" query.
        Returns days since epoch, or None when never present.
        """
        if self._root is None:
            return None
        best: int | None = None
        stack = [self._root]
        while stack:
            node = stack.pop()
            stack.extend(node.children)
            if node.name != name:
                continue
            if text is not None:
                texts = {v for v, _, _ in node.text_runs}
                if text not in texts:
                    continue
            if best is None or node.tstart < best:
                best = node.tstart
        return best

    def xquery(self, query: str, current_date: int | None = None) -> list:
        """Run a temporal XQuery against the V-document."""
        from repro.xquery import run_xquery

        today = (
            current_date
            if current_date is not None
            else (self._versions[-1] if self._versions else 0)
        )
        return run_xquery(
            query, {f"{self.name}.xml": self.vdocument()}, today
        )
