"""One configuration object for the whole engine facade.

:class:`ArchISConfig` gathers every knob that used to be a scattered
positional flag — profile selection, clustering thresholds, cache and
buffer sizes, durability mode and the batched-ingest batch size — into
a single keyword-only frozen dataclass consumed by
``ArchIS.__init__``/``ArchIS.open``.  The old per-call flags still work
as deprecated aliases (they build a config under the hood).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace

from repro.errors import ArchisError

#: default bound on the per-system XQuery → Translation LRU cache
DEFAULT_TRANSLATION_CACHE_SIZE = 128

#: sentinel for "caller did not pass this legacy flag"
_UNSET = object()

_WARNED_ALIASES: set[str] = set()


@dataclass(frozen=True, kw_only=True)
class ArchISConfig:
    """Engine-wide settings (all keyword-only, all with defaults).

    ``profile``
        ``"atlas"`` (update-log tracking) or ``"db2"`` (triggers).
    ``umin``
        The clustering threshold U_min in (0, 1); ``None`` disables
        segmentation (paper Fig. 9's unclustered comparison point).
    ``min_segment_rows``
        Minimum live-segment size before a freeze may trigger.
    ``translation_cache_size``
        Bound on the XQuery → Translation LRU cache.
    ``batch_size``
        Update-log entries archived per :class:`BatchArchiver` batch.
        ``None`` keeps the row-at-a-time apply path.
    ``durability``
        Pager mode for file-backed archives: ``"wal"`` or ``"none"``.
    ``buffer_pages``
        Buffer-pool capacity for file-backed archives.
    ``maintenance``
        How segment freezes run: ``"inline"`` (synchronous sorted
        rewrite inside the apply that triggered it), ``"background"``
        (cheap logical switch on the apply path; a maintenance worker
        performs the rewrite in bounded steps), or ``"off"`` (never
        freeze).
    ``maintenance_step_rows``
        Row budget per background rewrite step (bounds how long the
        worker holds the history lock at a time).
    ``shards``
        Number of independent H-table stores the archive is partitioned
        into by key (each with its own pager, WAL, blob store, segment
        table and maintenance worker).  ``None`` means "unset" and
        behaves as 1 — the single-store engine, byte-identical to the
        pre-sharding code path; an explicit value is checked against a
        persisted archive's layout on open.
    ``shard_by``
        Key-partitioning scheme: ``"hash"`` (stable multiplicative hash)
        or ``"range"`` (block-striped key ranges, preserving key
        locality within a block).  ``None`` means "unset" (hash).
    """

    profile: str = "atlas"
    umin: float | None = 0.4
    min_segment_rows: int = 64
    translation_cache_size: int = DEFAULT_TRANSLATION_CACHE_SIZE
    batch_size: int | None = None
    durability: str = "wal"
    buffer_pages: int = 1024
    maintenance: str = "inline"
    maintenance_step_rows: int = 1024
    shards: int | None = None
    shard_by: str | None = None

    def __post_init__(self) -> None:
        from repro.archis.clustering import MAINTENANCE_MODES
        from repro.archis.sharding import SHARD_MODES

        if self.maintenance not in MAINTENANCE_MODES:
            raise ArchisError(
                f"unknown maintenance mode {self.maintenance!r}; use "
                + ", ".join(MAINTENANCE_MODES)
            )
        if self.shards is not None and self.shards < 1:
            raise ArchisError("shards must be >= 1 (or None)")
        if self.shard_by is not None and self.shard_by not in SHARD_MODES:
            raise ArchisError(
                f"unknown shard_by {self.shard_by!r}; use "
                + ", ".join(SHARD_MODES)
            )
        if self.maintenance_step_rows < 1:
            raise ArchisError("maintenance_step_rows must be >= 1")
        if self.translation_cache_size < 1:
            raise ArchisError("translation_cache_size must be >= 1")
        if self.batch_size is not None and self.batch_size < 1:
            raise ArchisError("batch_size must be >= 1 (or None)")
        if self.buffer_pages < 1:
            raise ArchisError("buffer_pages must be >= 1")
        if self.durability not in ("wal", "none"):
            raise ArchisError(
                f"unknown durability {self.durability!r}; use wal or none"
            )

    @property
    def shard_count(self) -> int:
        """Effective shard count (``shards`` with the unset default)."""
        return self.shards if self.shards is not None else 1

    @property
    def shard_mode(self) -> str:
        """Effective partitioning scheme (``shard_by`` defaulted)."""
        return self.shard_by if self.shard_by is not None else "hash"

    def replace(self, **changes) -> "ArchISConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def resolve_config(
    config: ArchISConfig | None, **legacy
) -> ArchISConfig:
    """Fold deprecated per-call flags into a config.

    ``legacy`` maps field names to values, with :data:`_UNSET` marking
    flags the caller did not pass.  Passing both a ``config`` and an
    explicit legacy flag is a conflict (which one wins would be a silent
    guess); passing only legacy flags builds a config from them and
    warns once per flag per process.
    """
    passed = {k: v for k, v in legacy.items() if v is not _UNSET}
    if config is not None:
        if passed:
            raise ArchisError(
                "pass either config= or the legacy flags "
                f"({', '.join(sorted(passed))}), not both"
            )
        return config
    for name in passed:
        if name not in _WARNED_ALIASES:
            _WARNED_ALIASES.add(name)
            warnings.warn(
                f"the {name}= flag is a deprecated alias; pass "
                f"config=ArchISConfig({name}=...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
    return ArchISConfig(**passed)


__all__ = [
    "ArchISConfig",
    "DEFAULT_TRANSLATION_CACHE_SIZE",
    "resolve_config",
]
