"""One configuration object for the whole engine facade.

:class:`ArchISConfig` gathers every knob that used to be a scattered
positional flag — profile selection, clustering thresholds, cache and
buffer sizes, durability mode and the batched-ingest batch size — into
a single keyword-only frozen dataclass consumed by
``ArchIS.__init__``/``ArchIS.open``.  The old per-call flags
(``profile=``, ``umin=``, ``buffer_pages=``, ...) were deprecated
aliases for several releases and are now gone: pass
``config=ArchISConfig(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.errors import ArchisError

#: default bound on the per-system XQuery → Translation LRU cache
DEFAULT_TRANSLATION_CACHE_SIZE = 128


@dataclass(frozen=True, kw_only=True)
class ArchISConfig:
    """Engine-wide settings (all keyword-only, all with defaults).

    ``profile``
        ``"atlas"`` (update-log tracking) or ``"db2"`` (triggers).
    ``umin``
        The clustering threshold U_min in (0, 1); ``None`` disables
        segmentation (paper Fig. 9's unclustered comparison point).
    ``min_segment_rows``
        Minimum live-segment size before a freeze may trigger.
    ``translation_cache_size``
        Bound on the XQuery → Translation LRU cache.
    ``batch_size``
        Update-log entries archived per :class:`BatchArchiver` batch.
        ``None`` keeps the row-at-a-time apply path.
    ``durability``
        Pager mode for file-backed archives: ``"wal"`` or ``"none"``.
    ``buffer_pages``
        Buffer-pool capacity for file-backed archives.
    ``maintenance``
        How segment freezes run: ``"inline"`` (synchronous sorted
        rewrite inside the apply that triggered it), ``"background"``
        (cheap logical switch on the apply path; a maintenance worker
        performs the rewrite in bounded steps), or ``"off"`` (never
        freeze).
    ``maintenance_step_rows``
        Row budget per background rewrite step (bounds how long the
        worker holds the history lock at a time).
    ``shards``
        Number of independent H-table stores the archive is partitioned
        into by key (each with its own pager, WAL, blob store, segment
        table and maintenance worker).  ``None`` means "unset" and
        behaves as 1 — the single-store engine, byte-identical to the
        pre-sharding code path; an explicit value is checked against a
        persisted archive's layout on open.
    ``shard_by``
        Key-partitioning scheme: ``"hash"`` (stable multiplicative hash)
        or ``"range"`` (block-striped key ranges, preserving key
        locality within a block).  ``None`` means "unset" (hash).
    """

    profile: str = "atlas"
    umin: float | None = 0.4
    min_segment_rows: int = 64
    translation_cache_size: int = DEFAULT_TRANSLATION_CACHE_SIZE
    batch_size: int | None = None
    durability: str = "wal"
    buffer_pages: int = 1024
    maintenance: str = "inline"
    maintenance_step_rows: int = 1024
    shards: int | None = None
    shard_by: str | None = None

    def __post_init__(self) -> None:
        from repro.archis.clustering import MAINTENANCE_MODES
        from repro.archis.sharding import SHARD_MODES

        if self.maintenance not in MAINTENANCE_MODES:
            raise ArchisError(
                f"unknown maintenance mode {self.maintenance!r}; use "
                + ", ".join(MAINTENANCE_MODES)
            )
        if self.shards is not None and self.shards < 1:
            raise ArchisError("shards must be >= 1 (or None)")
        if self.shard_by is not None and self.shard_by not in SHARD_MODES:
            raise ArchisError(
                f"unknown shard_by {self.shard_by!r}; use "
                + ", ".join(SHARD_MODES)
            )
        if self.maintenance_step_rows < 1:
            raise ArchisError("maintenance_step_rows must be >= 1")
        if self.translation_cache_size < 1:
            raise ArchisError("translation_cache_size must be >= 1")
        if self.batch_size is not None and self.batch_size < 1:
            raise ArchisError("batch_size must be >= 1 (or None)")
        if self.buffer_pages < 1:
            raise ArchisError("buffer_pages must be >= 1")
        if self.durability not in ("wal", "none"):
            raise ArchisError(
                f"unknown durability {self.durability!r}; use wal or none"
            )

    @property
    def shard_count(self) -> int:
        """Effective shard count (``shards`` with the unset default)."""
        return self.shards if self.shards is not None else 1

    @property
    def shard_mode(self) -> str:
        """Effective partitioning scheme (``shard_by`` defaulted)."""
        return self.shard_by if self.shard_by is not None else "hash"

    def replace(self, **changes) -> "ArchISConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def resolve_config(config: ArchISConfig | None) -> ArchISConfig:
    """Default a missing config (the legacy-alias folding is gone)."""
    return config if config is not None else ArchISConfig()


__all__ = [
    "ArchISConfig",
    "DEFAULT_TRANSLATION_CACHE_SIZE",
    "resolve_config",
]
