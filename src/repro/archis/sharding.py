"""Key partitioning for sharded archives.

The paper's H-table design (Sections 5–6) partitions cleanly by key:
every version of a tuple lives under its ``id``, so splitting the id
space across N independent stores preserves the per-shard usefulness
accounting, segment restriction and compression machinery unchanged —
each shard is simply a smaller single-store ArchIS.

This module holds the pure routing logic: :class:`ShardRouter` maps a
key to its shard and, when a query carries a key-equality predicate,
prunes the shard fan-out to one.  The coordinator wiring (per-shard
stores, scatter-gather, cross-shard ingest) lives in
:mod:`repro.archis.system` and :mod:`repro.plan.physical`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

#: supported values of ``ArchISConfig.shard_by``
SHARD_MODES = ("hash", "range")

#: keys per contiguous block under range partitioning; blocks are
#: striped round-robin across shards so a growing key space fills every
#: shard evenly while adjacent keys (one block) stay co-located
RANGE_BLOCK = 64

#: Knuth's multiplicative constant — decorrelates sequential int keys
#: so hash sharding spreads a dense id space evenly
_MIX = 2654435761


def shard_of(key, shards: int, shard_by: str = "hash") -> int:
    """The shard index of ``key`` under the given layout.

    Stable across processes and Python versions (never the salted
    builtin ``hash``): the mapping is part of the on-disk layout, so a
    reopened archive must route every key exactly as its writer did.
    """
    if shards <= 1:
        return 0
    if isinstance(key, bool) or not isinstance(key, int):
        # non-integer keys: hash stable bytes; range striping needs an
        # ordered integer space, so such keys always hash
        data = repr(key).encode("utf-8")
        return zlib.crc32(data) % shards
    if shard_by == "range":
        return (key // RANGE_BLOCK) % shards
    return ((key * _MIX) & 0xFFFFFFFF) % shards


@dataclass
class ShardRouter:
    """Routes keys (and key predicates) to shard indexes.

    ``count == 1`` is the degenerate single-store layout: everything
    routes to shard 0 and no scatter-gather machinery engages.
    """

    count: int = 1
    shard_by: str = "hash"

    def shard_for(self, key) -> int:
        return shard_of(key, self.count, self.shard_by)

    def all_shards(self) -> list[int]:
        return list(range(self.count))

    def shards_for_key(self, key) -> list[int]:
        """The pruned fan-out of a key-equality predicate."""
        return [self.shard_for(key)]

    @property
    def sharded(self) -> bool:
        return self.count > 1


@dataclass
class ShardTarget:
    """What the physical layer needs to scatter one leaf across shards.

    Installed per H-table (and per ``history_``/``seg_``/``slice_``
    function name) through ``Database.shard_provider`` by the sharded
    coordinator; :func:`repro.plan.physical.compile_plan` wraps any leaf
    that resolves to a target in an ``Exchange`` operator.

    ``stores`` are the per-shard ArchIS instances (each with its own
    ``db``, ``history_lock``, segment manager and table functions);
    ``prepare`` syncs shard clocks to the coordinator before a gather;
    ``submit`` runs a thunk on the coordinator's shard thread pool and
    returns a future.
    """

    table: str
    key_column: str
    router: ShardRouter
    stores: tuple = ()
    prepare: Callable[[], None] = lambda: None
    submit: Callable = None
    #: index of the shard-local optimizer entry points, bound lazily to
    #: avoid a plan->archis import cycle
    extra: dict = field(default_factory=dict)


def shard_path(path: str, index: int) -> str:
    """The backing file of shard ``index`` for a front store at ``path``."""
    return f"{path}.shard{index}"


__all__ = [
    "RANGE_BLOCK",
    "SHARD_MODES",
    "ShardRouter",
    "ShardTarget",
    "shard_of",
    "shard_path",
]
