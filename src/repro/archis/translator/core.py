"""XQuery → SQL/XML translation (paper Section 5.3, Algorithm 1).

The five steps of the paper's algorithm map onto this module as follows:

1. *Identification of variable range* — :class:`Analyzer` classifies every
   ``for``/``let`` variable as an **entity variable** (ranging over
   ``doc(...)/root/entity``, backed by the relation's key table) or an
   **attribute variable** (``$e/attr`` or a full path to an attribute,
   backed by that attribute's history table) and assigns each used
   variable a tuple alias in the FROM clause.
2. *Generation of join conditions* — aliases belonging to the same entity
   chain are joined on their ``id`` columns.
3. *Generation of the where conditions* — predicates from path steps and
   the ``where`` clause become SQL conditions via the expression mapper.
4. *Translation of built-in functions* — ``tstart``/``tend`` map to the
   timestamp columns (``tend`` equality uses the ``tendval`` UDF for *now*
   substitution), interval predicates map to the SQL temporal UDFs, and
   ``telement`` literals fold into constant intervals.
5. *Output generation* — the return clause becomes ``XMLElement`` /
   ``XMLAttributes`` / ``XMLAgg`` expressions.

Storage access is deliberately naive here: a segmented or compressed
archive is always read through the deduplicating ``history_<table>``
table function, which is correct for every query.  The segment
restriction of Sections 6.3/6.4 — replacing that full read with
``segno``-restricted scans or ``seg_``/``slice_`` block functions when
snapshot/slicing predicates bound the alias to a window — is no longer
the translator's job: it happens in the logical-plan optimizer
(:mod:`repro.plan.rules`), which sees the predicates after pushdown and
the clustering state through ``Database.segment_provider``.

Anything outside this subset raises :class:`UnsupportedQueryError`; the
ArchIS facade can then fall back to native evaluation on published views.

One deliberate deviation from the paper's QUERY 1 example: when a FLWOR is
wrapped in a constructor, we aggregate all rows into a single element
(matching the XQuery semantics the native engine implements) instead of
producing one element per key as the paper's GROUP BY N.id translation
does; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, TYPE_CHECKING

from repro.errors import TranslationError, UnsupportedQueryError
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.rdb.types import ColumnType
from repro.xquery import ast, parse_xquery

_TRANSLATE_SECONDS = get_registry().histogram("xquery.translate.seconds")
_TRANSLATIONS = get_registry().counter("xquery.translations")

if TYPE_CHECKING:
    from repro.archis.system import ArchIS
    from repro.archis.htables import TrackedRelation


@dataclass
class Translation:
    """A translated query: SQL text plus an optional post-processing step
    (used for temporal aggregates that SQL computes as ordered row streams,
    paper Section 5.4's OLAP-function mapping)."""

    sql: str
    post: Callable | None = None
    params: dict = field(default_factory=dict)


@dataclass
class VarInfo:
    """One bound variable resolved to an H-table alias."""

    name: str
    kind: str  # "entity" | "attribute"
    relation: "TrackedRelation"
    alias: str
    attribute: str | None = None  # attribute vars only
    parent: "VarInfo | None" = None  # attribute vars: their entity var
    used: bool = False  # becomes a FROM source only when used

    @property
    def table(self) -> str:
        if self.kind == "entity":
            return self.relation.key_table
        return self.relation.attribute_table(self.attribute)

    @property
    def value_column(self) -> str:
        if self.kind == "entity":
            raise TranslationError(f"${self.name}: entity vars have no value")
        return self.attribute

    def value_type(self) -> ColumnType | None:
        if self.kind == "entity":
            return None
        if self.attribute == "id":
            return ColumnType.INT
        return self.relation.attributes[self.attribute]


def _unsupported(reason: str) -> UnsupportedQueryError:
    return UnsupportedQueryError(f"not translatable: {reason}")


class Analyzer:
    """Implements Algorithm 1 over the XQuery AST."""

    def __init__(self, archis: "ArchIS") -> None:
        self.archis = archis
        self.vars: dict[str, VarInfo] = {}
        self.all_vars: list[VarInfo] = []
        self.conditions: list[str] = []
        self.joins: list[str] = []
        self._alias_count = 0
        # mapped `order by` keys: (sql, descending)
        self.order_specs: list[tuple[str, bool]] = []

    # -- entry --------------------------------------------------------------

    def translate(self, query: str) -> Translation:
        started = perf_counter()
        try:
            translation = self._translate_timed(query)
        finally:
            _TRANSLATE_SECONDS.observe(perf_counter() - started)
        _TRANSLATIONS.inc()
        return translation

    def _translate_timed(self, query: str) -> Translation:
        tracer = get_tracer()
        with tracer.span("xquery.parse"):
            node = parse_xquery(query)
        with tracer.span("sql.generate"):
            return self._translate_node(node)

    def _translate_node(self, node: object) -> Translation:
        wrapper = None
        if isinstance(node, ast.ComputedElement):
            wrapper = node.name
            node = node.content
        if isinstance(node, ast.FunctionCall):
            return self._translate_aggregate_call(node, wrapper)
        if isinstance(node, ast.PathExpr):
            # bare path query: treat as `for $x in path return $x`
            node = ast.Flwor(
                (ast.ForClause("__x", node),), ast.VarRef("__x")
            )
        if not isinstance(node, ast.Flwor):
            raise _unsupported(f"top-level {type(node).__name__}")
        return self._translate_flwor(node, wrapper)

    # -- aggregate wrappers: count(path), avg(path), max(flwor), tavg($s) ----------

    def _translate_aggregate_call(
        self, call: ast.FunctionCall, wrapper: str | None
    ) -> Translation:
        name = call.name.lower()
        if name in ("tavg", "tsum", "tcount", "tmin", "tmax"):
            return self._translate_temporal_aggregate(call, name)
        if name not in ("count", "avg", "max", "min", "sum"):
            raise _unsupported(f"top-level function {name}()")
        if len(call.args) != 1:
            raise _unsupported(f"{name}() with {len(call.args)} arguments")
        arg = call.args[0]
        if (
            name == "count"
            and isinstance(arg, ast.FunctionCall)
            and arg.name.lower() == "distinct-values"
            and len(arg.args) == 1
        ):
            # count(distinct-values(path)) -> COUNT(DISTINCT col):
            # the paper's Q5 counts distinct *employees*, not versions
            inner = arg.args[0]
            if not isinstance(inner, ast.PathExpr):
                raise _unsupported("distinct-values over a non-path")
            var = self._path_to_var(inner, None)
            var.used = True
            select = f"count(DISTINCT {self._value_sql(var)})"
            return self._finish_scalar(select)
        if isinstance(arg, ast.PathExpr):
            var = self._bind_path("__agg", arg)
            var.used = True
            sql_arg = (
                "*" if name == "count" else self._value_sql(var)
            )
            select = f"{name}({sql_arg})"
            return self._finish_scalar(select)
        if isinstance(arg, ast.Flwor):
            self._analyze_clauses(arg.clauses)
            value_sql, _ = self._operand(arg.return_expr, None)
            select = f"{name}({value_sql})"
            return self._finish_scalar(select)
        raise _unsupported(f"{name}() over {type(arg).__name__}")

    def _translate_temporal_aggregate(
        self, call: ast.FunctionCall, name: str
    ) -> Translation:
        if len(call.args) != 1:
            raise _unsupported(f"{name}() needs a single argument")
        arg = call.args[0]
        if isinstance(arg, ast.VarRef):
            var = self._require_var(arg.name)
        elif isinstance(arg, ast.PathExpr):
            var = self._path_to_var(arg, None)
        else:
            raise _unsupported(f"{name}() over {type(arg).__name__}")
        var.used = True
        if var.kind != "attribute":
            raise _unsupported(f"{name}() over a non-attribute path")
        # emit the aggregate itself: the planner lowers tavg/tcount/...
        # into a SequencedAggregate plan node whose output rows are
        # (value, tstart, tend) — one per constant-value period — so the
        # sweep runs inside the engine, not in a Python post-pass
        sql = self._build_sql(
            select=f"{name}({self._alias_col(var, var.value_column)})"
        )

        def post(result):
            from repro.util.intervals import Interval
            from repro.xquery.temporal import interval_element
            from repro.xmlkit.dom import Text

            out = []
            for value, tstart, tend in result.rows:
                element = interval_element(Interval(int(tstart), int(tend)))
                element.name = name
                rendered = (
                    str(int(value)) if float(value).is_integer() else str(value)
                )
                element.append(Text(rendered))
                out.append(element)
            return out

        return Translation(sql, post)

    def _finish_scalar(self, select: str) -> Translation:
        sql = self._build_sql(select=select)

        def post(result):
            return [result.scalar()]

        return Translation(sql, post)

    # -- FLWOR ------------------------------------------------------------------------

    def _translate_flwor(
        self, flwor: ast.Flwor, wrapper: str | None
    ) -> Translation:
        self._analyze_clauses(flwor.clauses)
        if isinstance(flwor.return_expr, ast.FunctionCall):
            name = flwor.return_expr.name.lower()
            if name in ("tavg", "tsum", "tcount", "tmin", "tmax"):
                return self._translate_temporal_aggregate(
                    flwor.return_expr, name
                )
            if name in ("count", "avg", "max", "min", "sum"):
                arg = flwor.return_expr.args[0]
                value_sql, _ = self._operand(arg, None)
                if name == "count" and isinstance(arg, (ast.VarRef, ast.PathExpr)):
                    value_sql = "*"
                return self._finish_scalar(f"{name}({value_sql})")
        content = self._return_sql(flwor.return_expr)
        order_sql = ", ".join(
            f"{sql} DESC" if desc else sql for sql, desc in self.order_specs
        )
        if wrapper is not None:
            # ordering applies to the aggregated forest (SQL/XML's
            # XMLAgg ... ORDER BY)
            agg = (
                f"XMLAgg({content} ORDER BY {order_sql})"
                if order_sql
                else f"XMLAgg({content})"
            )
            select = f"XMLElement(Name \"{wrapper}\", {agg})"
            sql = self._build_sql(select=select)
        else:
            select = content
            sql = self._build_sql(select=select, order_by=order_sql or None)

        def post(result):
            return result.xml()

        return Translation(sql, post)

    def _analyze_clauses(self, clauses: tuple) -> None:
        for clause in clauses:
            if isinstance(clause, ast.ForClause):
                if clause.position_var:
                    raise _unsupported("positional for-variables")
                var = self._bind_source(clause.var, clause.source)
            elif isinstance(clause, ast.LetClause):
                self._bind_source(clause.var, clause.source)
            elif isinstance(clause, ast.WhereClause):
                self._add_condition(clause.condition)
            elif isinstance(clause, ast.OrderByClause):
                for spec in clause.specs:
                    sql, _ = self._operand(
                        self._strip_string_call(spec.key), None
                    )
                    self.order_specs.append((sql, spec.descending))
            else:
                raise _unsupported(f"{type(clause).__name__}")

    @staticmethod
    def _is_tend_call(node: object) -> bool:
        return (
            isinstance(node, ast.FunctionCall)
            and node.name.lower() == "tend"
        )

    @staticmethod
    def _strip_string_call(node: object) -> object:
        """Unwrap ``string(expr)`` in order-by keys (typed columns sort)."""
        if (
            isinstance(node, ast.FunctionCall)
            and node.name.lower() == "string"
            and len(node.args) == 1
        ):
            return node.args[0]
        return node

    # -- variable binding (Algorithm 1 step 1) -------------------------------------------

    def _bind_source(self, name: str, source: object) -> VarInfo:
        if isinstance(source, ast.PathExpr):
            var = self._bind_path(name, source)
            self.vars[name] = var
            return var
        if isinstance(source, ast.FunctionCall):
            raise _unsupported(f"for/let over {source.name}()")
        raise _unsupported(f"for/let over {type(source).__name__}")

    def _new_alias(self) -> str:
        self._alias_count += 1
        return f"t{self._alias_count}"

    def _bind_path(self, name: str, path: ast.PathExpr) -> VarInfo:
        steps = list(path.steps)
        if isinstance(path.start, ast.FunctionCall) and path.start.name in (
            "doc",
            "document",
        ):
            return self._bind_doc_path(name, path.start, steps)
        if isinstance(path.start, ast.VarRef):
            return self._bind_relative_path(name, path.start.name, steps)
        raise _unsupported("path must start at doc() or a bound variable")

    def _bind_doc_path(
        self, name: str, doc_call: ast.FunctionCall, steps: list
    ) -> VarInfo:
        if len(doc_call.args) != 1 or not isinstance(
            doc_call.args[0], ast.Literal
        ):
            raise _unsupported("doc() with a non-literal URI")
        uri = str(doc_call.args[0].value)
        relation = self.archis.relation_for_document(uri)
        if len(steps) < 2:
            raise _unsupported("path must reach the entity element")
        root_step, entity_step, *rest = steps
        if root_step.predicates:
            raise _unsupported("predicates on the document root")
        if entity_step.test != relation.name:
            raise _unsupported(
                f"step {entity_step.test!r} does not match relation "
                f"{relation.name!r}"
            )
        entity = VarInfo(
            name=f"{name}__entity" if rest else name,
            kind="entity",
            relation=relation,
            alias=self._new_alias(),
        )
        self.all_vars.append(entity)
        self._apply_predicates(entity, entity_step.predicates)
        if not rest:
            self.vars[name] = entity
            return entity
        if len(rest) > 1:
            raise _unsupported("paths deeper than entity/attribute")
        var = self._attribute_var(name, entity, rest[0])
        self.vars[name] = var
        return var

    def _bind_relative_path(
        self, name: str, parent_name: str, steps: list
    ) -> VarInfo:
        parent = self.vars.get(parent_name)
        if parent is None:
            raise _unsupported(f"${parent_name} is not a translatable binding")
        if parent.kind != "entity":
            raise _unsupported(
                f"${parent_name}: navigation below attributes"
            )
        if len(steps) != 1:
            raise _unsupported("relative paths must be a single step")
        var = self._attribute_var(name, parent, steps[0])
        self.vars[name] = var
        return var

    def _attribute_var(
        self, name: str, entity: VarInfo, step: ast.Step
    ) -> VarInfo:
        if step.axis not in ("child",):
            raise _unsupported(f"axis {step.axis!r}")
        attribute = step.test
        relation = entity.relation
        if attribute == "id" or attribute == relation.key:
            # the key's history lives in the key table: alias the entity
            var = VarInfo(
                name=name,
                kind="attribute",
                relation=relation,
                alias=entity.alias,
                attribute="id",
                parent=entity,
            )
            anchor = getattr(entity, "_anchor", None)
            if not entity.used:
                entity.used = True
                if anchor is not None and anchor is not entity:
                    self.joins.append(f"{anchor.alias}.id = {entity.alias}.id")
                else:
                    entity._anchor = entity  # type: ignore[attr-defined]
            self.all_vars.append(var)
            self._apply_predicates(var, step.predicates)
            return var
        if attribute not in relation.attributes:
            raise _unsupported(
                f"{relation.name} has no attribute {attribute!r}"
            )
        var = VarInfo(
            name=name,
            kind="attribute",
            relation=relation,
            alias=self._new_alias(),
            attribute=attribute,
            parent=entity,
        )
        var.used = True
        self.all_vars.append(var)
        self._join_to_parent(var)
        self._apply_predicates(var, step.predicates)
        return var

    def _join_to_parent(self, var: VarInfo) -> None:
        """Algorithm 1 step 2: id-join an attribute alias to its entity."""
        entity = var.parent
        anchor = getattr(entity, "_anchor", None)
        if anchor is None:
            if entity.used:
                anchor = entity
            else:
                anchor = var
        else:
            pass
        if anchor is not var:
            self.joins.append(
                f"{anchor.alias}.id = {var.alias}.id"
            )
        entity._anchor = anchor  # type: ignore[attr-defined]

    def _entity_anchor(self, entity: VarInfo) -> VarInfo:
        """The alias representing an entity in SQL (its key table when
        used directly, else the first attribute alias joined to it)."""
        anchor = getattr(entity, "_anchor", None)
        if anchor is not None:
            return anchor
        entity.used = True
        entity._anchor = entity  # type: ignore[attr-defined]
        return entity

    # -- predicates & conditions (Algorithm 1 steps 3-4) --------------------------------------

    def _apply_predicates(self, var: VarInfo, predicates: tuple) -> None:
        for predicate in predicates:
            self._add_condition(predicate, context=var)

    def _add_condition(self, node: object, context: VarInfo | None = None) -> None:
        if isinstance(node, ast.BinaryOp) and node.op == "and":
            self._add_condition(node.left, context)
            self._add_condition(node.right, context)
            return
        sql = self._condition_sql(node, context)
        if sql is not None:
            self.conditions.append(sql)

    def _condition_sql(self, node: object, context: VarInfo | None) -> str | None:
        if isinstance(node, ast.BinaryOp):
            if node.op == "or":
                left = self._condition_sql(node.left, context)
                right = self._condition_sql(node.right, context)
                return f"({left} OR {right})"
            if node.op in ("=", "!=", "<", "<=", ">", ">="):
                return self._comparison_sql(node, context)
            raise _unsupported(f"operator {node.op} in conditions")
        if isinstance(node, ast.FunctionCall):
            return self._function_condition(node, context)
        if isinstance(node, (ast.PathExpr, ast.VarRef)):
            # bare path predicate = existence; the inner join to the
            # attribute table (with the path's own predicates) is the test
            var = (
                self._require_var(node.name)
                if isinstance(node, ast.VarRef)
                else self._path_to_var(node, context)
            )
            var.used = True
            return None
        raise _unsupported(f"condition {type(node).__name__}")

    def _comparison_sql(self, node: ast.BinaryOp, context: VarInfo | None) -> str:
        op = {"!=": "<>"}.get(node.op, node.op)
        left_sql, left_var = self._operand(node.left, context)
        right_sql, right_var = self._operand(node.right, context)
        # 'now' substitution for tend equality (paper 4.3): range
        # predicates work on the raw end-of-time marker, equality needs
        # the current date substituted via the tendval UDF
        if op in ("=", "<>"):
            if self._is_tend_call(node.left):
                left_sql = f"tendval({left_sql})"
            if self._is_tend_call(node.right):
                right_sql = f"tendval({right_sql})"
        # literal coercion for typed columns
        if left_var is not None and isinstance(node.right, ast.Literal):
            right_sql = self._coerce_literal(node.right.value, left_var)
        if right_var is not None and isinstance(node.left, ast.Literal):
            left_sql = self._coerce_literal(node.left.value, right_var)
        return f"{left_sql} {op} {right_sql}"

    def _coerce_literal(self, value: object, var: VarInfo) -> str:
        ctype = var.value_type()
        if ctype in (ColumnType.INT, ColumnType.FLOAT) and isinstance(value, str):
            return str(value)  # numeric literal in string form
        return _sql_literal(value)

    def _operand(
        self, node: object, context: VarInfo | None
    ) -> tuple[str, VarInfo | None]:
        """Map an operand expression to SQL; returns (sql, var_if_value)."""
        if isinstance(node, ast.Literal):
            return _sql_literal(node.value), None
        if isinstance(node, ast.ContextItem):
            if context is None:
                raise _unsupported("'.' outside a predicate")
            return self._value_sql(context), context
        if isinstance(node, ast.VarRef):
            var = self._require_var(node.name)
            return self._value_sql(var), var
        if isinstance(node, ast.PathExpr):
            var = self._path_to_var(node, context)
            return self._value_sql(var), var
        if isinstance(node, ast.FunctionCall):
            return self._function_value(node, context), None
        if isinstance(node, ast.BinaryOp) and node.op in ("+", "-", "*"):
            left_sql, _ = self._operand(node.left, context)
            right_sql, _ = self._operand(node.right, context)
            sql_op = node.op
            return f"({left_sql} {sql_op} {right_sql})", None
        raise _unsupported(f"operand {type(node).__name__}")

    def _path_to_var(self, path: ast.PathExpr, context: VarInfo | None) -> VarInfo:
        if isinstance(path.start, ast.VarRef) and not path.steps:
            return self._require_var(path.start.name)
        if isinstance(path.start, ast.ContextItem) and context is not None:
            if len(path.steps) == 1:
                return self._attribute_var(
                    f"__p{self._alias_count}", self._context_entity(context),
                    path.steps[0],
                )
            raise _unsupported("deep relative path in predicate")
        return self._bind_path(f"__p{self._alias_count}", path)

    def _context_entity(self, context: VarInfo) -> VarInfo:
        if context.kind == "entity":
            return context
        return context.parent

    def _require_var(self, name: str) -> VarInfo:
        var = self.vars.get(name)
        if var is None:
            raise _unsupported(f"${name} is unbound or untranslatable")
        return var

    def _value_sql(self, var: VarInfo) -> str:
        var.used = True
        if var.kind == "entity":
            anchor = self._entity_anchor(var)
            return f"{anchor.alias}.id"
        return f"{var.alias}.{var.value_column}"

    def _alias_col(self, var: VarInfo, column: str) -> str:
        var.used = True
        return f"{var.alias}.{column}"

    # -- function translation (Algorithm 1 step 4) ----------------------------------------------

    def _function_value(self, call: ast.FunctionCall, context: VarInfo | None) -> str:
        name = call.name.lower()
        if name in ("xs:date",):
            literal = call.args[0]
            if not isinstance(literal, ast.Literal):
                raise _unsupported("xs:date of a non-literal")
            return f"DATE '{literal.value}'"
        if name == "current-date":
            return "current_date()"
        if name in ("tstart", "tend"):
            var = self._timestamp_target(call.args[0], context)
            column = self._alias_col(var, name)
            if name == "tend":
                # equality semantics need the 'now' substitution; range
                # predicates work on the raw end-of-time marker (paper 4.3)
                return column
            return column
        if name == "string":
            sql, _ = self._operand(call.args[0], context)
            return sql
        raise _unsupported(f"function {name}() in value position")

    def _timestamp_target(self, arg: object, context: VarInfo | None) -> VarInfo:
        if isinstance(arg, ast.ContextItem):
            if context is None:
                raise _unsupported("tstart(.) outside a predicate")
            return context
        if isinstance(arg, ast.VarRef):
            return self._require_var(arg.name)
        if isinstance(arg, ast.PathExpr):
            return self._path_to_var(arg, context)
        raise _unsupported("tstart/tend over a complex expression")

    def _function_condition(
        self, call: ast.FunctionCall, context: VarInfo | None
    ) -> str | None:
        name = call.name.lower()
        if name == "not":
            inner = call.args[0]
            if (
                isinstance(inner, ast.FunctionCall)
                and inner.name.lower() == "empty"
            ):
                return self._nonempty_condition(inner.args[0], context)
            inner_sql = self._condition_sql(inner, context)
            return f"NOT ({inner_sql})"
        if name in ("toverlaps", "tcontains", "tequals", "tmeets", "tprecedes"):
            left = self._interval_args(call.args[0], context)
            right = self._interval_args(call.args[1], context)
            return f"{name}({left}, {right})"
        if name == "empty":
            raise _unsupported("bare empty() condition (use not(empty(..)))")
        raise _unsupported(f"function {name}() as a condition")

    def _nonempty_condition(self, arg: object, context: VarInfo | None) -> str | None:
        """``not(empty(X))`` — existence via inner join.

        When X is an attribute var/path already joined, the inner-join
        semantics make the condition vacuous; when X is
        ``overlapinterval($a,$b)``, existence means the intervals overlap.
        """
        if isinstance(arg, ast.FunctionCall) and arg.name.lower() == "overlapinterval":
            left = self._interval_args(arg.args[0], context)
            right = self._interval_args(arg.args[1], context)
            return f"toverlaps({left}, {right})"
        if isinstance(arg, (ast.VarRef, ast.PathExpr)):
            var = (
                self._require_var(arg.name)
                if isinstance(arg, ast.VarRef)
                else self._path_to_var(arg, context)
            )
            var.used = True  # join enforces existence
            return None
        raise _unsupported("not(empty(...)) over a complex expression")

    def _interval_args(self, node: object, context: VarInfo | None) -> str:
        """Map a node to ``tstart_sql, tend_sql`` argument pairs."""
        if isinstance(node, ast.ContextItem):
            if context is None:
                raise _unsupported("'.' interval outside a predicate")
            return (
                f"{self._alias_col(context, 'tstart')}, "
                f"{self._alias_col(context, 'tend')}"
            )
        if isinstance(node, ast.VarRef):
            var = self._require_var(node.name)
            return (
                f"{self._alias_col(var, 'tstart')}, "
                f"{self._alias_col(var, 'tend')}"
            )
        if isinstance(node, ast.PathExpr):
            var = self._path_to_var(node, context)
            return (
                f"{self._alias_col(var, 'tstart')}, "
                f"{self._alias_col(var, 'tend')}"
            )
        if isinstance(node, ast.FunctionCall) and node.name.lower() == "telement":
            dates = [self._function_value(a, context) if isinstance(a, ast.FunctionCall)
                     else _sql_literal_date(a) for a in node.args]
            if len(dates) != 2:
                raise _unsupported("telement() needs two arguments")
            return f"{dates[0]}, {dates[1]}"
        raise _unsupported(f"interval argument {type(node).__name__}")

    # -- return clause (Algorithm 1 step 5) ------------------------------------------------------------

    def _return_sql(self, node: object) -> str:
        parts = self._content_sql(node)
        if len(parts) == 1:
            return parts[0]
        raise _unsupported("multi-item return without an element wrapper")

    def _content_sql(self, node: object) -> list[str]:
        if isinstance(node, ast.SequenceExpr):
            out: list[str] = []
            for item in node.items:
                out.extend(self._content_sql(item))
            return out
        if isinstance(node, ast.VarRef):
            return [self._element_sql(self._require_var(node.name))]
        if isinstance(node, ast.PathExpr):
            return [self._element_sql(self._path_to_var(node, None))]
        if isinstance(node, ast.ComputedElement):
            inner = (
                self._content_sql(node.content)
                if node.content is not None
                else []
            )
            content = ", ".join(inner)
            if content:
                return [f"XMLElement(Name \"{node.name}\", {content})"]
            return [f"XMLElement(Name \"{node.name}\")"]
        if isinstance(node, ast.DirectElement):
            inner = []
            for part in node.content:
                if isinstance(part, str):
                    inner.append(_sql_literal(part))
                else:
                    inner.extend(self._content_sql(part))
            if node.attrs:
                raise _unsupported("direct constructor attributes")
            content = ", ".join(inner)
            if content:
                return [f"XMLElement(Name \"{node.name}\", {content})"]
            return [f"XMLElement(Name \"{node.name}\")"]
        if isinstance(node, ast.FunctionCall):
            name = node.name.lower()
            if name == "overlapinterval":
                left = self._interval_args(node.args[0], None)
                right = self._interval_args(node.args[1], None)
                return [
                    "XMLElement(Name \"interval\", XMLAttributes("
                    f"datestr(overlap_start({left}, {right})) AS \"tstart\", "
                    f"datestr(overlap_end({left}, {right})) AS \"tend\"))"
                ]
            raise _unsupported(f"function {name}() in return")
        if isinstance(node, ast.BinaryOp):
            sql, _ = self._operand(node, None)
            return [sql]
        if isinstance(node, ast.Literal):
            return [_sql_literal(node.value)]
        raise _unsupported(f"return of {type(node).__name__}")

    def _element_sql(self, var: VarInfo) -> str:
        """An attribute/entity variable rendered as a timestamped element."""
        if var.kind == "entity":
            anchor = self._entity_anchor(var)
            return (
                f"XMLElement(Name \"{var.relation.name}\", XMLAttributes("
                f"datestr({anchor.alias}.tstart) AS \"tstart\", "
                f"datestr({anchor.alias}.tend) AS \"tend\"), "
                f"{anchor.alias}.id)"
            )
        tag = "id" if var.attribute == "id" else var.attribute
        value = (
            f"{var.alias}.id" if var.attribute == "id"
            else f"{var.alias}.{var.value_column}"
        )
        return (
            f"XMLElement(Name \"{tag}\", XMLAttributes("
            f"datestr({var.alias}.tstart) AS \"tstart\", "
            f"datestr({var.alias}.tend) AS \"tend\"), "
            f"{value})"
        )

    # -- FROM/WHERE assembly --------------------------------------------------------------------------------

    def _build_sql(self, select: str, order_by: str | None = None) -> str:
        sources: list[str] = []
        conditions = list(self.joins) + list(self.conditions)
        seen_aliases: set[str] = set()
        for var in self.all_vars:
            self._collect_source(var, sources, conditions, seen_aliases)
        if not sources:
            raise _unsupported("no H-table sources identified")
        sql = f"SELECT {select} FROM {', '.join(sources)}"
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        if order_by:
            sql += f" ORDER BY {order_by}"
        return sql

    def _collect_source(
        self,
        var: VarInfo,
        sources: list[str],
        conditions: list[str],
        seen: set[str],
    ) -> None:
        if not var.used or var.alias in seen:
            return
        if var.kind == "attribute" and var.attribute == "id":
            # shares the entity's key-table alias
            var = var.parent
            if var.alias in seen:
                return
        seen.add(var.alias)
        table = var.table
        segments = self.archis.segments
        compressed = table in self.archis.archive.compressed_tables
        segmented = segments.segmented and segments.segment_count() > 1
        # a sharded coordinator's own H-tables are empty and never
        # freeze, so its segment state says nothing about the shard
        # stores: always read through the deduplicating history_
        # function and let the Exchange re-optimize it per shard
        # (each shard applies its own restriction/dedup choice)
        if compressed or segmented or self.archis.is_sharded:
            # correct-for-every-query full read; the optimizer's
            # segment-restriction rule narrows it when the pushed-down
            # predicates bound this alias to a snapshot/slicing window
            columns = self._table_columns(var)
            sources.append(
                f"TABLE(history_{table}()) AS {var.alias}({columns})"
            )
        else:
            sources.append(f"{table} AS {var.alias}")

    def _table_columns(self, var: VarInfo) -> str:
        table = self.archis.db.table(var.table)
        return ", ".join(table.schema.column_names)


def _sql_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def _sql_literal_date(node: object) -> str:
    if isinstance(node, ast.FunctionCall) and node.name.lower() == "xs:date":
        literal = node.args[0]
        if isinstance(literal, ast.Literal):
            return f"DATE '{literal.value}'"
    if isinstance(node, ast.Literal):
        return f"DATE '{node.value}'"
    raise _unsupported("expected a date literal")


