"""XQuery → SQL/XML translation (paper Algorithm 1)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.archis.translator.core import Analyzer, Translation

if TYPE_CHECKING:
    from repro.archis.system import ArchIS


def translate(archis: "ArchIS", query: str) -> Translation:
    """Full translation: SQL text plus post-processing step."""
    return Analyzer(archis).translate(query)


def translate_xquery(archis: "ArchIS", query: str) -> str:
    """Translate XQuery on H-views to a SQL/XML statement on H-tables."""
    return translate(archis, query).sql


def run_translated(archis: "ArchIS", sql_or_query: str) -> list:
    """Execute a translated query and shape its result like XQuery output.

    Accepts either the SQL text from :func:`translate_xquery` or the
    original XQuery (retranslated to recover the post-processing step).
    """
    text = sql_or_query.lstrip()
    if text[:6].upper() == "SELECT":
        result = archis.db.sql(sql_or_query)
        return result.xml() or list(result.rows)
    translation = translate(archis, sql_or_query)
    result = archis.db.sql(translation.sql, translation.params)
    if translation.post is not None:
        return translation.post(result)
    return result.xml()


__all__ = ["Translation", "translate", "translate_xquery", "run_translated"]
