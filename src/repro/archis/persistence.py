"""ArchIS archive persistence.

Completes the persistence story: :func:`save_archive` writes an
``.archis.json`` sidecar (next to the Database catalog sidecar) holding
everything the relational layer does not know about — tracked relations,
segment-manager state, compressed-table metadata and H-view names — and
:func:`load_archive` reconstructs a fully working :class:`ArchIS` from a
saved file-backed database: trackers re-attach, table functions re-register
and queries over frozen or compressed history resume where they left off.

Durability: under WAL mode, :func:`save_archive` stages the catalog
sidecar, the archive sidecar and every pending page write in a *single*
WAL transaction and checkpoints once — a crash anywhere in the save
leaves either the complete previous state or the complete new one, never
pages from one save paired with metadata from another.
"""

from __future__ import annotations

import json
import os

from repro.errors import ArchisError, StorageError
from repro.rdb.database import Database
from repro.rdb.persistence import save_catalog
from repro.rdb.types import ColumnType
from repro.storage.atomicio import SIDECAR_VERSION

ARCHIS_SUFFIX = ".archis.json"


def sidecar_path(db_path: str) -> str:
    return db_path + ARCHIS_SUFFIX


def archive_payload(archis) -> dict:
    """The archive metadata as JSON-ready data (shared by save/staging)."""
    return {
        "version": SIDECAR_VERSION,
        "profile": archis.profile.name,
        # the key-partitioning layout is part of the on-disk format: a
        # reopen must route keys exactly as the writer did, so an
        # explicit mismatching config is rejected at load
        "sharding": {
            "shards": archis.router.count,
            "shard_by": archis.router.shard_by,
        },
        "segments": {
            "umin": archis.segments.umin,
            "min_rows": archis.segments.min_rows,
            "live_segno": archis.segments.live_segno,
            "live_start": archis.segments.live_start,
            "last_change": archis.segments.last_change,
            "live": archis.segments.stats.live,
            "total": archis.segments.stats.total,
            "freeze_count": archis.segments.freeze_count,
            # frozen segments whose background rewrite has not finished;
            # a reopened archive resumes (idempotently) where the
            # maintenance worker left off
            "pending_rewrites": list(archis.segments.pending_rewrites),
        },
        "relations": [
            {
                "name": relation.name,
                "key": relation.key,
                "attributes": {
                    attr: ctype.value
                    for attr, ctype in relation.attributes.items()
                },
            }
            for relation in archis.relations.values()
        ],
        "documents": dict(archis._doc_names),
        "compressed": [
            {
                "table": info.table,
                "blob_table": info.blob_table,
                "segrange_table": info.segrange_table,
                "rows_compressed": info.rows_compressed,
                "blocks": info.blocks,
            }
            for info in archis.archive.compressed_tables.values()
        ],
    }


def stage_archive(archis) -> str:
    """Stage the archive sidecar in the WAL without checkpointing.

    Used by the transaction layer's commit: the catalog, the archive
    sidecar and the transaction's page writes are promoted together by
    one COMMIT frame, so a crash replays all of them or none.
    """
    if archis.db.pager.path is None:
        raise StorageError("only file-backed archives can be saved")
    data = json.dumps(archive_payload(archis)).encode("utf-8")
    return archis.db.pager.write_sidecar(ARCHIS_SUFFIX, data)


def save_archive(archis) -> str:
    """Persist the database catalog plus the ArchIS metadata sidecar."""
    if archis.db.pager.path is None:
        raise StorageError("only file-backed archives can be saved")
    if archis.maintenance is not None:
        archis.maintenance.drain()
    archis.apply_pending()
    # the write lock keeps the maintenance worker's own step commits
    # from interleaving with this staging (both are tag-0 WAL writers)
    with archis.history_lock.write():
        save_catalog(archis.db, _defer_checkpoint=True)
        path = stage_archive(archis)
        archis.db.pager.checkpoint()
    return path


def load_archive(
    path: str,
    buffer_pages: int | None = None,
    durability: str | None = None,
    config=None,
):
    """Reopen a saved archive: Database + ArchIS, ready for queries.

    ``config`` (an :class:`~repro.archis.config.ArchISConfig`) supplies
    the runtime knobs; the archive's own state — profile, U_min,
    segment-manager counters — comes from the sidecar.  The bare
    ``buffer_pages``/``durability`` arguments are kept for old callers
    and override the config when given.
    """
    from repro.archis.blobstore import CompressedTableInfo
    from repro.archis.config import ArchISConfig
    from repro.archis.htables import TrackedRelation
    from repro.archis.system import ArchIS
    from repro.archis.tablefuncs import register_history_functions
    from repro.archis.tracker import HTableWriter, LogTracker, TriggerTracker

    if config is None:
        config = ArchISConfig()
    if buffer_pages is not None:
        config = config.replace(buffer_pages=buffer_pages)
    if durability is not None:
        config = config.replace(durability=durability)

    # Open (and thereby WAL-recover) the database *before* reading the
    # archive sidecar: a committed-but-uncheckpointed save is replayed by
    # recovery, which may atomically replace the sidecar we are about to
    # read.
    db = Database.open(
        path, config.buffer_pages, durability=config.durability
    )
    try:
        meta_path = sidecar_path(path)
        if not os.path.exists(meta_path):
            raise ArchisError(f"no archive sidecar at {meta_path}")
        with open(meta_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        version = payload.get("version")
        if version != SIDECAR_VERSION:
            raise ArchisError(
                f"unsupported archive sidecar version {version!r} at "
                f"{meta_path} (this build reads version {SIDECAR_VERSION})"
            )
        layout = payload.get("sharding") or {"shards": 1, "shard_by": "hash"}
        if config.shards is not None and config.shards != layout["shards"]:
            raise ArchisError(
                f"archive at {path} (sidecar version {version}) is "
                f"partitioned into {layout['shards']} shard(s) but the "
                f"config requests shards={config.shards}; in-place "
                "resharding is not supported — reopen with the saved "
                "layout (or leave shards unset)"
            )
        if (
            config.shard_by is not None
            and config.shard_by != layout["shard_by"]
        ):
            raise ArchisError(
                f"archive at {path} (sidecar version {version}) is "
                f"partitioned by {layout['shard_by']!r} but the config "
                f"requests shard_by={config.shard_by!r}; the key layout "
                "is fixed at creation — reopen with the saved scheme "
                "(or leave shard_by unset)"
            )
    except ArchisError:
        db.close()
        raise
    seg = payload["segments"]
    archis = ArchIS(
        db,
        config=config.replace(
            profile=payload["profile"],
            umin=seg["umin"],
            min_segment_rows=seg["min_rows"],
            shards=layout["shards"],
            shard_by=layout["shard_by"],
        ),
    )
    archis.segments.live_segno = seg["live_segno"]
    archis.segments.live_start = seg["live_start"]
    archis.segments.last_change = seg["last_change"]
    archis.segments.stats.live = seg["live"]
    archis.segments.stats.total = seg["total"]
    archis.segments.freeze_count = seg["freeze_count"]
    archis.segments.pending_rewrites = list(
        seg.get("pending_rewrites", [])
    )

    for spec in payload["relations"]:
        relation = TrackedRelation(
            spec["name"],
            spec["key"],
            {a: ColumnType(t) for a, t in spec["attributes"].items()},
        )
        archis.relations[relation.name] = relation
        for table_name in relation.all_tables():
            archis.segments.register_table(table_name)
            register_history_functions(archis, table_name)
        writer = HTableWriter(db, relation, archis.segments)
        archis.writers[relation.name] = writer
        if archis.profile.tracking == "triggers":
            archis.trackers[relation.name] = TriggerTracker(db, writer)
        else:
            archis.trackers[relation.name] = LogTracker(db, writer)
    archis._doc_names = dict(payload["documents"])

    for spec in payload["compressed"]:
        info = CompressedTableInfo(
            spec["table"], spec["blob_table"], spec["segrange_table"],
            spec["rows_compressed"], spec["blocks"],
        )
        archis.archive._compressed[spec["table"]] = info
        archis.archive._register_table_function(
            spec["table"], spec["blob_table"]
        )
    if archis.router.sharded:
        # shard stores were reopened (each through this same function)
        # by ArchIS.__init__; mirror any relation a fresh shard is
        # missing and expose the scatter targets for the plan layer
        doc_of = {rel: doc for doc, rel in archis._doc_names.items()}
        for relation in archis.relations.values():
            archis._track_shard_relation(
                relation.name, relation.key, doc_of.get(relation.name)
            )
            archis._register_shard_targets(relation)
    if archis.maintenance is not None:
        # resume any rewrite a crash (or an unfinished queue) left behind
        archis.maintenance.kick()
    return archis
