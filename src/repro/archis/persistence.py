"""ArchIS archive persistence.

Completes the persistence story: :func:`save_archive` writes an
``.archis.json`` sidecar (next to the Database catalog sidecar) holding
everything the relational layer does not know about — tracked relations,
segment-manager state, compressed-table metadata and H-view names — and
:func:`load_archive` reconstructs a fully working :class:`ArchIS` from a
saved file-backed database: trackers re-attach, table functions re-register
and queries over frozen or compressed history resume where they left off.
"""

from __future__ import annotations

import json
import os

from repro.errors import ArchisError, StorageError
from repro.rdb.database import Database
from repro.rdb.types import ColumnType

ARCHIS_SUFFIX = ".archis.json"


def sidecar_path(db_path: str) -> str:
    return db_path + ARCHIS_SUFFIX


def save_archive(archis) -> str:
    """Persist the database catalog plus the ArchIS metadata sidecar."""
    if archis.db.pager.path is None:
        raise StorageError("only file-backed archives can be saved")
    archis.apply_pending()
    archis.db.save()
    payload = {
        "version": 1,
        "profile": archis.profile.name,
        "segments": {
            "umin": archis.segments.umin,
            "min_rows": archis.segments.min_rows,
            "live_segno": archis.segments.live_segno,
            "live_start": archis.segments.live_start,
            "last_change": archis.segments.last_change,
            "live": archis.segments.stats.live,
            "total": archis.segments.stats.total,
            "freeze_count": archis.segments.freeze_count,
        },
        "relations": [
            {
                "name": relation.name,
                "key": relation.key,
                "attributes": {
                    attr: ctype.value
                    for attr, ctype in relation.attributes.items()
                },
            }
            for relation in archis.relations.values()
        ],
        "documents": dict(archis._doc_names),
        "compressed": [
            {
                "table": info.table,
                "blob_table": info.blob_table,
                "segrange_table": info.segrange_table,
                "rows_compressed": info.rows_compressed,
                "blocks": info.blocks,
            }
            for info in archis.archive.compressed_tables.values()
        ],
    }
    path = sidecar_path(archis.db.pager.path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return path


def load_archive(path: str, buffer_pages: int = 1024):
    """Reopen a saved archive: Database + ArchIS, ready for queries."""
    from repro.archis.blobstore import CompressedTableInfo
    from repro.archis.htables import TrackedRelation
    from repro.archis.system import ArchIS
    from repro.archis.tablefuncs import register_history_functions
    from repro.archis.tracker import HTableWriter, LogTracker, TriggerTracker

    meta_path = sidecar_path(path)
    if not os.path.exists(meta_path):
        raise ArchisError(f"no archive sidecar at {meta_path}")
    with open(meta_path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != 1:
        raise ArchisError("unsupported archive sidecar version")

    db = Database.open(path, buffer_pages)
    seg = payload["segments"]
    archis = ArchIS(
        db,
        profile=payload["profile"],
        umin=seg["umin"],
        min_segment_rows=seg["min_rows"],
    )
    archis.segments.live_segno = seg["live_segno"]
    archis.segments.live_start = seg["live_start"]
    archis.segments.last_change = seg["last_change"]
    archis.segments.stats.live = seg["live"]
    archis.segments.stats.total = seg["total"]
    archis.segments.freeze_count = seg["freeze_count"]

    for spec in payload["relations"]:
        relation = TrackedRelation(
            spec["name"],
            spec["key"],
            {a: ColumnType(t) for a, t in spec["attributes"].items()},
        )
        archis.relations[relation.name] = relation
        for table_name in relation.all_tables():
            archis.segments.register_table(table_name)
            register_history_functions(archis, table_name)
        writer = HTableWriter(db, relation, archis.segments)
        archis.writers[relation.name] = writer
        if archis.profile.tracking == "triggers":
            archis.trackers[relation.name] = TriggerTracker(db, writer)
        else:
            archis.trackers[relation.name] = LogTracker(db, writer)
    archis._doc_names = dict(payload["documents"])

    for spec in payload["compressed"]:
        info = CompressedTableInfo(
            spec["table"], spec["blob_table"], spec["segrange_table"],
            spec["rows_compressed"], spec["blocks"],
        )
        archis.archive._compressed[spec["table"]] = info
        archis.archive._register_table_function(
            spec["table"], spec["blob_table"]
        )
    return archis
