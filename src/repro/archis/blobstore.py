"""Compressed archived segments as BLOBs (paper Section 8.2).

For an attribute history table ``R_a``, compression moves frozen-segment
rows into:

- ``R_a_blob(blockno, segno, startsid, endsid, blob_id)`` — one row per
  BlockZIP block, where sids order rows by ``(segno, id)``;
- ``R_a_segrange(segno, startblock, endblock, segstart, segend)`` — the
  block range and period of each compressed segment.

The live segment is never compressed ("the current segment has a high
usefulness and is used for updates, thus not compressed").  A registered
table function ``unzip_<table>`` extracts rows from the blocks so the SQL
path can read compressed history exactly as the paper describes
("user-defined uncompression table functions are used to extract records
from each BLOB").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchisError
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.rdb.database import Database
from repro.rdb.types import ColumnType
from repro.archis.clustering import SegmentManager

_TABLES_COMPRESSED = get_registry().counter("blockzip.tables_compressed")
from repro.archis.compression import (
    DEFAULT_BLOCK_SIZE,
    compress_records,
    decompress_block,
)


@dataclass
class CompressedTableInfo:
    table: str
    blob_table: str
    segrange_table: str
    rows_compressed: int
    blocks: int


class CompressedArchive:
    """Manages BLOB-compressed frozen segments for one database."""

    def __init__(
        self,
        db: Database,
        segments: SegmentManager,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        self.db = db
        self.segments = segments
        self.block_size = block_size
        self._compressed: dict[str, CompressedTableInfo] = {}

    @property
    def compressed_tables(self) -> dict[str, CompressedTableInfo]:
        return dict(self._compressed)

    def compress_table(self, table_name: str) -> CompressedTableInfo:
        """Move all frozen-segment rows of ``table_name`` into BLOBs."""
        if table_name in self._compressed:
            raise ArchisError(f"{table_name} is already compressed")
        with get_tracer().span(
            "archis.compress_table", table=table_name
        ) as span:
            info = self._compress_table(table_name)
            span.set("rows", info.rows_compressed)
            span.set("blocks", info.blocks)
        _TABLES_COMPRESSED.inc()
        return info

    def _compress_table(self, table_name: str) -> CompressedTableInfo:
        table = self.db.table(table_name)
        schema = table.schema
        seg_pos = schema.position("segno")
        id_pos = schema.position("id")
        live_segno = self.segments.live_segno

        frozen_rows: list[tuple] = []
        victims = []
        for rid, row in table.scan():
            if row[seg_pos] != live_segno:
                frozen_rows.append(row)
                victims.append(rid)
        # sid order: (segno, id), the storage order of archived segments
        frozen_rows.sort(key=lambda r: (r[seg_pos], r[id_pos]))

        blob_table = f"{table_name}_blob"
        segrange_table = f"{table_name}_segrange"
        self._create_side_tables(blob_table, segrange_table)

        blocks = compress_records(frozen_rows, self.block_size)
        blob_rows = self.db.table(blob_table)
        for blockno, block in enumerate(blocks):
            blob_id = self.db.blobs.put(block.data)
            segno = (
                frozen_rows[block.start_sid][seg_pos] if frozen_rows else 0
            )
            blob_rows.insert(
                (blockno, segno, block.start_sid, block.end_sid, blob_id)
            )
        self._fill_segranges(
            segrange_table, frozen_rows, blocks, seg_pos
        )
        for rid in victims:
            table.delete_rid(rid)
        table.compact()
        self._register_table_function(table_name, blob_table)
        info = CompressedTableInfo(
            table_name, blob_table, segrange_table,
            len(frozen_rows), len(blocks),
        )
        self._compressed[table_name] = info
        return info

    def _create_side_tables(self, blob_table: str, segrange_table: str) -> None:
        if not self.db.has_table(blob_table):
            self.db.create_table(
                blob_table,
                [
                    ("blockno", ColumnType.INT),
                    ("segno", ColumnType.INT),
                    ("startsid", ColumnType.INT),
                    ("endsid", ColumnType.INT),
                    ("blob_id", ColumnType.INT),
                ],
            )
        if not self.db.has_table(segrange_table):
            self.db.create_table(
                segrange_table,
                [
                    ("segno", ColumnType.INT),
                    ("startblock", ColumnType.INT),
                    ("endblock", ColumnType.INT),
                    ("segstart", ColumnType.DATE),
                    ("segend", ColumnType.DATE),
                ],
            )

    def _fill_segranges(
        self, segrange_table: str, rows: list, blocks: list, seg_pos: int
    ) -> None:
        periods = {
            segno: (segstart, segend)
            for segno, segstart, segend in self.segments.archived_segments()
        }
        table = self.db.table(segrange_table)
        for segno, (segstart, segend) in sorted(periods.items()):
            touching = [
                blockno
                for blockno, block in enumerate(blocks)
                if rows
                and rows[block.start_sid][seg_pos] <= segno
                and rows[block.end_sid][seg_pos] >= segno
            ]
            if not touching:
                continue
            table.insert(
                (segno, min(touching), max(touching), segstart, segend)
            )

    def _register_table_function(self, table_name: str, blob_table: str) -> None:
        db = self.db

        def unzip(startblock: int | None = None, endblock: int | None = None):
            """Yield rows stored in the blocks [startblock, endblock]."""
            for blockno, segno, startsid, endsid, blob_id in db.table(
                blob_table
            ).rows():
                if startblock is not None and blockno < startblock:
                    continue
                if endblock is not None and blockno > endblock:
                    continue
                yield from decompress_block(db.blobs.get(blob_id))

        db.register_table_function(f"unzip_{table_name}", unzip)

    # -- reads -------------------------------------------------------------------

    def block_range_for_segments(
        self, table_name: str, segnos: list[int]
    ) -> tuple[int, int] | None:
        """The block range covering the given frozen segments."""
        info = self._compressed.get(table_name)
        if info is None:
            raise ArchisError(f"{table_name} is not compressed")
        lows, highs = [], []
        for segno, startblock, endblock, _, _ in self.db.table(
            info.segrange_table
        ).rows():
            if segno in segnos:
                lows.append(startblock)
                highs.append(endblock)
        if not lows:
            return None
        return (min(lows), max(highs))

    def read_rows(
        self, table_name: str, segnos: list[int] | None = None
    ) -> list[tuple]:
        """Decompressed rows of a table's frozen segments.

        ``segnos`` restricts to the blocks covering those segments —
        the BlockZIP payoff: only a few blocks are decompressed for a
        snapshot query.
        """
        info = self._compressed.get(table_name)
        if info is None:
            raise ArchisError(f"{table_name} is not compressed")
        unzip = self.db.table_function(f"unzip_{table_name}")
        if segnos is None:
            return list(unzip())
        block_range = self.block_range_for_segments(table_name, segnos)
        if block_range is None:
            return []
        return list(unzip(block_range[0], block_range[1]))

    def blocks_touched(self, table_name: str, segnos: list[int]) -> int:
        block_range = self.block_range_for_segments(table_name, segnos)
        if block_range is None:
            return 0
        return block_range[1] - block_range[0] + 1
