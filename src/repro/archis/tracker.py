"""Change tracking: current tables → H-tables (paper Section 5.2).

Two mechanisms, matching the paper's two deployments:

- **triggers** (ArchIS-DB2): a row trigger on the current table archives
  every change synchronously;
- **update log** (ArchIS-ATLaS): mutations append to the database's update
  log and :meth:`LogArchiver.apply_pending` archives them in batch.

Timestamp semantics follow the paper's sample data: when an attribute
changes on day T, the old version is closed with ``tend = T - 1`` and the
new version opens with ``tstart = T`` (adjacent closed intervals); a tuple
created and closed on the same day keeps a one-day interval.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.errors import ArchisError
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.rdb.database import Database
from repro.rdb.table import Table
from repro.util.timeutil import FOREVER
from repro.archis.clustering import SegmentManager
from repro.archis.htables import TrackedRelation

_CHANGES_APPLIED = get_registry().counter("tracker.changes_applied")
_INSERTS = get_registry().counter("tracker.inserts")
_UPDATES = get_registry().counter("tracker.updates")
_DELETES = get_registry().counter("tracker.deletes")


class HTableWriter:
    """Applies archival operations to the H-tables of one relation."""

    def __init__(
        self,
        db: Database,
        relation: TrackedRelation,
        segments: SegmentManager,
    ) -> None:
        self.db = db
        self.relation = relation
        self.segments = segments
        current = db.table(relation.name)
        self._key_pos = current.schema.position(relation.key)
        self._attr_pos = {
            attr: current.schema.position(attr)
            for attr in relation.attributes
        }
        # Batched-ingest version cache: (table_name, key) → mutable
        # [[rid, row], ...] of that key's live-segment versions.  Active
        # only between begin_batch()/end_batch(); every mutation this
        # writer performs keeps the cached pairs exactly what a fresh
        # index scan would return, so one lookup per (key, table) serves
        # a whole apply run instead of one scan per log entry.
        self._cache: dict[tuple[str, int], list[list]] | None = None
        self._cache_generation: tuple | None = None

    # -- batched ingest (amortized lookups) ---------------------------------------

    def key_of(self, row: tuple):
        """The tracked key value of a current-table row."""
        return row[self._key_pos]

    def begin_batch(self) -> None:
        """Start caching per-key version lookups (one apply run)."""
        self._cache = {}
        self._cache_generation = self.segments.generation

    def end_batch(self) -> None:
        self._cache = None
        self._cache_generation = None

    def warm(self, key: int) -> None:
        """Prime the cache for ``key`` across the key table and every
        attribute table — the batch archiver calls this in
        ``(table, key)`` order so lookups happen as one clustered run."""
        if self._cache is None:
            return
        self._cached_versions(self.db.table(self.relation.key_table), key)
        for attr in self._attr_pos:
            self._cached_versions(
                self.db.table(self.relation.attribute_table(attr)), key
            )

    def _cached_versions(self, table: Table, key: int) -> list[list] | None:
        """The cached live-segment versions of ``key``, or ``None`` when
        no batch is active.  A freeze moves ``segments.generation`` and
        rewrites every H-table, so any generation change drops the whole
        cache before it can serve a stale row."""
        if self._cache is None:
            return None
        generation = self.segments.generation
        if generation != self._cache_generation:
            self._cache.clear()
            self._cache_generation = generation
        slot = self._cache.get((table.name, key))
        if slot is None:
            slot = [
                [rid, row] for rid, row in self._scan_versions(table, key)
            ]
            self._cache[(table.name, key)] = slot
        return slot

    # -- row-level archival -------------------------------------------------------

    def archive_insert(self, row: tuple, when: int) -> None:
        _CHANGES_APPLIED.inc()
        _INSERTS.inc()
        self.segments.maybe_freeze(when)
        key = row[self._key_pos]
        self._upsert_version(self.relation.key_table, key, None, when)
        for attr, pos in self._attr_pos.items():
            self._upsert_version(
                self.relation.attribute_table(attr), key, row[pos], when
            )
        self.segments.touch(when)

    def archive_delete(self, row: tuple, when: int) -> None:
        _CHANGES_APPLIED.inc()
        _DELETES.inc()
        self.segments.maybe_freeze(when)
        key = row[self._key_pos]
        self._close_history(self.relation.key_table, key, when)
        for attr in self._attr_pos:
            self._close_history(
                self.relation.attribute_table(attr), key, when
            )
        self.segments.touch(when)

    def archive_update(self, new_row: tuple, old_row: tuple, when: int) -> None:
        _CHANGES_APPLIED.inc()
        _UPDATES.inc()
        self.segments.maybe_freeze(when)
        key = new_row[self._key_pos]
        old_key = old_row[self._key_pos]
        if key != old_key:
            raise ArchisError(
                f"relation {self.relation.name}: keys must remain invariant "
                f"({old_key} -> {key}); use a surrogate key"
            )
        for attr, pos in self._attr_pos.items():
            if new_row[pos] == old_row[pos]:
                continue
            table_name = self.relation.attribute_table(attr)
            self._close_history(table_name, key, when, same_day_ok=True)
            self._upsert_version(table_name, key, new_row[pos], when)
        self.segments.touch(when)

    def _upsert_version(
        self, table_name: str, key: int, value: object, when: int
    ) -> None:
        """Open a version starting at ``when``.

        Transaction time is day-granular: if a version of this key already
        starts on ``when`` (opened or closed earlier the same day), it is
        *rewritten in place* — only the day's final state is part of the
        history — instead of creating a duplicate ``(id, tstart)`` version.
        ``value=None`` means the key table (no value column).
        """
        table = self.db.table(table_name)
        tstart_pos = table.schema.position("tstart")
        tend_pos = table.schema.position("tend")
        cached = self._cached_versions(table, key)
        versions = (
            cached if cached is not None else self._scan_versions(table, key)
        )
        for item in versions:
            rid, row = item
            if row[tstart_pos] == when:
                fresh = list(row)
                if value is not None:
                    fresh[table.schema.position(
                        table.schema.column_names[1]
                    )] = value
                was_live = row[tend_pos] == FOREVER
                fresh[tend_pos] = FOREVER
                new_rid = table.update_rid(rid, tuple(fresh))
                if cached is not None:
                    # keep the cached pair exactly what a rescan would
                    # yield: the (possibly relocated) rid and the stored
                    # (type-coerced) row
                    item[0] = new_rid
                    item[1] = table.schema.validate_row(tuple(fresh))
                if not was_live:
                    self.segments.stats.live += 1
                return
        if value is None:
            new_row = (key, when, FOREVER, self.segments.live_segno)
        else:
            new_row = (key, value, when, FOREVER, self.segments.live_segno)
        rid = table.insert(new_row)
        if cached is not None:
            cached.append([rid, table.schema.validate_row(new_row)])
        self.segments.note_insert()

    def _close_history(
        self, table_name: str, key: int, when: int, same_day_ok: bool = False
    ) -> None:
        """Set tend of the live version of ``key`` in the live segment."""
        table = self.db.table(table_name)
        live_segno = self.segments.live_segno
        tstart_pos = table.schema.position("tstart")
        tend_pos = table.schema.position("tend")
        closed = 0
        skipped_same_day = False
        end = max(when - 1, 0)
        cached = self._cached_versions(table, key)
        if cached is not None:
            candidates = [
                item for item in cached if item[1][tend_pos] == FOREVER
            ]
        else:
            candidates = [
                [rid, row]
                for rid, row in self._live_rows(table, key, live_segno)
            ]
        for item in candidates:
            rid, row = item
            tstart = row[tstart_pos]
            if same_day_ok and tstart == when:
                # the version opened today will be rewritten in place by
                # the upsert that follows (day-granular transaction time)
                skipped_same_day = True
                continue
            new_row = list(row)
            final_end = max(tstart, end)
            new_row[tend_pos] = final_end
            new_rid = table.update_rid(rid, tuple(new_row))
            if cached is not None:
                item[0] = new_rid
                item[1] = table.schema.validate_row(tuple(new_row))
            closed += 1
            self.segments.note_close()
            if live_segno > 1 and tstart < self.segments.live_start:
                self._repair_forwarded(table, key, tstart, final_end)
        if closed == 0 and not skipped_same_day:
            raise ArchisError(
                f"{table_name}: no live history row for key {key}"
            )

    def _repair_forwarded(
        self, table: Table, key: int, tstart: int, end: int
    ) -> None:
        """Propagate a version's real ``tend`` into freeze-forwarded copies.

        A version still live at freeze time is copied into the new live
        segment and the frozen copy keeps ``tend = FOREVER`` — its real end
        is unknown when the segment freezes.  When the version finally
        closes, those frozen copies must close too, or segment-restricted
        reads (paper Sections 6.3/6.4) would report a stale open interval.
        Copies already moved into compressed blobs are immutable and simply
        not found here (the heap lookup misses), matching the paper's
        treatment of compressed segments as cold storage.
        """
        id_pos = table.schema.position("id")
        tstart_pos = table.schema.position("tstart")
        tend_pos = table.schema.position("tend")
        seg_pos = table.schema.position("segno")
        index = table.find_index(("segno", "id"))
        for segno in range(self.segments.live_segno - 1, 0, -1):
            if index is not None:
                candidates = table.index_scan(
                    index.name, (segno, key), (segno, key)
                )
            else:
                candidates = table.scan()
            found = False
            for rid, row in candidates:
                if (
                    row[id_pos] == key
                    and row[tstart_pos] == tstart
                    and row[seg_pos] == segno
                ):
                    found = True
                    if row[tend_pos] == FOREVER:
                        fresh = list(row)
                        fresh[tend_pos] = end
                        table.update_rid(rid, tuple(fresh))
            if not found:
                # copies exist in consecutive segments back to the one the
                # version opened in; the first miss ends the walk
                break

    def _scan_versions(self, table: Table, key: int):
        """All versions of ``key`` in the live segment (live or closed)."""
        id_pos = table.schema.position("id")
        seg_pos = table.schema.position("segno")
        live_segno = self.segments.live_segno
        index = table.find_index(("segno", "id")) or table.find_index(("id",))
        if index is not None:
            if index.columns[0] == "segno":
                candidates = table.index_scan(
                    index.name, (live_segno, key), (live_segno, key)
                )
            else:
                candidates = table.index_scan(index.name, (key,), (key,))
        else:
            candidates = table.scan()
        for rid, row in candidates:
            if row[id_pos] == key and row[seg_pos] == live_segno:
                yield rid, row

    @staticmethod
    def _live_rows(table: Table, key: int, live_segno: int):
        id_pos = table.schema.position("id")
        tend_pos = table.schema.position("tend")
        seg_pos = table.schema.position("segno")
        index = table.find_index(("segno", "id")) or table.find_index(("id",))
        if index is not None:
            if index.columns[0] == "segno":
                candidates = table.index_scan(
                    index.name, (live_segno, key), (live_segno, key)
                )
            else:
                candidates = table.index_scan(index.name, (key,), (key,))
        else:
            candidates = table.scan()
        for rid, row in candidates:
            if (
                row[id_pos] == key
                and row[tend_pos] == FOREVER
                and row[seg_pos] == live_segno
            ):
                yield rid, row


class TriggerTracker:
    """DB2-profile tracking: archives synchronously via row triggers."""

    def __init__(self, db: Database, writer: HTableWriter) -> None:
        self.db = db
        self.writer = writer
        self._table = db.table(writer.relation.name)
        self._table.add_trigger(self._on_change)

    def _on_change(self, op: str, row: tuple, old: tuple | None) -> None:
        when = self.db.current_date
        if op == "insert":
            self.writer.archive_insert(row, when)
        elif op == "update":
            self.writer.archive_update(row, old, when)
        elif op == "delete":
            self.writer.archive_delete(row, when)

    def detach(self) -> None:
        self._table.remove_trigger(self._on_change)


class LogTracker:
    """ATLaS-profile tracking: records to the update log, archives in batch.

    The paper uses update logs "for better performance": the current
    transaction only appends a log record; archival IO happens when the
    log drains.
    """

    def __init__(self, db: Database, writer: HTableWriter) -> None:
        self.db = db
        self.writer = writer
        self._table = db.table(writer.relation.name)
        self._table.add_trigger(self._on_change)

    def _on_change(self, op: str, row: tuple, old: tuple | None) -> None:
        self.db.update_log.append(
            self.db.current_date, self.writer.relation.name, op, row, old
        )

    def detach(self) -> None:
        self._table.remove_trigger(self._on_change)


def apply_log(
    db: Database, writers: dict[str, HTableWriter], predicate=None,
    history=None,
) -> int:
    """Drain the update log into H-tables, dispatching by relation name.

    Entries for untracked tables are dropped (they have no H-tables).
    With a ``predicate`` only matching entries are consumed — the
    transaction layer passes "the entry's transaction has committed" so
    in-flight writers' changes stay pending.  Returns the number of
    entries applied.

    ``history`` (a :class:`~repro.txn.locks.HistoryLock`) is held on the
    write side for the whole drain when given, so snapshot readers and
    the maintenance worker never interleave with a half-applied entry.
    A failure mid-drain re-queues the unapplied suffix (including the
    failing entry) before re-raising — drained entries are never lost.
    """
    applied = 0
    guard = history.write() if history is not None else nullcontext()
    with get_tracer().span("archis.apply_log") as span, guard:
        # Day order, not log order — see UpdateLog.drain_ordered.
        entries = db.update_log.drain_ordered(predicate)
        try:
            for index, entry in enumerate(entries):
                writer = writers.get(entry.table)
                if writer is None:
                    continue
                dispatch_entry(writer, entry)
                applied += 1
        except BaseException:
            db.update_log.requeue(entries[index:])
            raise
        span.set("applied", applied)
    return applied


def dispatch_entry(writer: HTableWriter, entry) -> None:
    """Archive one update-log entry through ``writer``.

    Shared by the row-at-a-time :func:`apply_log` and the
    :class:`~repro.archis.batch.BatchArchiver` so both paths perform the
    identical mutation per entry.
    """
    if entry.op == "insert":
        writer.archive_insert(entry.row, entry.timestamp)
    elif entry.op == "update":
        writer.archive_update(entry.row, entry.old, entry.timestamp)
    elif entry.op == "delete":
        writer.archive_delete(entry.row, entry.timestamp)
