"""Archive consistency checker.

Audits a live :class:`~repro.archis.system.ArchIS` instance against the
invariants the design depends on — the checks the test-suite applies to
synthetic histories, packaged for operators to run against real archives:

- **covering conditions** (paper Eq. 1-2): every tuple in a frozen segment
  satisfies ``tstart <= segend`` and ``tend >= segstart``;
- **segment contiguity**: frozen segment periods tile the timeline with no
  gaps or overlaps and increasing numbers;
- **history sanity**: per key, deduplicated attribute versions form
  disjoint, ordered intervals, and every current-table row has exactly one
  live history version;
- **blob integrity**: every compressed block decompresses and its sid
  range matches its contents.

``check_archive`` returns a list of :class:`Violation`; empty means clean.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompressionError
from repro.util.intervals import Interval
from repro.util.timeutil import FOREVER, format_date
from repro.archis.compression import decompress_block


@dataclass(frozen=True)
class Violation:
    """One detected inconsistency."""

    check: str
    table: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.table}: {self.detail}"


def check_archive(archis) -> list[Violation]:
    """Run every audit; returns all violations found.

    Blob integrity runs first: tables whose compressed blocks are corrupt
    are excluded from the row-level checks (which could not read them)
    rather than aborting the whole audit.

    A sharded coordinator is audited shard by shard (each shard store is
    a complete archive over its key subset), except live-consistency —
    the current table lives only in the coordinator, so live history is
    unioned across shards before comparing — plus one sharded-only
    check: every history row must sit in the shard its key routes to.
    """
    stores = getattr(archis, "shard_stores", ())
    if stores:
        out = []
        for index, store in enumerate(stores):
            out.extend(
                Violation(v.check, f"shard{index}/{v.table}", v.detail)
                for v in _check_single_store(store, live_consistency=False)
            )
        out.extend(check_sharded_live_rows(archis))
        out.extend(check_shard_ownership(archis))
        return out
    return _check_single_store(archis)


def _check_single_store(archis, live_consistency: bool = True) -> list[Violation]:
    out: list[Violation] = []
    blob_violations = check_blob_integrity(archis)
    out.extend(blob_violations)
    unreadable = {
        archis.archive.compressed_tables[t].table
        for t in archis.archive.compressed_tables
        for v in blob_violations
        if v.table == archis.archive.compressed_tables[t].blob_table
    }
    out.extend(check_segment_contiguity(archis))
    for relation in archis.relations.values():
        for table_name in relation.all_tables():
            if table_name in unreadable:
                continue
            out.extend(check_covering_conditions(archis, table_name))
        if not any(
            relation.attribute_table(a) in unreadable
            for a in relation.attributes
        ) and relation.key_table not in unreadable:
            out.extend(check_history_sanity(archis, relation))
            if live_consistency:
                out.extend(check_live_rows_match_current(archis, relation))
    return out


def check_sharded_live_rows(archis) -> list[Violation]:
    """Coordinator-wide live-consistency: shard keys are disjoint, so the
    union of per-shard live versions must match the current table."""
    out = []
    for relation in archis.relations.values():
        current = archis.db.table(relation.name)
        key_pos = current.schema.position(relation.key)
        current_keys = {row[key_pos] for row in current.rows()}
        live_keys = set()
        for store in archis.shard_stores:
            live_keys.update(
                row[0]
                for row in store.history(relation.name)
                if row[-1] == FOREVER
            )
        for key in current_keys - live_keys:
            out.append(
                Violation(
                    "live-consistency", relation.key_table,
                    f"current row {key} has no live history version in any "
                    "shard",
                )
            )
        for key in live_keys - current_keys:
            out.append(
                Violation(
                    "live-consistency", relation.key_table,
                    f"history row {key} is live but absent from the current "
                    "table",
                )
            )
    return out


def check_shard_ownership(archis) -> list[Violation]:
    """Every history row must live in the shard its key routes to."""
    out = []
    for relation in archis.relations.values():
        for index, store in enumerate(archis.shard_stores):
            misplaced = sorted(
                {
                    row[0]
                    for row in store.history(relation.name)
                    if archis.router.shard_for(row[0]) != index
                }
            )
            if misplaced:
                out.append(
                    Violation(
                        "shard-ownership",
                        f"shard{index}/{relation.key_table}",
                        f"keys {misplaced[:5]} route to other shards",
                    )
                )
    return out


def check_segment_contiguity(archis) -> list[Violation]:
    out = []
    segments = archis.segments.archived_segments()
    for (s1, _, end1), (s2, start2, _) in zip(segments, segments[1:]):
        if s2 != s1 + 1:
            out.append(
                Violation(
                    "segment-contiguity", "segment",
                    f"segment numbers jump from {s1} to {s2}",
                )
            )
        if start2 != end1 + 1:
            out.append(
                Violation(
                    "segment-contiguity", "segment",
                    f"gap/overlap between segment {s1} (ends "
                    f"{format_date(end1)}) and {s2} (starts "
                    f"{format_date(start2)})",
                )
            )
    if segments and archis.segments.live_start != segments[-1][2] + 1:
        out.append(
            Violation(
                "segment-contiguity", "segment",
                "live segment does not start right after the last frozen one",
            )
        )
    return out


def check_covering_conditions(archis, table_name: str) -> list[Violation]:
    out = []
    periods = {
        segno: (segstart, segend)
        for segno, segstart, segend in archis.segments.archived_segments()
    }
    table = archis.db.table(table_name)
    seg_pos = table.schema.position("segno")
    tstart_pos = table.schema.position("tstart")
    tend_pos = table.schema.position("tend")
    rows = list(table.rows())
    if table_name in archis.archive.compressed_tables:
        rows.extend(archis.archive.read_rows(table_name))
    for row in rows:
        segno = row[seg_pos]
        if segno not in periods:
            continue  # live segment
        segstart, segend = periods[segno]
        if row[tstart_pos] > segend:
            out.append(
                Violation(
                    "covering-eq1", table_name,
                    f"row {row[:2]} starts after its segment ends",
                )
            )
        if row[tend_pos] < segstart:
            out.append(
                Violation(
                    "covering-eq2", table_name,
                    f"row {row[:2]} ends before its segment starts",
                )
            )
    return out


def check_history_sanity(archis, relation) -> list[Violation]:
    out = []
    for attribute in relation.attributes:
        table_name = relation.attribute_table(attribute)
        by_key: dict[object, list[Interval]] = {}
        for row in archis.history(relation.name, attribute):
            key, tstart, tend = row[0], row[-2], row[-1]
            if tstart > tend:
                out.append(
                    Violation(
                        "history-sanity", table_name,
                        f"key {key}: inverted interval "
                        f"[{format_date(tstart)}, {format_date(tend)}]",
                    )
                )
                continue
            by_key.setdefault(key, []).append(Interval(tstart, tend))
        for key, intervals in by_key.items():
            ordered = sorted(intervals)
            for left, right in zip(ordered, ordered[1:]):
                if left.end >= right.start:
                    out.append(
                        Violation(
                            "history-sanity", table_name,
                            f"key {key}: overlapping versions {left} / {right}",
                        )
                    )
    return out


def check_live_rows_match_current(archis, relation) -> list[Violation]:
    out = []
    current_keys = set()
    current = archis.db.table(relation.name)
    key_pos = current.schema.position(relation.key)
    for row in current.rows():
        current_keys.add(row[key_pos])
    live_keys = {
        row[0]
        for row in archis.history(relation.name)
        if row[-1] == FOREVER
    }
    for key in current_keys - live_keys:
        out.append(
            Violation(
                "live-consistency", relation.key_table,
                f"current row {key} has no live history version",
            )
        )
    for key in live_keys - current_keys:
        out.append(
            Violation(
                "live-consistency", relation.key_table,
                f"history row {key} is live but absent from the current table",
            )
        )
    return out


def check_blob_integrity(archis) -> list[Violation]:
    out = []
    for table_name, info in archis.archive.compressed_tables.items():
        blob_table = archis.db.table(info.blob_table)
        for blockno, segno, startsid, endsid, blob_id in blob_table.rows():
            try:
                rows = decompress_block(archis.db.blobs.get(blob_id))
            except (CompressionError, Exception) as exc:  # noqa: BLE001
                out.append(
                    Violation(
                        "blob-integrity", info.blob_table,
                        f"block {blockno}: {exc}",
                    )
                )
                continue
            expected = endsid - startsid + 1
            if len(rows) != expected:
                out.append(
                    Violation(
                        "blob-integrity", info.blob_table,
                        f"block {blockno}: {len(rows)} rows, sid range says "
                        f"{expected}",
                    )
                )
    return out
