"""Bitemporal extension: valid time on top of transaction time (paper §9).

The paper lists valid-time and bitemporal databases as the first natural
generalization of ArchIS, citing a follow-up study ([49]) that found the
temporally grouped XML representation "remains effective" for them.  This
module implements that generalization the way the paper's machinery
suggests:

- each *fact* carries an application-supplied **valid-time** interval
  ``[vstart, vend]``, stored as ordinary DATE attributes of the current
  table;
- a system-generated **surrogate key** identifies each fact version
  (Section 5.1: "Otherwise, a system-generated surrogate key can be
  used"), so corrections and retractions are ordinary updates/deletes and
  the existing tracker records **transaction time** ``[tstart, tend]``
  around them unchanged;
- the published bitemporal document timestamps every fact element with
  all four attributes, and the query helpers slice along either axis.

The result is a fully bitemporal store in which "what did we believe on
day T about what was true on day V?" is a single call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchisError
from repro.rdb.database import Database
from repro.rdb.types import ColumnType
from repro.util.intervals import Interval
from repro.util.timeutil import FOREVER, format_date, parse_date
from repro.xmlkit.dom import Element, Text
from repro.archis.system import ArchIS


def _days(value: int | str) -> int:
    return parse_date(value) if isinstance(value, str) else value


@dataclass(frozen=True)
class BitemporalFact:
    """One fact version with both time dimensions."""

    key: object
    values: tuple
    valid: Interval
    transaction: Interval

    @property
    def currently_believed(self) -> bool:
        return self.transaction.end == FOREVER


class BitemporalArchive:
    """A bitemporal table over an ArchIS instance.

    ``attributes`` maps fact column names to their types; ``key`` names
    the application-level entity the facts describe (not unique per row —
    the surrogate ``sid`` is the row key).
    """

    def __init__(
        self,
        archis: ArchIS,
        name: str,
        key: str,
        attributes: dict[str, ColumnType],
        key_type: ColumnType = ColumnType.INT,
    ) -> None:
        if key in attributes:
            raise ArchisError(f"{key} cannot be both key and attribute")
        self.archis = archis
        self.db: Database = archis.db
        self.name = name
        self.key = key
        self.attributes = dict(attributes)
        self._next_sid = 1
        columns: list[tuple[str, ColumnType]] = [("sid", ColumnType.INT)]
        columns.append((key, key_type))
        columns.extend(attributes.items())
        columns.append(("vstart", ColumnType.DATE))
        columns.append(("vend", ColumnType.DATE))
        self.db.create_table(name, columns, primary_key=("sid",))
        archis.track_table(name, key="sid", document_name=f"{name}s.xml")

    # -- fact maintenance ----------------------------------------------------

    def assert_fact(
        self,
        key: object,
        values: dict,
        vstart: int | str,
        vend: int | str = FOREVER,
    ) -> int:
        """Record a new fact version; returns its surrogate id."""
        missing = set(self.attributes) - set(values)
        if missing:
            raise ArchisError(f"missing fact values: {sorted(missing)}")
        sid = self._next_sid
        self._next_sid += 1
        row = [sid, key]
        row.extend(values[a] for a in self.attributes)
        row.append(_days(vstart))
        row.append(_days(vend))
        self.db.table(self.name).insert(tuple(row))
        return sid

    def retract_fact(self, sid: int) -> None:
        """Stop believing a fact version (transaction-time delete)."""
        removed = self.db.table(self.name).delete_where(
            lambda r: r["sid"] == sid
        )
        if not removed:
            raise ArchisError(f"no current fact with sid {sid}")

    def correct_fact(self, sid: int, changes: dict) -> None:
        """Revise a fact version's values or valid interval.

        The correction is itself timestamped in transaction time, so the
        superseded belief stays queryable.
        """
        allowed = set(self.attributes) | {"vstart", "vend"}
        unknown = set(changes) - allowed
        if unknown:
            raise ArchisError(f"unknown fact columns: {sorted(unknown)}")
        coerced = {
            column: (_days(value) if column in ("vstart", "vend") else value)
            for column, value in changes.items()
        }
        changed = self.db.table(self.name).update_where(
            lambda r: r["sid"] == sid, coerced
        )
        if not changed:
            raise ArchisError(f"no current fact with sid {sid}")

    # -- bitemporal reads ----------------------------------------------------------

    def facts(self) -> list[BitemporalFact]:
        """Every fact version ever believed, with both intervals.

        A fact corrected in place yields one entry per constant belief
        period: the transaction timeline is split at every attribute
        change, so superseded beliefs remain visible with their own
        transaction intervals.
        """
        self.archis.apply_pending()
        lifetimes: dict[int, Interval] = {}
        for sid, tstart, tend in self.archis.history(self.name):
            lifetimes[sid] = Interval(tstart, tend)
        attr_names = [self.key, *self.attributes, "vstart", "vend"]
        histories: dict[int, dict[str, list[tuple[object, Interval]]]] = {}
        for attr in attr_names:
            for row in self.archis.history(self.name, attr):
                sid, value, tstart, tend = row
                histories.setdefault(sid, {}).setdefault(attr, []).append(
                    (value, Interval(tstart, tend))
                )
        out = []
        for sid, lifetime in sorted(lifetimes.items()):
            per_attr = histories.get(sid, {})
            # transaction-time change points: every attribute version start
            boundaries = {lifetime.start}
            for versions in per_attr.values():
                for _, interval in versions:
                    if lifetime.contains_point(interval.start):
                        boundaries.add(interval.start)
            points = sorted(boundaries)
            for index, start in enumerate(points):
                end = (
                    points[index + 1] - 1
                    if index + 1 < len(points)
                    else lifetime.end
                )
                def value_of(attr: str):
                    for value, interval in per_attr.get(attr, []):
                        if interval.contains_point(start):
                            return value
                    return None
                out.append(
                    BitemporalFact(
                        key=value_of(self.key),
                        values=tuple(value_of(a) for a in self.attributes),
                        valid=Interval(
                            value_of("vstart"), value_of("vend")
                        ),
                        transaction=Interval(start, end),
                    )
                )
        return out

    def believed_at(self, tt: int | str) -> list[BitemporalFact]:
        """Fact versions current in transaction time ``tt``."""
        point = _days(tt)
        return [
            fact for fact in self.facts()
            if fact.transaction.contains_point(point)
        ]

    def valid_at(
        self, vt: int | str, tt: int | str | None = None
    ) -> list[BitemporalFact]:
        """Facts valid at ``vt`` according to the beliefs held at ``tt``
        (default: held now) — the bitemporal snapshot."""
        vpoint = _days(vt)
        beliefs = (
            self.believed_at(tt)
            if tt is not None
            else [f for f in self.facts() if f.currently_believed]
        )
        return [f for f in beliefs if f.valid.contains_point(vpoint)]

    # -- publication -------------------------------------------------------------------

    def publish(self) -> Element:
        """The bitemporal document: four timestamps on every fact."""
        root = Element(f"{self.name}s")
        for fact in self.facts():
            element = Element(self.name)
            element.set("tstart", format_date(fact.transaction.start))
            element.set("tend", format_date(fact.transaction.end))
            element.set("vstart", format_date(fact.valid.start))
            element.set("vend", format_date(fact.valid.end))
            key_el = Element(self.key)
            key_el.append(Text(str(fact.key)))
            element.append(key_el)
            for attr, value in zip(self.attributes, fact.values):
                child = Element(attr)
                child.append(Text(str(value)))
                element.append(child)
            root.append(element)
        return root

    def xquery(self, query: str) -> list:
        """Temporal XQuery over the published bitemporal document.

        The standard functions read transaction time (tstart/tend);
        valid-time predicates address ``@vstart``/``@vend`` directly.
        """
        from repro.xquery import run_xquery

        return run_xquery(
            query, {f"{self.name}s.xml": self.publish()},
            self.db.current_date,
        )
