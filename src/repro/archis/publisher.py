"""H-document publisher: H-tables → temporally grouped XML views.

Produces the XML view of a relation's history (paper Figures 3-4): one
child element per key value, carrying the entity's interval, with an ``id``
child and the coalesced, timestamped history of every attribute nested
under it.

Segmented archives store redundant copies of tuples that were live at a
freeze (Section 6.1); the publisher deduplicates on ``(id, tstart)``
keeping the *closed* version when one exists, then coalesces
value-equivalent adjacent periods, so the published view is identical
whatever the storage layout — the property the equivalence tests pin down.
"""

from __future__ import annotations

from repro.rdb.database import Database
from repro.util.intervals import Interval, coalesce_valued
from repro.util.timeutil import FOREVER, format_date
from repro.xmlkit.dom import Element, Text
from repro.archis.htables import RELATIONS_TABLE, TrackedRelation


def history_rows(
    db: Database, table_name: str, raw_rows=None
) -> list[tuple]:
    """Deduplicated ``(id, value..., tstart, tend)`` rows of an H-table.

    A tuple that was live at a segment freeze exists once per segment it
    lived through, open (tend = forever) in all but possibly the last; the
    closed version carries the true end, so dedup keeps ``min(tend)`` per
    ``(id, tstart)``.

    ``raw_rows`` overrides the row source (used to read through the
    compressed archive); defaults to the table heap.
    """
    table = db.table(table_name)
    schema = table.schema
    id_pos = schema.position("id")
    tstart_pos = schema.position("tstart")
    tend_pos = schema.position("tend")
    seg_pos = schema.position("segno")
    if raw_rows is None:
        raw_rows = table.rows()
    best: dict[tuple, tuple] = {}
    for row in raw_rows:
        key = (row[id_pos], row[tstart_pos])
        kept = best.get(key)
        if kept is None or row[tend_pos] < kept[tend_pos]:
            best[key] = row
    out = []
    for row in sorted(best.values(), key=lambda r: (r[id_pos], r[tstart_pos])):
        trimmed = list(row)
        del trimmed[seg_pos]
        out.append(tuple(trimmed))
    return out


def _timestamped(name: str, value: object, interval: Interval) -> Element:
    element = Element(name)
    element.set("tstart", format_date(interval.start))
    element.set("tend", format_date(interval.end))
    element.append(Text(_render(value)))
    return element


def _render(value: object) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def publish_relation(
    db: Database,
    relation: TrackedRelation,
    root_name: str | None = None,
    rows_provider=None,
) -> Element:
    """Build the H-document for one tracked relation.

    ``rows_provider(table_name)`` overrides where raw rows come from (the
    ArchIS facade passes an archive-aware reader so compressed segments
    publish identically).
    """
    root_name = root_name or f"{relation.name}s"

    def history_of(table_name: str) -> list[tuple]:
        raw = rows_provider(table_name) if rows_provider is not None else None
        return history_rows(db, table_name, raw)
    root = Element(root_name)
    root_interval = _relation_interval(db, relation.name)
    if root_interval is not None:
        root.set("tstart", format_date(root_interval[0]))
        root.set("tend", format_date(root_interval[1]))

    key_history: dict[object, list[Interval]] = {}
    for row in history_of(relation.key_table):
        key, tstart, tend = row[0], row[1], row[2]
        key_history.setdefault(key, []).append(Interval(tstart, tend))

    attr_history: dict[str, dict[object, list[tuple[object, Interval]]]] = {}
    for attribute in relation.attributes:
        per_key: dict[object, list[tuple[object, Interval]]] = {}
        for row in history_of(relation.attribute_table(attribute)):
            key, value, tstart, tend = row
            per_key.setdefault(key, []).append((value, Interval(tstart, tend)))
        attr_history[attribute] = per_key

    for key in sorted(key_history):
        intervals = sorted(key_history[key])
        entity_interval = Interval(
            intervals[0].start, max(iv.end for iv in intervals)
        )
        entity = Element(relation.name)
        entity.set("tstart", format_date(entity_interval.start))
        entity.set("tend", format_date(entity_interval.end))
        for interval in intervals:
            entity.append(_timestamped("id", key, interval))
        for attribute in relation.attributes:
            pairs = attr_history[attribute].get(key, [])
            for value, interval in coalesce_valued(pairs):
                entity.append(_timestamped(attribute, value, interval))
        root.append(entity)
    return root


def _relation_interval(db: Database, name: str) -> tuple[int, int] | None:
    if not db.has_table(RELATIONS_TABLE):
        return None
    for rel_name, tstart, tend in db.table(RELATIONS_TABLE).rows():
        if rel_name == name:
            return (tstart, tend if tend is not None else FOREVER)
    return None
