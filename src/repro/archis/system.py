"""The ArchIS system facade (paper Figure 5).

Wires together the current database, H-tables, change tracking, segment
clustering, compression and the XQuery→SQL/XML translator:

- ``track_table`` registers a current table for archival (triggers in the
  ``db2`` profile, update log in ``atlas``);
- the current tables are updated through normal SQL/DML and changes flow
  into the H-tables;
- ``xquery`` answers temporal XQuery over the virtual H-documents by
  translating to SQL/XML (with native-evaluation fallback on published
  views when the query is outside the translatable subset);
- ``publish`` materializes an H-document;
- ``compress_archive`` BlockZIPs all frozen segments into BLOBs.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from time import perf_counter

from repro.api import Result
from repro.errors import ArchisError, UnsupportedQueryError
from repro.obs.explain import ExplainResult
from repro.obs.metrics import get_registry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracer import get_tracer
from repro.rdb.database import Database
from repro.txn.locks import HistoryLock
from repro.archis.blobstore import CompressedArchive
from repro.archis.clustering import SegmentManager
from repro.archis.config import (
    DEFAULT_TRANSLATION_CACHE_SIZE,
    ArchISConfig,
    resolve_config,
)
from repro.archis.htables import TrackedRelation, create_htables
from repro.archis.publisher import history_rows, publish_relation
from repro.archis.sharding import ShardRouter, ShardTarget, shard_path
from repro.archis.tracker import (
    HTableWriter,
    LogTracker,
    TriggerTracker,
    apply_log,
)

_XQUERY_COUNT = get_registry().counter("archis.xquery.count")
_XQUERY_SECONDS = get_registry().histogram("archis.xquery.seconds")
_TEMPORAL_QUERIES = get_registry().counter("temporal.queries")
_TEMPORAL_SECONDS = get_registry().histogram("temporal.query.seconds")
_FALLBACKS = get_registry().labeled_counter("xquery.fallback")
_CACHE_HITS = get_registry().counter("translator.cache_hits")
_CACHE_MISSES = get_registry().counter("translator.cache_misses")
_SHARD_ROUTED = get_registry().labeled_counter("shard.entries_routed")

#: sentinel distinguishing "batch_size not passed" (use the configured
#: default) from an explicit ``batch_size=None`` (row-at-a-time apply)
_UNSET = object()
_SHARD_APPLIES = get_registry().counter("shard.applies")


@dataclass(frozen=True)
class Profile:
    """An engine profile (paper Section 7: ArchIS-DB2 vs ArchIS-ATLaS).

    ``tracking`` selects triggers vs update log; ``clustered_indexes``
    models ATLaS/BerkeleyDB's clustered index (extra storage, Fig. 11);
    ``one_scan_join`` enables the user-defined-aggregate optimization the
    authors applied to the temporal join on ATLaS (Section 8.3).
    """

    name: str
    tracking: str  # "triggers" | "log"
    clustered_indexes: bool
    one_scan_join: bool


PROFILES = {
    "db2": Profile("db2", "triggers", clustered_indexes=False, one_scan_join=False),
    "atlas": Profile("atlas", "log", clustered_indexes=True, one_scan_join=True),
}


class ArchIS:
    """Archival Information System over a :class:`Database`."""

    def __init__(
        self,
        db: Database | None = None,
        *,
        config: ArchISConfig | None = None,
    ) -> None:
        config = resolve_config(config)
        if config.profile not in PROFILES:
            raise ArchisError(
                f"unknown profile {config.profile!r}; use db2 or atlas"
            )
        self.config = config
        self.db = db if db is not None else Database()
        self.profile = PROFILES[config.profile]
        #: serializes H-table mutation against snapshot reads; the
        #: transaction manager adopts this instance, and the maintenance
        #: worker takes its write side per rewrite step
        self.history_lock = HistoryLock()
        self.segments = SegmentManager(
            self.db,
            config.umin,
            config.min_segment_rows,
            mode=config.maintenance,
        )
        #: background maintenance worker (``config.maintenance ==
        #: "background"`` only); owns the physical half of every freeze
        self.maintenance = None
        if config.maintenance == "background":
            from repro.archis.maintenance import MaintenanceWorker

            self.maintenance = MaintenanceWorker(
                self, config.maintenance_step_rows
            )
            self.segments.on_freeze_request = self.maintenance.request
        self.relations: dict[str, TrackedRelation] = {}
        self.writers: dict[str, HTableWriter] = {}
        self.trackers: dict[str, object] = {}
        self.archive = CompressedArchive(self.db, self.segments)
        self._doc_names: dict[str, str] = {}
        #: set by :class:`repro.txn.TxnManager` when a transaction layer
        #: is attached; apply_pending then only archives committed entries
        self.txn_manager = None
        #: XQuery text -> [generation, Translation, rendered optimized SQL];
        #: entries are dropped LRU past ``translation_cache_size`` and
        #: invalidated when the generation (schema / clustering /
        #: compression state) moves on.  Lookups, insertions and the
        #: hit/miss counters share one lock so concurrent sessions keep
        #: the LRU order intact and the counters exact.
        self.translation_cache_size = config.translation_cache_size
        self._translation_cache: OrderedDict[str, list] = OrderedDict()
        self._cache_lock = threading.RLock()
        #: queries slower than ``slow_query_log.threshold`` seconds are
        #: kept here (bounded); set the threshold to None to disable.
        self.slow_query_log = SlowQueryLog()
        # let the segment-restriction optimizer rule see clustering state
        self.db.segment_provider = self._segment_hints
        from repro.util.timeutil import FOREVER

        # tend with 'now' substitution (paper Section 4.3): the internal
        # end-of-time marker reads as the current date.
        self.db.register_function(
            "tendval",
            lambda v: self.db.current_date if v == FOREVER else v,
        )
        #: key -> shard routing; ``count == 1`` is the single-store
        #: engine (no coordinator machinery engages at all)
        self.router = ShardRouter(config.shard_count, config.shard_mode)
        #: the per-shard single-store ArchIS instances (empty unsharded)
        self.shard_stores: list["ArchIS"] = []
        #: H-table / history-function name -> ShardTarget consumed by the
        #: physical layer's Exchange operator via ``db.shard_provider``
        self._shard_targets: dict[str, ShardTarget] = {}
        self._shard_pool = None
        self._pool_lock = threading.Lock()
        if self.router.sharded:
            if self.profile.tracking != "log":
                raise ArchisError(
                    "sharding requires the atlas profile: trigger "
                    "tracking archives synchronously into the front "
                    "store and cannot be routed"
                )
            self._open_shard_stores()
            self.db.shard_provider = self._shard_target

    # -- sharding ----------------------------------------------------------------

    @property
    def is_sharded(self) -> bool:
        """Does this system coordinate multiple shard stores?"""
        return self.router.sharded

    def _shard_config(self) -> ArchISConfig:
        """The config each shard store runs with (the N=1 engine)."""
        return self.config.replace(shards=1, shard_by=None)

    def _open_shard_stores(self) -> None:
        """Create or reopen the N shard stores.

        A file-backed front store at ``p`` keeps shard ``k`` at
        ``p.shard<k>`` — its own pager, WAL, blob store, segment table
        and (in background mode) maintenance worker.  A shard whose
        sidecar exists is reloaded through the normal archive-open path
        (running its own WAL recovery); otherwise it starts fresh.
        """
        import os

        from repro.archis.persistence import ARCHIS_SUFFIX, load_archive

        front_path = self.db.pager.path
        config = self._shard_config()
        for index in self.router.all_shards():
            if front_path is None:
                store = ArchIS(Database(), config=config)
            else:
                path = shard_path(front_path, index)
                if os.path.exists(path + ARCHIS_SUFFIX):
                    store = load_archive(path, config=config)
                else:
                    store = ArchIS(
                        Database(
                            path,
                            config.buffer_pages,
                            durability=config.durability,
                        ),
                        config=config,
                    )
            self.shard_stores.append(store)

    def _shard_target(self, name: str):
        """``Database.shard_provider`` hook for the physical layer."""
        return self._shard_targets.get(name.lower())

    def _sync_shard_clocks(self) -> None:
        """Move every shard clock up to the coordinator's day.

        Shard clocks only move forward (commits may complete out of day
        order); the coordinator's clock stays authoritative for query
        semantics (``tendval`` runs in the front database).
        """
        day = self.db.current_date
        for store in self.shard_stores:
            store.db.advance_to(day)

    def _shard_submit(self, fn):
        """Run ``fn`` on the coordinator's shard pool; returns a future.

        The pool is created lazily (a sharded archive that never runs a
        scatter query never spawns threads) and shut down in
        :meth:`close`.
        """
        if self._shard_pool is None:
            with self._pool_lock:
                if self._shard_pool is None:
                    from concurrent.futures import ThreadPoolExecutor

                    self._shard_pool = ThreadPoolExecutor(
                        max_workers=self.router.count,
                        thread_name_prefix="repro-shard",
                    )
        return self._shard_pool.submit(fn)

    def _track_shard_relation(
        self, name: str, key: str, document_name: str | None
    ) -> None:
        """Mirror a tracked relation into every shard store.

        Each shard gets a schema clone of the current table (so its own
        ``track_table`` can derive the H-table layout) plus the full
        tracking machinery; the mirror current table itself never
        receives DML — shard H-tables are fed through the routed update
        log, never through the mirror's tracker.
        """
        table = self.db.table(name)
        columns = [(c.name, c.type) for c in table.schema.columns]
        for store in self.shard_stores:
            if name in store.relations:
                continue  # reloaded from the shard's own sidecar
            if not store.db.has_table(name):
                store.db.create_table(
                    name, columns, table.schema.primary_key
                )
            store.track_table(name, key=key, document_name=document_name)

    def _register_shard_targets(self, relation: TrackedRelation) -> None:
        """Expose one :class:`ShardTarget` per H-table of ``relation``.

        Registered under the table name and its ``history_``/``seg_``/
        ``slice_`` table-function names, so any plan leaf over the
        relation's history resolves to the same scatter target.
        """
        stores = tuple(self.shard_stores)
        for table_name in relation.all_tables():
            target = ShardTarget(
                table=table_name,
                key_column="id",
                router=self.router,
                stores=stores,
                prepare=self._sync_shard_clocks,
                submit=self._shard_submit,
            )
            for name in (
                table_name,
                f"history_{table_name}",
                f"seg_{table_name}",
                f"slice_{table_name}",
            ):
                self._shard_targets[name.lower()] = target

    def _apply_sharded(
        self, predicate, batch_size: int | None, durable: bool
    ) -> int:
        """Route the front update log into per-shard logs and apply.

        Runs under the coordinator's history write lock so scatter
        queries (which hold the coordinator read side) observe a
        cross-shard-consistent archive.  Entry order is preserved per
        shard: the front drain is day-ordered and partitioning keeps
        every shard's subsequence in that order, so per-shard archive
        timestamps never go backwards.  Each shard applies through its
        own :class:`~repro.archis.batch.BatchArchiver` — one WAL commit
        per batch *per shard* under ``durable=True``.  A shard failing
        mid-apply requeues into its own log and the error propagates;
        entries already routed to other shards stay queued there and the
        next apply resumes them.
        """
        if batch_size is _UNSET:
            batch_size = self.config.batch_size
        with self.history_lock.write():
            self._sync_shard_clocks()
            for entry in self.db.update_log.drain_ordered(predicate):
                writer = self.writers.get(entry.table)
                if writer is None:
                    continue  # untracked, dropped as in single-store apply
                index = self.router.shard_for(writer.key_of(entry.row))
                self.shard_stores[index].db.update_log.append(
                    entry.timestamp,
                    entry.table,
                    entry.op,
                    entry.row,
                    entry.old,
                )
                _SHARD_ROUTED.inc(str(index))
            applied = 0
            for store in self.shard_stores:
                applied += store.apply_pending(
                    batch_size=batch_size, durable=durable
                )
            if applied:
                _SHARD_APPLIES.inc()
        return applied

    # -- setup -------------------------------------------------------------------

    def track_table(
        self,
        name: str,
        key: str | None = None,
        document_name: str | None = None,
        value_indexes: bool = False,
    ) -> TrackedRelation:
        """Start archiving a current table's history.

        ``key`` defaults to the table's single-column primary key; its
        value must remain invariant over the history (paper Section 5.1).
        ``document_name`` names the H-view (default ``<name>s.xml``).
        ``value_indexes`` additionally indexes every attribute's value
        column (the paper indexes "all nodes/attributes which have values
        selected"; off by default to keep the storage profile lean).
        """
        if name in self.relations:
            raise ArchisError(f"table {name} is already tracked")
        table = self.db.table(name)
        if key is None:
            if len(table.schema.primary_key) != 1:
                raise ArchisError(
                    f"table {name}: pass key= explicitly (no single-column "
                    "primary key)"
                )
            key = table.schema.primary_key[0]
        attributes = {
            column.name: column.type
            for column in table.schema.columns
            if column.name != key
        }
        relation = TrackedRelation(name, key, attributes)
        create_htables(
            self.db, relation, self.segments.segmented, value_indexes
        )
        for table_name in relation.all_tables():
            self.segments.register_table(table_name)
        from repro.archis.tablefuncs import register_history_functions

        for table_name in relation.all_tables():
            register_history_functions(self, table_name)
        writer = HTableWriter(self.db, relation, self.segments)
        if self.profile.tracking == "triggers":
            tracker = TriggerTracker(self.db, writer)
        else:
            tracker = LogTracker(self.db, writer)
        self.relations[name] = relation
        self.writers[name] = writer
        self.trackers[name] = tracker
        self._doc_names[document_name or f"{name}s.xml"] = name
        if self.router.sharded:
            # the front H-tables stay empty (they exist so the planner
            # can resolve names and schemas); history lands in the shard
            # whose key range owns each row
            self._track_shard_relation(name, key, document_name)
            self._register_shard_targets(relation)
            self._sync_shard_clocks()
            day = self.db.current_date
            for row in list(table.rows()):
                index = self.router.shard_for(writer.key_of(row))
                self.shard_stores[index].writers[name].archive_insert(
                    row, day
                )
        else:
            # archive rows that already exist in the current table
            for row in list(table.rows()):
                writer.archive_insert(row, self.db.current_date)
        return relation

    # -- change flow ---------------------------------------------------------------

    def apply_pending(
        self, batch_size: int | None = _UNSET, durable: bool = False
    ) -> int:
        """Drain the update log into H-tables (ATLaS profile).

        A no-op (returns 0) under trigger tracking, where archival is
        synchronous.  With a transaction manager attached, only entries
        of *committed* transactions are applied — readers running beside
        in-flight writers must never archive uncommitted changes.

        ``batch_size`` selects the ingest path: ``None`` archives
        row-at-a-time (the legacy path), an integer hands the drain to
        the :class:`~repro.archis.batch.BatchArchiver` in batches of
        that size (defaults to ``config.batch_size``).  Both produce
        byte-identical H-tables.  ``durable=True`` additionally commits
        one WAL frame per batch on a file-backed archive, making each
        completed batch a crash-consistent recovery point.
        """
        if self.profile.tracking != "log":
            return 0
        if self.history_lock.held_read():
            # a reader holding the history lock (an XQuery mid-scan)
            # must not mutate the H-tables it is reading; the entries
            # stay pending for the next apply outside the read
            return 0
        if self.txn_manager is not None:
            self.txn_manager.apply_committed()
            return 0
        if self.router.sharded:
            return self._apply_sharded(None, batch_size, durable)
        if batch_size is _UNSET:
            batch_size = self.config.batch_size
        if batch_size is None:
            return apply_log(self.db, self.writers, history=self.history_lock)
        from repro.archis.batch import BatchArchiver

        return BatchArchiver(self, batch_size, durable=durable).apply()

    def apply_log_entries(
        self, predicate, batch_size: int | None = _UNSET
    ) -> int:
        """Apply matching update-log entries (transaction-layer hook).

        Unlike :meth:`apply_pending` this does not consult the
        transaction manager — the manager calls it with its own
        committed-entries predicate, under its apply lock.  Batching
        follows ``config.batch_size`` unless overridden; durability is
        the caller's concern (the transaction layer commits the whole
        transaction as one WAL frame).
        """
        if self.profile.tracking != "log":
            return 0
        if self.router.sharded:
            return self._apply_sharded(predicate, batch_size, False)
        if batch_size is _UNSET:
            batch_size = self.config.batch_size
        if batch_size is None:
            return apply_log(
                self.db, self.writers, predicate, history=self.history_lock
            )
        from repro.archis.batch import BatchArchiver

        return BatchArchiver(self, batch_size, durable=False).apply(predicate)

    # -- publication ------------------------------------------------------------------

    def publish(self, relation_name: str):
        """Materialize the H-document of one tracked relation.

        Reads through the compressed archive when segments have been
        BlockZIPed, so publication is storage-layout independent.
        """
        relation = self._relation(relation_name)
        with self.history_lock.read():
            return publish_relation(
                self.db, relation, rows_provider=self._all_rows_of
            )

    def _all_rows_of(self, table_name: str):
        if self.router.sharded:
            # shards partition the key space, so per-shard streams are
            # disjoint; consumers (publisher, history dedup) re-sort
            for store in self.shard_stores:
                with store.history_lock.read():
                    yield from list(store._all_rows_of(table_name))
            return
        yield from self.db.table(table_name).rows()
        if table_name in self.archive.compressed_tables:
            yield from self.archive.read_rows(table_name)

    def document_names(self) -> list[str]:
        return sorted(self._doc_names)

    def relation_for_document(self, document: str) -> TrackedRelation:
        name = self._doc_names.get(document)
        if name is None:
            raise ArchisError(f"no H-view named {document!r}")
        return self.relations[name]

    def history(self, relation_name: str, attribute: str | None = None):
        """Deduplicated history rows of the key or one attribute table."""
        relation = self._relation(relation_name)
        table = (
            relation.key_table
            if attribute is None
            else relation.attribute_table(attribute)
        )
        with self.history_lock.read():
            return history_rows(self.db, table, self._all_rows_of(table))

    # -- queries --------------------------------------------------------------------------

    def _segment_hints(self, table_name: str):
        """``Database.segment_provider`` hook for the optimizer rules."""
        if self.router.sharded and table_name.lower() in self._shard_targets:
            # the coordinator's copy of a sharded H-table is empty and
            # its segment map meaningless; leaving the hint out keeps
            # the history_ scan intact so the Exchange operator can
            # re-optimize the leaf per shard with that shard's own hints
            return None
        if not self.segments.is_registered(table_name):
            return None
        from repro.plan.optimizer import SegmentHints

        return SegmentHints(
            compressed=table_name in self.archive.compressed_tables,
            segments_overlapping=self.segments.segments_overlapping,
        )

    def _translation_generation(self) -> tuple:
        """Cache key component that moves whenever a cached Translation
        (or its optimized rendering) could become stale: tracked views,
        segment boundaries, compression state."""
        return (
            tuple(sorted(self._doc_names)),
            self.segments.generation,
            tuple(sorted(self.archive.compressed_tables)),
        )

    def translation(self, query: str):
        """The (LRU-cached) :class:`Translation` for an XQuery."""
        return self._cached_translation(query)[1]

    def _cached_translation(self, query: str) -> list:
        with self._cache_lock:
            generation = self._translation_generation()
            entry = self._translation_cache.get(query)
            if entry is not None and entry[0] == generation:
                self._translation_cache.move_to_end(query)
                _CACHE_HITS.inc()
                return entry
            _CACHE_MISSES.inc()
            from repro.archis.translator import translate

            # Translation happens under the lock: concurrent sessions
            # asking for the same new query would otherwise translate it
            # twice and double-count the miss.
            translation = translate(self, query)
            entry = [generation, translation, None]
            self._translation_cache[query] = entry
            self._translation_cache.move_to_end(query)
            while len(self._translation_cache) > self.translation_cache_size:
                self._translation_cache.popitem(last=False)
            return entry

    def translate(self, query: str) -> str:
        """Translate XQuery on the H-views to SQL/XML on the H-tables.

        The returned text is the *optimized* query: the translator's SQL
        parsed, planned and rendered back after the rule pipeline ran, so
        segment-restricted access paths (``segno = k``, ``seg_``/``slice_``
        functions) appear in the SQL itself.  The rendering is cached
        alongside the translation.
        """
        with self._cache_lock:
            entry = self._cached_translation(query)
            if entry[2] is None:
                entry[2] = self._optimized_sql(entry[1])
            return entry[2]

    def _optimized_sql(self, translation) -> str:
        from repro.plan import PlanContext, build_logical, run_rules, to_sql
        from repro.sql import ast as sql_ast
        from repro.sql.parser import parse_sql
        from repro.sql.planner import function_registry, source_scope

        statement = parse_sql(translation.sql)
        if not isinstance(statement, sql_ast.Select):
            return translation.sql
        scope = source_scope(self.db, statement.sources)
        plan = build_logical(statement, scope)
        if getattr(self.db, "optimizer_enabled", True):
            ctx = PlanContext(
                self.db, scope, function_registry(self.db)
            )
            plan, _ = run_rules(plan, ctx)
        return to_sql(plan)

    def xquery(self, query: str, allow_fallback: bool = True) -> Result:
        """Answer a temporal XQuery against the (virtual) H-documents.

        The translated SQL/XML path is used when the query falls in the
        translatable subset; otherwise, with ``allow_fallback``, the H-views
        are published and the query evaluated natively (complete but slow).

        Returns a :class:`~repro.api.Result` whose ``rows`` are the
        answer forest (XML elements and/or scalars) and whose ``stats``
        carry the translated SQL, the fallback reason (if any) and the
        elapsed seconds.  The Result still compares/iterates like the
        bare list this method used to return (with a
        ``DeprecationWarning``).

        Emits an ``archis.xquery`` root span (children: ``xquery.translate``,
        ``sql.execute``, ``xquery.post`` — or ``xquery.native`` on
        fallback), counts ``archis.xquery.count`` / ``xquery.fallback``
        and feeds the slow-query log.
        """
        tracer = get_tracer()
        started = perf_counter()
        sql_text: str | None = None
        fallback_reason: str | None = None
        out: Result | None = None
        try:
            with tracer.span("archis.xquery", query=query) as span:
                self.apply_pending()
                try:
                    with tracer.span("xquery.translate"):
                        translation = self.translation(query)
                except UnsupportedQueryError as exc:
                    fallback_reason = str(exc)
                    _FALLBACKS.inc(fallback_reason)
                    span.set("fallback_reason", fallback_reason)
                    if not allow_fallback:
                        raise
                    with tracer.span("xquery.native"):
                        out = Result(
                            self._native_fallback(query),
                            stats={"fallback_reason": fallback_reason},
                        )
                        return out
                sql_text = translation.sql
                span.set("sql", sql_text)
                # the read side keeps the maintenance worker (and any
                # other H-table mutator) out while the query scans
                with self.history_lock.read():
                    with tracer.span("sql.execute"):
                        result = self.db.sql(
                            translation.sql, translation.params
                        )
                    with tracer.span("xquery.post"):
                        if translation.post is not None:
                            rows = translation.post(result)
                        else:
                            rows = result.xml()
                out = Result(rows, stats={"sql": sql_text})
                return out
        finally:
            elapsed = perf_counter() - started
            _XQUERY_COUNT.inc()
            _XQUERY_SECONDS.observe(elapsed)
            if out is not None:
                out.stats["seconds"] = elapsed
            self.slow_query_log.record(
                query,
                elapsed,
                sql=sql_text,
                fallback_reason=fallback_reason,
                trace_id=get_tracer().current_trace_id(),
            )

    def _native_fallback(self, query: str) -> list:
        from repro.xquery import make_context, parse_xquery
        from repro.xquery.evaluator import evaluate_query

        with get_tracer().span("xquery.publish"), self.history_lock.read():
            documents = {
                doc: publish_relation(
                    self.db,
                    self.relations[rel],
                    rows_provider=self._all_rows_of,
                )
                for doc, rel in self._doc_names.items()
            }
        ctx = make_context(documents, self.db.current_date)
        return evaluate_query(parse_xquery(query), ctx)

    # -- temporal SQL (first-class FOR SYSTEM_TIME) ------------------------------------------

    def sql(self, text: str, params=None) -> Result:
        """Execute SQL — including the temporal surface — on the archive.

        This is the SQL-native sibling of :meth:`xquery`: ``FOR
        SYSTEM_TIME`` clauses, ``TEMPORAL JOIN``, ``SELECT NORMALIZE``
        and sequenced aggregates (``tavg``/``tcount``/...) lower straight
        into the plan IR, so time-travel queries pick up segment
        restriction, index selection and Exchange shard pruning without
        any XQuery translation.  Pending changes are archived first and
        SELECTs run under the history read lock, mirroring the ``xquery``
        path; use :meth:`explain_sql` / ``db.last_plan`` for the plan.
        """
        from repro.plan.build import select_is_temporal
        from repro.sql import ast as sql_ast
        from repro.sql.parser import parse_sql
        from repro.sql.session import execute_statement

        statement = parse_sql(text)
        if not isinstance(statement, sql_ast.Select):
            return self.db.sql(text, params)
        temporal = select_is_temporal(statement)
        tracer = get_tracer()
        started = perf_counter()
        with tracer.span("archis.sql", sql=text):
            self.apply_pending()
            with self.history_lock.read():
                result = execute_statement(
                    self.db, statement, params, text=text
                )
        elapsed = perf_counter() - started
        if temporal:
            _TEMPORAL_QUERIES.inc()
            _TEMPORAL_SECONDS.observe(elapsed)
            self.slow_query_log.record(
                text,
                elapsed,
                sql=text,
                trace_id=tracer.current_trace_id(),
            )
        result.stats.update({"sql": text, "seconds": elapsed})
        return result

    def explain_sql(self, text: str, params=None) -> ExplainResult:
        """Run SQL with tracing forced on and report how it ran.

        The SQL sibling of :meth:`explain`: returns the span tree, the
        statement's :class:`~repro.obs.explain.PlanReport` (where the
        segment restriction and shard pruning are visible) and the
        buffer-pool IO the run performed.
        """
        registry = get_registry()
        misses = registry.counter("buffer.misses")
        hits = registry.counter("buffer.hits")
        misses_before = misses.value
        hits_before = hits.value
        with get_tracer().capture() as roots:
            result = self.sql(text, params)
        root = next(
            (s for s in reversed(roots) if s.name == "archis.sql"),
            roots[-1],
        )
        plan = None
        if getattr(self.db, "last_plan", None) is not None:
            plan = self.db.last_plan.report()
        return ExplainResult(
            query=text,
            seconds=root.duration,
            result_count=result.row_count,
            physical_reads=misses.value - misses_before,
            cache_hits=hits.value - hits_before,
            root=root,
            sql=text,
            params=dict(params or {}),
            plan=plan,
        )

    # -- snapshots (the segment fast path, Section 6.3) -------------------------------------

    def snapshot_rows(
        self, relation_name: str, attribute: str, date: int
    ) -> Result:
        """(id, value) pairs of an attribute's snapshot at ``date``.

        Returns a :class:`~repro.api.Result` (columns ``id`` and the
        attribute name) that still iterates/compares like the bare
        list of pairs this method used to return.
        """
        relation = self._relation(relation_name)
        table_name = relation.attribute_table(attribute)
        columns = ["id", attribute]
        if self.router.sharded:
            # keys are disjoint across shards: the snapshot is the plain
            # union of the per-shard snapshots (each using its own
            # segment fast path), gathered under the coordinator read
            # side so no routed apply lands mid-union
            rows: list = []
            with self.history_lock.read():
                self._sync_shard_clocks()
                for store in self.shard_stores:
                    rows.extend(
                        store.snapshot_rows(
                            relation_name, attribute, date
                        ).rows
                    )
            return Result(
                rows,
                columns,
                stats={
                    "table": table_name,
                    "date": date,
                    "shards": self.router.count,
                },
            )
        stats = {"table": table_name, "date": date}
        with self.history_lock.read():
            segno = self.segments.segment_for(date)
            stats["segno"] = segno
            if table_name in self.archive.compressed_tables and (
                segno != self.segments.live_segno
            ):
                rows = self.archive.read_rows(table_name, [segno])
                table = self.db.table(table_name)
                seg_pos = table.schema.position("segno")
                tstart_pos = table.schema.position("tstart")
                tend_pos = table.schema.position("tend")
                stats["compressed"] = True
                return Result(
                    [
                        (row[0], row[1])
                        for row in rows
                        if row[seg_pos] == segno
                        and row[tstart_pos] <= date <= row[tend_pos]
                    ],
                    columns,
                    stats=stats,
                )
            result = self.db.sql(
                f"SELECT t.id, t.{attribute} FROM {table_name} t "
                f"WHERE t.segno = :segno AND t.tstart <= :d AND t.tend >= :d",
                {"segno": segno, "d": date},
            )
            stats["compressed"] = False
        return Result(list(result.rows), columns, stats=stats)

    def max_increase_one_scan(
        self,
        relation_name: str,
        attribute: str,
        after: int,
        window_days: int,
    ) -> float | None:
        """The temporal join of Table 3 Q6 as a one-scan user-defined
        aggregate (paper Section 8.3: "we effectively optimize the join
        through a user-defined aggregate in one scan").

        Finds the maximum value increase between two versions of the same
        key where the later version starts within ``window_days`` of the
        earlier one and the earlier starts at/after ``after``.  Only the
        ``atlas`` profile uses this fast path.
        """
        if not self.profile.one_scan_join:
            raise ArchisError(
                "the one-scan join optimization is an ATLaS-profile feature"
            )
        best: float | None = None
        open_versions: list[tuple[int, float]] = []  # (tstart, value)
        last_id: object = None
        for row in self.history(relation_name, attribute):
            key, value, tstart, _ = row
            if key != last_id:
                open_versions = []
                last_id = key
            # drop versions that can no longer pair with later ones
            open_versions = [
                (s, v) for s, v in open_versions
                if tstart - s <= window_days
            ]
            for earlier_start, earlier_value in open_versions:
                if earlier_start >= after and tstart > earlier_start:
                    increase = value - earlier_value
                    if best is None or increase > best:
                        best = increase
            open_versions.append((tstart, value))
        return best

    # -- compression ----------------------------------------------------------------------------

    def compress_archive(self) -> dict[str, object]:
        """BlockZIP every tracked H-table's frozen segments into BLOBs.

        Background rewrites are drained first: compression snapshots a
        frozen segment's physical layout, so the sorted rewrite must be
        in place before its rows move into BLOBs.
        """
        self.drain_maintenance()
        report = {}
        with get_tracer().span("archis.compress_archive") as span:
            if self.router.sharded:
                # each shard BlockZIPs its own frozen segments into its
                # own blob store; the report namespaces per shard
                for index, store in enumerate(self.shard_stores):
                    for name, info in store.compress_archive().items():
                        report[f"shard{index}/{name}"] = info
            else:
                for relation in self.relations.values():
                    for table_name in relation.all_tables():
                        if table_name in self.archive.compressed_tables:
                            continue
                        report[table_name] = self.archive.compress_table(
                            table_name
                        )
            span.set("tables", len(report))
        return report

    # -- persistence ------------------------------------------------------------------------

    def save(self) -> str:
        """Persist a file-backed archive (catalog + ArchIS metadata).

        Queued background rewrites are drained first so the saved
        archive carries a settled physical layout (an unfinished queue
        would still reload correctly — ``pending_rewrites`` rides in the
        sidecar — but a clean save should not need a resume).
        """
        self.drain_maintenance()
        from repro.archis.persistence import save_archive

        if self.router.sharded:
            # route + apply the front backlog first so each shard's save
            # captures it; every shard commits its own WAL frame, then
            # the front sidecar (which carries the shard layout and
            # relation catalog) commits last — a crash between shard
            # saves leaves each shard at its own consistent boundary
            self.apply_pending()
            for store in self.shard_stores:
                store.save()
        return save_archive(self)

    def drain_maintenance(self, timeout: float = 60.0) -> None:
        """Wait for every queued background rewrite to finish.

        A no-op outside background mode.  Re-raises an error the worker
        recorded.
        """
        if self.maintenance is not None:
            self.maintenance.drain(timeout)
        for store in self.shard_stores:
            store.drain_maintenance(timeout)

    def close(self) -> None:
        """Stop maintenance, shut the shard fan-out down, close the db."""
        if self.maintenance is not None:
            self.maintenance.stop()
        if self._shard_pool is not None:
            self._shard_pool.shutdown(wait=True)
            self._shard_pool = None
        for store in self.shard_stores:
            store.close()
        self.db.close()

    def __enter__(self) -> "ArchIS":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @classmethod
    def open(
        cls,
        path: str,
        *,
        config: ArchISConfig | None = None,
    ) -> "ArchIS":
        """Reopen an archive saved with :meth:`save` (runs WAL recovery).

        ``config`` supplies the runtime knobs (buffer pool, durability,
        batch size, cache sizes); the archive's *state* — profile, U_min,
        segment boundaries — always comes from the saved sidecar.
        """
        from repro.archis.persistence import load_archive

        return load_archive(path, config=resolve_config(config))

    @property
    def durability(self) -> str:
        """The underlying pager's durability mode: ``"wal"`` or ``"none"``."""
        return self.db.durability

    # -- observability ----------------------------------------------------------------------------

    def stats(self) -> dict:
        """A full telemetry snapshot: metrics, cache, segments, slow log.

        The returned structure is a deep copy: callers may mutate or
        retain it without aliasing live registry internals, and two
        snapshots never share state.
        """
        pool = self.db.pool.stats
        pager = self.db.pager.stats
        return copy.deepcopy({
            "metrics": get_registry().snapshot(),
            "buffer": {
                "hits": pool.hits,
                "misses": pool.misses,
                "hit_rate": pool.hit_rate,
            },
            "pager": {
                "reads": pager.reads,
                "writes": pager.writes,
                "allocations": pager.allocations,
            },
            "durability": {
                "mode": self.db.durability,
                "wal_frames": get_registry().counter("wal.frames").value,
                "wal_bytes": get_registry().counter("wal.bytes").value,
                "wal_commits": get_registry().counter("wal.commits").value,
                "wal_checkpoints": get_registry().counter(
                    "wal.checkpoints"
                ).value,
                "wal_recoveries": get_registry().counter(
                    "wal.recoveries"
                ).value,
                "wal_fsyncs": get_registry().counter("wal.fsyncs").value,
                "group_commit_batched": get_registry().counter(
                    "wal.group_commit.batched"
                ).value,
                "commit_causes": dict(
                    get_registry().labeled_counter("wal.commits.cause").values
                ),
            },
            "ingest": {
                "batch_size": self.config.batch_size,
                "batches": get_registry().counter("ingest.batches").value,
                "entries": get_registry().counter("ingest.entries").value,
                "clearance_granted": get_registry().counter(
                    "ingest.clearance_granted"
                ).value,
                "clearance_denied": get_registry().counter(
                    "ingest.clearance_denied"
                ).value,
            },
            "sharding": {
                "shards": self.router.count,
                "shard_by": self.router.shard_by,
                "enabled": self.router.sharded,
                "stores": [
                    {
                        "path": store.db.pager.path,
                        "segments": store.segments.segment_count(),
                        "freezes": store.segments.freeze_count,
                        "backlog": len(store.db.update_log),
                        "compressed_tables": sorted(
                            store.archive.compressed_tables
                        ),
                    }
                    for store in self.shard_stores
                ],
            },
            "config": self.config.as_dict(),
            "txn": (
                self.txn_manager.stats()
                if self.txn_manager is not None
                else None
            ),
            "segments": {
                "count": self.segments.segment_count(),
                "freezes": self.segments.freeze_count,
                "live_segno": self.segments.live_segno,
                "usefulness": self.segments.stats.usefulness,
            },
            "maintenance": {
                "mode": self.config.maintenance,
                "step_rows": self.config.maintenance_step_rows,
                "pending_rewrites": list(self.segments.pending_rewrites),
                "rewrites_completed": self.segments.rewrites,
                "worker": (
                    self.maintenance.stats()
                    if self.maintenance is not None
                    else None
                ),
                "freezes_enqueued": get_registry().counter(
                    "maintenance.freezes_enqueued"
                ).value,
                "freezes_completed": get_registry().counter(
                    "maintenance.freezes_completed"
                ).value,
                "steps": get_registry().counter("maintenance.steps").value,
                "rows_moved": get_registry().counter(
                    "maintenance.rows_moved"
                ).value,
            },
            "translator": {
                "cache_size": len(self._translation_cache),
                "cache_capacity": self.translation_cache_size,
                "cache_hits": _CACHE_HITS.value,
                "cache_misses": _CACHE_MISSES.value,
            },
            "relations": sorted(self.relations),
            "compressed_tables": sorted(self.archive.compressed_tables),
            "slow_queries": [
                asdict(entry) for entry in self.slow_query_log
            ],
        })

    def explain(self, query: str, allow_fallback: bool = True) -> ExplainResult:
        """Run ``query`` with tracing forced on and report how it ran.

        Returns the span tree (parse/translate/execute stages), the
        translated SQL (or the fallback reason), and the buffer-pool IO
        the run performed.  Works regardless of the tracer's global
        enabled state.
        """
        registry = get_registry()
        misses = registry.counter("buffer.misses")
        hits = registry.counter("buffer.hits")
        misses_before = misses.value
        hits_before = hits.value
        with get_tracer().capture() as roots:
            result = self.xquery(query, allow_fallback=allow_fallback)
        root = next(
            (s for s in reversed(roots) if s.name == "archis.xquery"),
            roots[-1],
        )
        sql_text = root.attrs.get("sql")
        plan = None
        if sql_text is not None and self.db.last_plan is not None:
            plan = self.db.last_plan.report()
        return ExplainResult(
            query=query,
            seconds=root.duration,
            result_count=result.row_count,
            physical_reads=misses.value - misses_before,
            cache_hits=hits.value - hits_before,
            root=root,
            sql=sql_text,
            fallback_reason=root.attrs.get("fallback_reason"),
            plan=plan,
        )

    # -- measurement hooks ------------------------------------------------------------------------

    def reset_caches(self) -> None:
        self.db.reset_caches()
        for store in self.shard_stores:
            store.reset_caches()
        with self._cache_lock:
            self._translation_cache.clear()

    def storage_bytes(self) -> int:
        """Footprint of all H-tables + compressed blobs (+ index models).

        The ATLaS profile charges its clustered-index overhead here
        (BerkeleyDB keeps tables inside a clustered B-tree; Fig. 11 shows
        the resulting storage penalty).
        """
        total = sum(store.storage_bytes() for store in self.shard_stores)
        for relation in self.relations.values():
            for table_name in relation.all_tables():
                table = self.db.table(table_name)
                total += table.size_bytes(include_indexes=True)
                if self.profile.clustered_indexes:
                    # clustered index ~ one extra key entry per row plus
                    # B-tree page slack over the heap payload
                    total += table.size_bytes(include_indexes=False) // 2
            for table_name in relation.all_tables():
                info = self.archive.compressed_tables.get(table_name)
                if info is not None:
                    for row in self.db.table(info.blob_table).rows():
                        blob_id = row[4]
                        total += len(self.db.blobs.get(blob_id))
        return total

    def _relation(self, name: str) -> TrackedRelation:
        relation = self.relations.get(name)
        if relation is None:
            raise ArchisError(f"table {name} is not tracked")
        return relation
