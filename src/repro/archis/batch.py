"""Batched archival ingest (the bulk-load-speed write path).

Row-at-a-time archival pays one H-table lookup per log entry: every
``_upsert_version``/``_close_history`` re-scans the key's versions, and
every entry runs its own segment-usefulness check.  The
:class:`BatchArchiver` drains the update log in configurable batches
and amortizes both costs:

* **One lookup per (key, table) per apply run.**  The batch is grouped
  per relation and key and sorted by ``(table, key, when)``; the
  writers' version caches are warmed in that clustered order (eagerly
  when the freeze clearance below holds, lazily on first touch
  otherwise), so each key's history is read once and every subsequent
  entry for the key appends/closes against the cached versions
  (:meth:`HTableWriter.begin_batch`).
* **One clustering check per batch.**  A conservative usefulness bound
  (:meth:`SegmentManager.freeze_clearance`) proves up front that no
  prefix of the batch can trigger a freeze; when it holds, the
  per-entry ``maybe_freeze`` calls are suspended for the batch.  When
  it cannot be proven (usefulness genuinely near U_min), the batch
  falls back to per-entry checks — freezes then happen on exactly the
  entry they would have under row-at-a-time apply.
* **One WAL commit frame per batch** (optional, ``durable=True``): the
  catalog and archive sidecars are staged and a single COMMIT frame is
  appended through the existing group-commit path, making each
  completed batch a crash-consistent recovery point.

Equivalence: entries are *applied* in the same day order as
:func:`~repro.archis.tracker.apply_log` and dispatched through the same
per-entry operations — the ``(table, key, when)`` sort drives only the
cache-warming read plan, never the write order — so batch apply
produces byte-identical H-tables, the same segment boundaries and the
same segment-manager counters as row-at-a-time apply.
"""

from __future__ import annotations

import contextlib
from time import perf_counter

from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.archis.tracker import dispatch_entry

_BATCHES = get_registry().counter("ingest.batches")
_ENTRIES = get_registry().counter("ingest.entries")
_ENTRIES_PER_BATCH = get_registry().histogram(
    "ingest.entries_per_batch", (1, 4, 16, 64, 256, 1024, 4096)
)
_SECONDS = get_registry().histogram("ingest.seconds")
_CLEARED = get_registry().counter("ingest.clearance_granted")
_UNCLEARED = get_registry().counter("ingest.clearance_denied")

#: default batch size when batching is requested without an explicit one
DEFAULT_BATCH_SIZE = 256


class BatchArchiver:
    """Drains one archive's update log in amortized batches."""

    def __init__(
        self,
        archis,
        batch_size: int = DEFAULT_BATCH_SIZE,
        durable: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.archis = archis
        self.db = archis.db
        self.writers = archis.writers
        self.segments = archis.segments
        self.batch_size = batch_size
        # a durable batch needs somewhere durable to commit to
        self.durable = durable and (
            self.db.pager.path is not None and self.db.durability == "wal"
        )
        # entries dispatched inside the currently-running batch; on a
        # mid-batch failure everything past ``applied + _batch_progress``
        # is requeued rather than lost
        self._batch_progress = 0

    def apply(self, predicate=None) -> int:
        """Drain matching pending entries and archive them in batches.

        Returns the number of entries applied.  The writers' version
        caches live for the whole drain (every batch of one apply call
        shares them); entries for untracked tables are dropped, as in
        row-at-a-time apply.

        A failure partway through a batch re-queues the drained-but-
        unapplied suffix to the front of the update log before
        re-raising, so the next apply sees those entries again in the
        same relative order — a transient error never silently drops
        history.
        """
        entries = [
            entry
            for entry in self.db.update_log.drain_ordered(predicate)
            if entry.table in self.writers
        ]
        if not entries:
            return 0
        applied = 0
        try:
            with get_tracer().span(
                "archis.batch_apply",
                entries=len(entries),
                batch_size=self.batch_size,
            ) as span:
                for writer in self.writers.values():
                    writer.begin_batch()
                try:
                    for start in range(0, len(entries), self.batch_size):
                        batch = entries[start:start + self.batch_size]
                        self._batch_progress = 0
                        self._apply_batch(batch)
                        applied += len(batch)
                finally:
                    for writer in self.writers.values():
                        writer.end_batch()
                span.set("applied", applied)
        except BaseException:
            self.db.update_log.requeue(
                entries[applied + self._batch_progress:]
            )
            raise
        return applied

    # -- one batch ---------------------------------------------------------

    def _apply_batch(self, batch: list) -> None:
        with self.archis.history_lock.write():
            self._apply_batch_locked(batch)

    def _apply_batch_locked(self, batch: list) -> None:
        started = perf_counter()
        # Group per relation and key, sorted by (table, key, when):
        # warming the caches in this order turns the batch's H-table
        # reads into one clustered run per (key, table).  Only the read
        # plan is sorted — application below stays in day order.
        inserts, closes = self._worst_case(batch)
        if self.segments.freeze_clearance(inserts, closes):
            _CLEARED.inc()
            checks = self.segments.suspend_freeze_checks()
            # No freeze can occur mid-batch, so eagerly warmed slots are
            # guaranteed to survive the whole batch.
            touched = sorted(
                {
                    (entry.table, self.writers[entry.table].key_of(entry.row))
                    for entry in batch
                }
            )
            for table, key in touched:
                self.writers[table].warm(key)
        else:
            _UNCLEARED.inc()
            checks = contextlib.nullcontext()
            # A freeze may land mid-batch and invalidate every cached
            # slot; warming eagerly would scan keys whose slots die
            # before use.  Let the per-entry cache fill lazily instead.
        with checks:
            for entry in batch:
                dispatch_entry(self.writers[entry.table], entry)
                self._batch_progress += 1
        if self.durable:
            # the whole batch is applied; a commit failure must not
            # requeue (and later double-apply) its entries
            self._batch_progress = len(batch)
            self._commit_batch()
        _BATCHES.inc()
        _ENTRIES.inc(len(batch))
        _ENTRIES_PER_BATCH.observe(len(batch))
        _SECONDS.observe(perf_counter() - started)

    def _worst_case(self, batch: list) -> tuple[int, int]:
        """Upper bounds on (inserts, closes) any prefix of ``batch`` can
        perform.  Over-counting is safe — it only denies clearance and
        falls the batch back to per-entry freeze checks."""
        inserts = 0
        closes = 0
        for entry in batch:
            width = 1 + len(self.writers[entry.table].relation.attributes)
            if entry.op == "insert":
                inserts += width
            elif entry.op == "delete":
                closes += width
            else:  # update: close + reopen per changed attribute
                inserts += width - 1
                closes += width - 1
        return inserts, closes

    def _commit_batch(self) -> None:
        """Stage the sidecars and append one COMMIT frame (group commit).

        Recovery after a crash then replays whole batches: the pages,
        the catalog and the archive metadata of every completed batch,
        and nothing of a torn one.
        """
        from repro.rdb.persistence import save_catalog
        from repro.archis.persistence import stage_archive

        save_catalog(self.db, _defer_checkpoint=True)
        stage_archive(self.archis)
        self.db.pager.commit(cause="ingest")


__all__ = ["BatchArchiver", "DEFAULT_BATCH_SIZE"]
