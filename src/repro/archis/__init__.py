"""ArchIS: the paper's archival information system (core contribution)."""

from repro.archis.batch import BatchArchiver
from repro.archis.bitemporal import BitemporalArchive, BitemporalFact
from repro.archis.blobstore import CompressedArchive
from repro.archis.clustering import SegmentManager
from repro.archis.config import ArchISConfig
from repro.archis.compression import (
    CompressedBlock,
    compress_records,
    decompress_block,
)
from repro.archis.htables import TrackedRelation, create_htables
from repro.archis.maintenance import MaintenanceWorker
from repro.archis.publisher import history_rows, publish_relation
from repro.archis.system import ArchIS, PROFILES, Profile
from repro.archis.validation import Violation, check_archive
from repro.archis.xmlversions import XmlVersionArchive

__all__ = [
    "ArchIS",
    "ArchISConfig",
    "BatchArchiver",
    "BitemporalArchive",
    "BitemporalFact",
    "PROFILES",
    "Profile",
    "CompressedArchive",
    "MaintenanceWorker",
    "SegmentManager",
    "CompressedBlock",
    "compress_records",
    "decompress_block",
    "TrackedRelation",
    "create_htables",
    "history_rows",
    "publish_relation",
    "XmlVersionArchive",
    "Violation",
    "check_archive",
]
