"""Usefulness-based segment clustering (paper Section 6).

A segment's *usefulness* is ``U = N_live / N_all``.  All archived tuples
start in the live segment; when U drops below ``U_min`` the live segment is
frozen:

1. a new segment number is allocated and its interval recorded in the
   ``segment`` table;
2. every tuple of the live segment is rewritten sorted by id under the
   frozen segment number (including the still-live ones — this is the
   controlled redundancy the paper trades for clustering, Eq. 3);
3. live tuples are additionally copied into the new live segment.

The invariants of Section 6.1 hold for every tuple in a frozen segment:
``tstart <= segend`` and ``tend >= segstart``.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass

from repro.errors import ArchisError
from repro.obs.metrics import DEFAULT_RATIO_BUCKETS, get_registry
from repro.obs.tracer import get_tracer
from repro.rdb.database import Database
from repro.storage.record import encode_record, encoded_int
from repro.util.timeutil import FOREVER
from repro.archis.htables import SEGMENT_TABLE

_SEGMENTS_FROZEN = get_registry().counter("clustering.segments_frozen")
_ROWS_REWRITTEN = get_registry().counter("clustering.rows_rewritten")
_LIVE_COPIED = get_registry().counter("clustering.live_rows_copied")
_USEFULNESS_AT_FREEZE = get_registry().histogram(
    "clustering.usefulness_at_freeze", DEFAULT_RATIO_BUCKETS
)
_LIVE_SEGNO = get_registry().gauge("clustering.live_segno")
#: an inline freeze runs synchronously inside whatever archival apply
#: triggered it — its duration is exactly how long that apply (and every
#: waiter on the history lock) stalled
_FREEZE_STALL = get_registry().histogram("ingest.freeze_stall.seconds")
#: in background-maintenance mode the apply path only pays the logical
#: switch (segment-table row + live-copy); the sorted rewrite happens on
#: the maintenance worker
_SWITCH_SECONDS = get_registry().histogram("maintenance.switch.seconds")

#: recognized maintenance modes (see ArchISConfig.maintenance)
MAINTENANCE_MODES = ("inline", "background", "off")


@dataclass
class SegmentStats:
    live: int = 0
    total: int = 0

    @property
    def usefulness(self) -> float:
        return self.live / self.total if self.total else 1.0


class SegmentManager:
    """Tracks usefulness and performs the freeze operation.

    ``umin=None`` disables segmentation entirely (everything stays in
    segment 1), which is the paper's unclustered comparison point (Fig. 9).
    ``min_rows`` avoids degenerate freezes on tiny archives.
    """

    def __init__(
        self,
        db: Database,
        umin: float | None = 0.4,
        min_rows: int = 64,
        mode: str = "inline",
    ) -> None:
        if umin is not None and not 0.0 < umin < 1.0:
            raise ArchisError("U_min must be in (0, 1)")
        if mode not in MAINTENANCE_MODES:
            raise ArchisError(
                f"unknown maintenance mode {mode!r}; use "
                + ", ".join(MAINTENANCE_MODES)
            )
        self.db = db
        self.umin = umin
        self.min_rows = min_rows
        #: how freezes run: ``inline`` rewrites synchronously inside the
        #: apply, ``background`` performs the cheap logical switch and
        #: leaves the sorted rewrite to the maintenance worker, ``off``
        #: never freezes (boundaries stay where they are)
        self.mode = mode
        #: frozen segment numbers whose physical rewrite has not finished
        #: (FIFO; persisted in the archive sidecar so a reopened archive
        #: resumes where the worker left off)
        self.pending_rewrites: list[int] = []
        #: callable invoked with the frozen segno after a logical switch
        #: (set by ArchIS to wake the maintenance worker)
        self.on_freeze_request = None
        #: counts completed physical rewrites/compactions — part of
        #: :attr:`generation` so caches drop rids the rewrite relocated
        self.rewrites = 0
        self.live_segno = 1
        self.live_start = db.current_date
        #: timestamp of the last archived change; segment boundaries are
        #: drawn in *logical* change time so that log-based (batch)
        #: archival produces the same segments as trigger-based archival
        self.last_change = db.current_date
        self.stats = SegmentStats()
        self._tables: list[str] = []
        self.freeze_count = 0
        #: optional callable returning the lowest day at which a future
        #: archived change may still start (set by the transaction
        #: manager: min over active transaction days and pending
        #: update-log entries).  ``maybe_freeze`` defers while the
        #: boundary it would draw is at or above that floor, so no row
        #: can later land in a segment that does not cover its tstart.
        self.freeze_floor = None
        # >0 while a batch holding freeze clearance runs (see
        # ``suspend_freeze_checks``); ``maybe_freeze`` is a no-op then.
        self._suspended = 0

    @property
    def segmented(self) -> bool:
        return self.umin is not None

    def register_table(self, name: str) -> None:
        """Register an H-table whose rows participate in segmentation."""
        if name not in self._tables:
            self._tables.append(name)

    def is_registered(self, name: str) -> bool:
        return name in self._tables

    def registered_tables(self) -> list[str]:
        """Registered H-table names, in registration order."""
        return list(self._tables)

    @property
    def generation(self) -> tuple[int, int, int]:
        """Changes whenever segment boundaries move — or a background
        rewrite compacts a table and relocates rows (cache
        invalidation)."""
        return (self.freeze_count, self.live_segno, self.rewrites)

    # -- bookkeeping hooks called by the tracker ---------------------------------

    def note_insert(self) -> None:
        self.stats.live += 1
        self.stats.total += 1

    def note_close(self) -> None:
        """A live tuple was closed (its tend set): usefulness drops."""
        self.stats.live -= 1

    def touch(self, when: int) -> None:
        """Record the logical timestamp of an archived change."""
        if when > self.last_change:
            self.last_change = when

    def maybe_freeze(self, when: int | None = None) -> bool:
        """Freeze the live segment when usefulness fell below U_min.

        The freeze is deferred until the incoming change's timestamp has
        moved past the last archived one, so every row archived afterwards
        starts strictly after the frozen segment's period — the property
        segment-restricted queries rely on.

        In ``background`` maintenance mode only the logical switch runs
        here (same boundary, same counters, same decision point as an
        inline freeze); the sorted rewrite of the frozen segment is
        queued for the maintenance worker.  In ``off`` mode nothing ever
        freezes.
        """
        if self.umin is None or self.mode == "off":
            return False
        if self._suspended:
            return False
        if self.stats.total < self.min_rows:
            return False
        if self.stats.usefulness >= self.umin:
            return False
        if when is not None and when <= self.last_change:
            return False
        if self.freeze_floor is not None:
            floor = self.freeze_floor()
            if floor is not None and max(
                self.last_change, self.live_start
            ) >= floor:
                # an in-flight transaction (or a committed-but-unapplied
                # log entry) has a day at or below the boundary we would
                # draw; freezing now would strand its rows in a segment
                # whose period cannot cover them
                return False
        if self.mode == "background":
            frozen = self.freeze_switch()
            if self.on_freeze_request is not None:
                self.on_freeze_request(frozen)
        else:
            self.freeze()
        return True

    # -- batched-ingest clearance (one check per batch) --------------------------

    def freeze_clearance(self, inserts: int, closes: int) -> bool:
        """Can a batch with at most ``inserts`` inserts and ``closes``
        closes be applied without any per-entry freeze check?

        Usefulness after a batch prefix with ``i`` inserts and ``c``
        closes is ``(live + i - c) / (total + i)``; for a fixed ``c``
        that is monotonically increasing in ``i`` (every insert is
        live), so the worst prefix is all-closes-first:
        ``(live - closes) / total``.  When even that floor stays at or
        above U_min — or no prefix can reach ``min_rows`` — no freeze
        can trigger anywhere inside the batch and the per-entry
        ``maybe_freeze`` calls may be suspended without changing a
        single archived byte.  Returns ``False`` (no clearance) in any
        case it cannot prove.
        """
        if self.umin is None or self.mode == "off":
            return True
        if self.stats.total + inserts < self.min_rows:
            return True
        if self.stats.total == 0:
            return False
        return (self.stats.live - closes) / self.stats.total >= self.umin

    @contextlib.contextmanager
    def suspend_freeze_checks(self):
        """Make ``maybe_freeze`` a no-op for the scope.

        Only valid under a proven :meth:`freeze_clearance`; the batch
        archiver holds this for one batch so the usefulness check runs
        once per batch instead of once per entry.
        """
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    # -- the freeze operation (paper Section 6.1 steps 1-4) -------------------------

    def freeze(self) -> None:
        if not self.segmented:
            raise ArchisError("cannot freeze: segmentation is disabled")
        boundary = max(self.last_change, self.live_start)
        frozen_segno = self.live_segno
        usefulness = self.stats.usefulness
        started = time.perf_counter()
        with get_tracer().span(
            "archis.freeze", segno=frozen_segno, usefulness=usefulness
        ) as span:
            self.db.table(SEGMENT_TABLE).insert(
                (frozen_segno, self.live_start, boundary)
            )
            new_live = frozen_segno + 1
            live_count = 0
            rewritten = 0
            for table_name in self._tables:
                live, frozen = self._rewrite_table(
                    table_name, frozen_segno, new_live
                )
                live_count += live
                rewritten += frozen
            self.live_segno = new_live
            self.live_start = boundary + 1
            self.stats = SegmentStats(live=live_count, total=live_count)
            self.freeze_count += 1
            span.set("rows_rewritten", rewritten)
            span.set("live_rows_copied", live_count)
        _FREEZE_STALL.observe(time.perf_counter() - started)
        _SEGMENTS_FROZEN.inc()
        _ROWS_REWRITTEN.inc(rewritten)
        _LIVE_COPIED.inc(live_count)
        _USEFULNESS_AT_FREEZE.observe(usefulness)
        _LIVE_SEGNO.set(new_live)

    def _rewrite_table(
        self, table_name: str, frozen_segno: int, new_live: int
    ) -> tuple[int, int]:
        """Rewrite one H-table's live segment.

        Returns ``(live_copied, frozen_rewritten)`` tuple counts.
        """
        table = self.db.table(table_name)
        live_rows = []
        frozen_rows = []
        victims = []
        seg_pos = table.schema.position("segno")
        id_pos = table.schema.position("id")
        tend_pos = table.schema.position("tend")
        for rid, row in table.scan():
            if row[seg_pos] == frozen_segno:
                victims.append(rid)
                frozen_rows.append(row)
                if row[tend_pos] == FOREVER:
                    live_rows.append(row)
        for rid in victims:
            table.delete_rid(rid)
        # archived copy, clustered (sorted) by id
        frozen_rows.sort(key=lambda r: r[id_pos])
        for row in frozen_rows:
            table.insert(row)
        # fresh live segment holding only current tuples
        for row in live_rows:
            fresh = list(row)
            fresh[seg_pos] = new_live
            table.insert(tuple(fresh))
        table.compact()
        return len(live_rows), len(frozen_rows)

    # -- background maintenance: logical switch now, sorted rewrite later ---------

    def freeze_switch(self) -> int:
        """The cheap half of a freeze: draw the boundary, copy live rows.

        Runs synchronously at the exact decision point an inline
        :meth:`freeze` would — same segment-table row, same boundary,
        same counter/stat updates — so segment boundaries and the
        ``clustering.*`` counters are identical across modes.  What it
        *defers* is the physically expensive part: rows of the frozen
        segment stay where they are (unsorted) until the maintenance
        worker relocates them with :meth:`rewrite_step`.  Live tuples
        must still be copied here — the tracker closes versions through
        the live segment, so the new live segment has to exist before
        the next archived change.

        Returns the frozen segment number, now queued in
        :attr:`pending_rewrites`.
        """
        if not self.segmented:
            raise ArchisError("cannot freeze: segmentation is disabled")
        boundary = max(self.last_change, self.live_start)
        frozen_segno = self.live_segno
        usefulness = self.stats.usefulness
        started = time.perf_counter()
        with get_tracer().span(
            "archis.freeze_switch", segno=frozen_segno, usefulness=usefulness
        ) as span:
            self.db.table(SEGMENT_TABLE).insert(
                (frozen_segno, self.live_start, boundary)
            )
            new_live = frozen_segno + 1
            live_count = 0
            for table_name in self._tables:
                live_count += self._copy_live(
                    table_name, frozen_segno, new_live
                )
            self.live_segno = new_live
            self.live_start = boundary + 1
            self.stats = SegmentStats(live=live_count, total=live_count)
            self.freeze_count += 1
            self.pending_rewrites.append(frozen_segno)
            span.set("live_rows_copied", live_count)
        _SWITCH_SECONDS.observe(time.perf_counter() - started)
        _SEGMENTS_FROZEN.inc()
        _LIVE_COPIED.inc(live_count)
        _USEFULNESS_AT_FREEZE.observe(usefulness)
        _LIVE_SEGNO.set(new_live)
        return frozen_segno

    def _copy_live(
        self, table_name: str, frozen_segno: int, new_live: int
    ) -> int:
        """Copy the frozen segment's live tuples into the new live segment.

        Reads only the frozen segment via the ``(segno, id)`` index, so
        the switch costs O(frozen segment), not O(heap) — the heap holds
        every older segment too, and a full scan here would put an
        ever-growing stall back on the ingest path the background mode
        exists to protect.  Dead versions (the segment's majority once
        usefulness fell below U_min) are skipped before decoding via a
        byte-level prefilter on the ``tend = FOREVER`` encoding.
        """
        table = self.db.table(table_name)
        seg_pos = table.schema.position("segno")
        tend_pos = table.schema.position("tend")
        old_suffix = encoded_int(frozen_segno)
        new_suffix = encoded_int(new_live)
        copies: list[tuple] = []
        payloads: list[bytes] = []
        for payload, row in table.index_records_containing(
            f"{table_name}_ix_id",
            (frozen_segno,),
            (frozen_segno + 1,),
            encoded_int(FOREVER),
            high_inclusive=False,
        ):
            if row[tend_pos] != FOREVER:
                continue
            fresh = list(row)
            fresh[seg_pos] = new_live
            fresh = tuple(fresh)
            copies.append(fresh)
            if payload.endswith(old_suffix):
                # segno is the trailing int field: splice the stored
                # bytes instead of re-encoding the whole row
                payloads.append(payload[: -len(old_suffix)] + new_suffix)
            else:  # pragma: no cover - defensive, schema always trails segno
                payloads.append(encode_record(fresh))
        # rows came straight out of this table's heap: already coerced
        table.insert_many(copies, validated=True, payloads=payloads)
        return len(copies)

    def rewrite_step(
        self,
        table_name: str,
        segno: int,
        cursor: int | None,
        budget: int,
    ) -> tuple[int | None, int, bool]:
        """Relocate one bounded slice of a frozen segment, id-sorted.

        Moves rows of ``segno`` with id **after** ``cursor`` to the heap
        tail in id order (delete + re-insert), at most ``budget`` rows
        per step — but never splitting an id's version group, so a step
        boundary is always a clean id boundary and a resumed (or
        crash-recovered) rewrite can restart from any completed step.
        The move is content-neutral: only rids change.

        Returns ``(new_cursor, rows_moved, done)``; ``done`` means the
        segment has no rows past ``new_cursor`` in this table.
        """
        table = self.db.table(table_name)
        id_pos = table.schema.position("id")
        low = (segno,) if cursor is None else (segno, cursor)
        pairs: list[tuple[object, tuple]] = []
        done = True
        for rid, row in table.index_scan(
            f"{table_name}_ix_id",
            low=low,
            high=(segno + 1,),
            low_inclusive=cursor is None,
            high_inclusive=False,
        ):
            if (
                len(pairs) >= budget
                and row[id_pos] != pairs[-1][1][id_pos]
            ):
                done = False
                break
            pairs.append((rid, row))
        if not pairs:
            return cursor, 0, True
        for rid, row in pairs:
            table.delete_rid(rid)
            table.insert(row)
        _ROWS_REWRITTEN.inc(len(pairs))
        return pairs[-1][1][id_pos], len(pairs), done

    def finish_rewrite(self, segno: int) -> None:
        """Close out a background rewrite: reclaim space, invalidate caches.

        The moved rows left holes behind, clustered in pages that now
        hold nothing live, so releasing empty pages reclaims the space
        without touching a rid — a full :meth:`~repro.rdb.table.Table.compact`
        here would rebuild every index under the history write lock and
        stall concurrent appliers for O(heap), exactly the tail the
        background mode exists to remove.  :attr:`rewrites` bumps so
        rid-carrying caches keyed on :attr:`generation` drop the
        positions the step moves relocated.
        """
        for table_name in self._tables:
            self.db.table(table_name).prune_empty_pages()
        if segno in self.pending_rewrites:
            self.pending_rewrites.remove(segno)
        self.rewrites += 1

    # -- lookups used by the segment-restriction optimizer rule
    # (repro.plan.rules.restrict_segments, paper Sections 6.3/6.4) -------------

    def segment_for(self, date: int) -> int:
        """The segment whose period covers ``date`` (live when beyond all)."""
        for segno, segstart, segend in self.db.table(SEGMENT_TABLE).rows():
            if segstart <= date <= segend:
                return segno
        return self.live_segno

    def segments_overlapping(self, start: int, end: int) -> list[int]:
        """Segments whose periods overlap ``[start, end]``, live included."""
        out = []
        for segno, segstart, segend in self.db.table(SEGMENT_TABLE).rows():
            if segstart <= end and start <= segend:
                out.append(segno)
        if end >= self.live_start:
            out.append(self.live_segno)
        return out

    def archived_segments(self) -> list[tuple[int, int, int]]:
        """(segno, segstart, segend) for every frozen segment."""
        return sorted(self.db.table(SEGMENT_TABLE).rows())

    def segment_count(self) -> int:
        """Total segments including the live one."""
        return len(self.archived_segments()) + 1
