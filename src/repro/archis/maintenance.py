"""Background segment maintenance: the deferred half of a freeze.

In ``background`` mode :meth:`SegmentManager.maybe_freeze` performs only
the cheap *logical switch* (segment-table row + live-copy) on the apply
path and queues the frozen segment here.  The worker then performs the
*physical rewrite* — relocating the frozen segment's rows to the heap
tail in id order — in bounded steps, each taken under the shared
:class:`~repro.txn.locks.HistoryLock` write side so snapshot readers and
appliers never observe a half-moved row.

Crash story (file-backed, WAL durability): every step that moved rows
stages the catalog and archive sidecars and commits them with its page
writes in one WAL transaction, so a crash leaves the archive at a clean
step boundary.  The rewrite itself is *content-neutral* (a move changes
rids, never rows), and :attr:`SegmentManager.pending_rewrites` rides in
the archive sidecar, so a reopened archive simply resumes the rewrite
from the start of the segment — re-moving already-moved rows is
harmless.

The worker thread is lazy (started on the first request), daemonic, and
drained by :meth:`MaintenanceWorker.drain` wherever the archive needs a
settled physical layout (save, compression, equivalence checks).
"""

from __future__ import annotations

import threading
import time

from repro.errors import ArchisError
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.storage.crashpoints import fire

_ENQUEUED = get_registry().counter("maintenance.freezes_enqueued")
_COMPLETED = get_registry().counter("maintenance.freezes_completed")
_STEPS = get_registry().counter("maintenance.steps")
_ROWS_MOVED = get_registry().counter("maintenance.rows_moved")
_STEP_SECONDS = get_registry().histogram("maintenance.step.seconds")
#: process-wide (one background archive per process in practice)
_QUEUE_DEPTH = get_registry().gauge("maintenance.queue_depth")


class MaintenanceWorker:
    """Owns the physical rewrites queued by background-mode freezes.

    The queue itself is :attr:`SegmentManager.pending_rewrites` (mutated
    only under the history write lock: the switch appends, the worker's
    ``finish_rewrite`` removes) — this class adds the thread, the wakeup
    condition, bounded steps and per-step durability around it.
    """

    def __init__(self, archis, step_rows: int = 1024) -> None:
        if step_rows < 1:
            raise ArchisError("maintenance step budget must be >= 1")
        self.archis = archis
        self.segments = archis.segments
        self.history = archis.history_lock
        self.step_rows = step_rows
        self._cond = threading.Condition()
        self._thread: threading.Thread | None = None
        self._busy = False
        self._stopping = False
        self._error: BaseException | None = None

    # -- front-end (apply path / ArchIS) -----------------------------------

    def request(self, segno: int) -> None:
        """A logical switch queued ``segno``; wake the worker.

        Called under the history write lock (it is the segment manager's
        ``on_freeze_request``); the condition is only held to notify, so
        the lock order here (history → cond) never inverts against the
        worker, which never blocks on the history lock while holding the
        condition.
        """
        _ENQUEUED.inc()
        with self._cond:
            _QUEUE_DEPTH.set(len(self.segments.pending_rewrites))
            self._ensure_thread()
            self._cond.notify_all()

    def kick(self) -> None:
        """Wake the worker if rewrites are pending (after a reopen)."""
        with self._cond:
            if self.segments.pending_rewrites and not self._stopping:
                self._ensure_thread()
                _QUEUE_DEPTH.set(len(self.segments.pending_rewrites))
                self._cond.notify_all()

    def drain(self, timeout: float = 60.0) -> None:
        """Block until every queued rewrite has finished.

        Re-raises an error the worker recorded (clearing it first, so
        the worker can be resumed with another :meth:`drain` or
        :meth:`kick` once the cause is fixed).  Must not be called while
        holding the history lock — the worker needs its write side to
        make progress.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            if self.segments.pending_rewrites and not self._stopping:
                self._ensure_thread()
                self._cond.notify_all()
            while True:
                if self._error is not None:
                    error = self._error
                    self._error = None
                    self._cond.notify_all()
                    raise error
                if self._stopping:
                    return
                if not self.segments.pending_rewrites and not self._busy:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ArchisError(
                        "maintenance drain timed out after "
                        f"{timeout:.0f}s ({self.backlog()} pending)"
                    )
                self._cond.wait(remaining)

    def stop(self) -> None:
        """Stop the worker (between steps) and join the thread."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def backlog(self) -> int:
        return len(self.segments.pending_rewrites)

    def stats(self) -> dict:
        with self._cond:
            return {
                "pending": list(self.segments.pending_rewrites),
                "busy": self._busy,
                "started": self._thread is not None,
                "error": str(self._error) if self._error else None,
            }

    # -- the worker --------------------------------------------------------

    def _ensure_thread(self) -> None:
        # caller holds self._cond
        if self._thread is None and not self._stopping:
            self._thread = threading.Thread(
                target=self._run, name="repro-maintenance", daemon=True
            )
            self._thread.start()

    def _ready(self) -> bool:
        return bool(self.segments.pending_rewrites) and self._error is None

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._stopping and not self._ready():
                    self._cond.wait()
                if self._stopping:
                    return
                # only the worker removes from the queue, so the head
                # peeked here stays valid outside the condition
                segno = self.segments.pending_rewrites[0]
                self._busy = True
            try:
                self._process(segno)
            except BaseException as exc:  # noqa: BLE001 - recorded, re-raised by drain
                with self._cond:
                    self._error = exc
                    self._busy = False
                    self._cond.notify_all()
            else:
                with self._cond:
                    self._busy = False
                    _QUEUE_DEPTH.set(len(self.segments.pending_rewrites))
                    self._cond.notify_all()

    def _process(self, segno: int) -> None:
        """Rewrite one frozen segment in bounded, individually-durable steps."""
        with get_tracer().span(
            "maintenance.rewrite", segno=segno, step_rows=self.step_rows
        ) as span:
            total_moved = 0
            steps = 0
            for table_name in self.segments.registered_tables():
                cursor = None
                done = False
                while not done:
                    if self._stopping:
                        return
                    started = time.perf_counter()
                    with self.history.write():
                        cursor, moved, done = self.segments.rewrite_step(
                            table_name, segno, cursor, self.step_rows
                        )
                        if moved:
                            self._commit_step()
                    if moved:
                        _STEPS.inc()
                        _ROWS_MOVED.inc(moved)
                        _STEP_SECONDS.observe(
                            time.perf_counter() - started
                        )
                        total_moved += moved
                        steps += 1
            if self._stopping:
                return
            # compaction + dequeue is itself one crash-atomic step: after
            # it commits, the segment never re-enters the queue
            started = time.perf_counter()
            with self.history.write():
                self.segments.finish_rewrite(segno)
                self._commit_step()
            _STEPS.inc()
            _STEP_SECONDS.observe(time.perf_counter() - started)
            span.set("rows_moved", total_moved)
            span.set("steps", steps + 1)
        _COMPLETED.inc()

    def _commit_step(self) -> None:
        """Make one step durable (file-backed WAL archives only).

        Runs under the history write lock: the sidecar staging and the
        tag-0 COMMIT frame must not interleave with another tag-0 stager
        (the batch archiver's durable ingest commits under the same
        lock).
        """
        db = self.archis.db
        if db.pager.path is None or db.durability != "wal":
            return
        from repro.archis.persistence import stage_archive
        from repro.rdb.persistence import save_catalog

        save_catalog(db, _defer_checkpoint=True)
        stage_archive(self.archis)
        fire("maintenance.step.commit")
        db.pager.commit(cause="maintenance")
