"""Registered table functions that abstract H-table storage.

Two access paths the translator uses as FROM sources:

- ``history_<table>()`` — the deduplicated full history (heap rows plus
  decompressed BLOB rows, ``(id, tstart)``-deduped keeping the closed
  version).  Needed in segmented mode because frozen segments carry
  redundant copies of tuples live at freeze time (paper Section 6.2).
- ``seg_<table>(lo, hi)`` — rows of segments ``lo..hi``: an index range
  scan over the heap when uncompressed, or block-range decompression plus
  the live heap when compressed (paper Section 8.2's uncompression table
  functions).

Both yield rows in the table's column order (``id, [value], tstart, tend,
segno``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from repro.archis.system import ArchIS


def register_history_functions(archis: "ArchIS", table_name: str) -> None:
    """Register ``history_<t>`` and ``seg_<t>`` for one H-table."""
    db = archis.db

    def all_rows() -> Iterator[tuple]:
        table = db.table(table_name)
        yield from table.rows()
        info = archis.archive.compressed_tables.get(table_name)
        if info is not None:
            yield from archis.archive.read_rows(table_name)

    def history_fn() -> Iterator[tuple]:
        table = db.table(table_name)
        id_pos = table.schema.position("id")
        tstart_pos = table.schema.position("tstart")
        tend_pos = table.schema.position("tend")
        best: dict[tuple, tuple] = {}
        for row in all_rows():
            key = (row[id_pos], row[tstart_pos])
            kept = best.get(key)
            if kept is None or row[tend_pos] < kept[tend_pos]:
                best[key] = row
        yield from sorted(
            best.values(), key=lambda r: (r[id_pos], r[tstart_pos])
        )

    def seg_fn(lo: int, hi: int) -> Iterator[tuple]:
        table = db.table(table_name)
        seg_pos = table.schema.position("segno")
        info = archis.archive.compressed_tables.get(table_name)
        if info is not None:
            frozen = [
                s for s in range(lo, hi + 1)
                if s != archis.segments.live_segno
            ]
            if frozen:
                for row in archis.archive.read_rows(table_name, frozen):
                    if lo <= row[seg_pos] <= hi:
                        yield row
            if lo <= archis.segments.live_segno <= hi:
                yield from table.rows()
            return
        index = table.find_index(("segno",))
        if index is not None:
            for _, row in table.index_scan(index.name, (lo,), (hi + 1,),
                                           high_inclusive=False):
                yield row
            return
        for row in table.rows():
            if lo <= row[seg_pos] <= hi:
                yield row

    def slice_fn(lo: int, hi: int) -> Iterator[tuple]:
        """Deduplicated rows of segments ``lo..hi`` for slicing queries.

        Frozen segments carry forward copies of tuples live at freeze time
        (Section 6.1 step 3), so a window spanning several segments would
        count those versions once per segment.  Each version is kept only
        in its *last* copy within the range — the copy whose ``tend``
        closed inside its segment, or any copy in the final segment —
        which also carries the version's true end timestamp.
        """
        table = db.table(table_name)
        seg_pos = table.schema.position("segno")
        tend_pos = table.schema.position("tend")
        segend = {
            segno: end
            for segno, _, end in archis.segments.archived_segments()
        }
        last = hi
        for row in seg_fn(lo, hi):
            segno = row[seg_pos]
            if segno == last or row[tend_pos] <= segend.get(segno, -1):
                yield row

    db.register_table_function(f"history_{table_name}", history_fn)
    db.register_table_function(f"seg_{table_name}", seg_fn)
    db.register_table_function(f"slice_{table_name}", slice_fn)
