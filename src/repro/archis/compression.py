"""BlockZIP: block-granularity database compression (paper Section 8.1).

Instead of compressing a segment as one stream, BlockZIP emits a sequence
of independently decompressible blocks, each targeting ``block_size``
compressed bytes (paper Algorithm 2: sample the data for a compression
factor, guess how many records fit, compress, and adjust).  Snapshot and
slicing queries then decompress only the blocks whose sid range they touch.

Records are serialized with the storage layer's record codec, length-
prefixed inside the block so decompression is self-describing.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import CompressionError
from repro.obs.metrics import (
    DEFAULT_RATIO_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    get_registry,
)
from repro.storage.record import decode_record, encode_record

_LEN = struct.Struct("<I")

_BYTES_IN = get_registry().counter("blockzip.bytes_in")
_BYTES_OUT = get_registry().counter("blockzip.bytes_out")
_BLOCKS = get_registry().counter("blockzip.blocks")
_BLOCKS_DECOMPRESSED = get_registry().counter("blockzip.blocks_decompressed")
_BLOCK_BYTES = get_registry().histogram(
    "blockzip.block_bytes", DEFAULT_SIZE_BUCKETS
)
_RATIO = get_registry().histogram(
    "blockzip.compression_ratio", DEFAULT_RATIO_BUCKETS
)

#: The paper uses 4000-byte blocks for its experiments (Section 8.2).
DEFAULT_BLOCK_SIZE = 4000


@dataclass(frozen=True)
class CompressedBlock:
    """One BlockZIP output block.

    ``start_sid``/``end_sid`` are the ordinal positions (0-based) of the
    first and last record inside the whole input stream; the blob table
    stores them so a reader can binary-search for the blocks it needs.
    """

    data: bytes
    start_sid: int
    end_sid: int

    @property
    def record_count(self) -> int:
        return self.end_sid - self.start_sid + 1


def _pack_records(records: Sequence[bytes]) -> bytes:
    return b"".join(_LEN.pack(len(r)) + r for r in records)


def compress_records(
    rows: Iterable[tuple],
    block_size: int = DEFAULT_BLOCK_SIZE,
    level: int = 6,
) -> list[CompressedBlock]:
    """BlockZIP-compress a row stream into ~block_size compressed blocks.

    Follows Algorithm 2's adaptive shape: start from an estimated
    records-per-block, compress, and grow/shrink the estimate from the
    observed compressed size.  Oversized blocks are split by bisection so
    no block exceeds ``2 * block_size`` compressed bytes.
    """
    encoded = [encode_record(row) for row in rows]
    if not encoded:
        return []
    # Sample for an initial compression factor f0 (Algorithm 2 line 3).
    sample = _pack_records(encoded[: min(len(encoded), 64)])
    compressed_sample = zlib.compress(sample, level)
    factor = max(len(sample) / max(len(compressed_sample), 1), 1.0)
    avg_record = max(len(sample) / min(len(encoded), 64), 1.0)
    per_block = max(int(block_size * factor / avg_record), 1)

    blocks: list[CompressedBlock] = []
    position = 0
    while position < len(encoded):
        count = min(per_block, len(encoded) - position)
        chunk = encoded[position : position + count]
        data = zlib.compress(_pack_records(chunk), level)
        # Adjust the estimate from what we observed (lines 10-21).
        if len(data) < block_size and position + count < len(encoded):
            gap = block_size - len(data)
            extra = int(gap * factor / avg_record)
            if extra >= 1:
                count = min(count + extra, len(encoded) - position)
                chunk = encoded[position : position + count]
                data = zlib.compress(_pack_records(chunk), level)
        while len(data) > 2 * block_size and count > 1:
            count = max(count // 2, 1)
            chunk = encoded[position : position + count]
            data = zlib.compress(_pack_records(chunk), level)
        blocks.append(
            CompressedBlock(data, position, position + count - 1)
        )
        observed = len(data) / max(count, 1)
        per_block = max(int(block_size / max(observed, 1.0)), 1)
        position += count
    bytes_in = sum(len(e) for e in encoded)
    bytes_out = sum(len(b.data) for b in blocks)
    _BYTES_IN.inc(bytes_in)
    _BYTES_OUT.inc(bytes_out)
    _BLOCKS.inc(len(blocks))
    for block in blocks:
        _BLOCK_BYTES.observe(len(block.data))
    if bytes_in:
        _RATIO.observe(bytes_out / bytes_in)
    return blocks


def decompress_block(block: CompressedBlock | bytes) -> list[tuple]:
    """Decompress one block back into row tuples."""
    data = block.data if isinstance(block, CompressedBlock) else block
    try:
        raw = zlib.decompress(data)
    except zlib.error as exc:
        raise CompressionError(f"corrupt BlockZIP block: {exc}") from exc
    _BLOCKS_DECOMPRESSED.inc()
    rows = []
    offset = 0
    while offset < len(raw):
        (length,) = _LEN.unpack_from(raw, offset)
        offset += _LEN.size
        rows.append(decode_record(raw[offset : offset + length]))
        offset += length
    return rows


def iter_all_rows(blocks: Iterable[CompressedBlock | bytes]) -> Iterator[tuple]:
    """Decompress a sequence of blocks into a row stream."""
    for block in blocks:
        yield from decompress_block(block)


def compression_ratio(blocks: Sequence[CompressedBlock], raw_bytes: int) -> float:
    """Compressed size over raw size."""
    compressed = sum(len(b.data) for b in blocks)
    return compressed / raw_bytes if raw_bytes else 0.0
