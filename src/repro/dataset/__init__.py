"""Evaluation workloads: the synthetic temporal employee dataset."""

from repro.dataset.employees import (
    DEPARTMENTS,
    TITLES,
    EmployeeHistoryGenerator,
    Event,
)
from repro.dataset.workload import DailyUpdateBatch, single_salary_update

__all__ = [
    "DEPARTMENTS",
    "TITLES",
    "EmployeeHistoryGenerator",
    "Event",
    "DailyUpdateBatch",
    "single_salary_update",
]
