"""Synthetic temporal employee dataset (the paper's evaluation workload).

The paper uses the TimeCenter employee data set: "the history of employees
over 17 years, [simulating] the increases of salaries, changes of titles,
and changes of departments".  That data is not redistributable, so this
generator produces a deterministic synthetic equivalent with the same
schema and update behaviour:

- an initial cohort hired at the start date, plus a steady hire rate;
- annual salary raises per employee (with jitter);
- occasional title promotions and department moves;
- a small attrition rate (departures close an employee's history).

``scale`` multiplies the employee population, which is how the paper's
1x vs 7x scalability experiment (Fig. 10) is reproduced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.rdb.database import Database
from repro.rdb.types import ColumnType
from repro.util.timeutil import format_date, parse_date

TITLES = [
    "Assistant Engineer",
    "Engineer",
    "Sr Engineer",
    "TechLeader",
    "Manager",
    "Sr Manager",
]

DEPARTMENTS = [f"d{n:03d}" for n in range(1, 10)]


@dataclass(frozen=True)
class Event:
    """One change to the current employee table, in transaction order."""

    date: int  # days since epoch
    op: str  # "hire" | "raise" | "title" | "move" | "leave"
    employee_id: int
    payload: dict

    @property
    def date_str(self) -> str:
        return format_date(self.date)


class EmployeeHistoryGenerator:
    """Deterministic event stream for an evolving employee table."""

    def __init__(
        self,
        employees: int = 100,
        years: int = 17,
        scale: int = 1,
        seed: int = 20060403,
        start: str = "1985-01-01",
        hire_rate: float = 0.08,
        leave_rate: float = 0.02,
        promote_rate: float = 0.15,
        move_rate: float = 0.10,
    ) -> None:
        self.population = employees * scale
        self.years = years
        self.seed = seed
        self.start = parse_date(start)
        self.hire_rate = hire_rate
        self.leave_rate = leave_rate
        self.promote_rate = promote_rate
        self.move_rate = move_rate

    # -- the event stream -----------------------------------------------------

    def events(self) -> Iterator[Event]:
        rng = random.Random(self.seed)
        next_id = 100001
        active: dict[int, dict] = {}

        def hire(date: int) -> Event:
            nonlocal next_id
            employee_id = next_id
            next_id += 1
            state = {
                "name": f"emp{employee_id}",
                "salary": rng.randrange(30000, 70000, 500),
                "title": rng.choice(TITLES[:3]),
                "deptno": rng.choice(DEPARTMENTS),
            }
            active[employee_id] = state
            return Event(date, "hire", employee_id, dict(state))

        # initial cohort
        for _ in range(self.population):
            yield hire(self.start)

        # monthly event loop over the history period
        months = self.years * 12
        for month in range(1, months + 1):
            date = self.start + month * 30
            # raises: each employee gets ~one raise a year
            for employee_id, state in list(active.items()):
                if rng.random() < 1.0 / 12.0:
                    state["salary"] = int(state["salary"] * rng.uniform(1.02, 1.09))
                    yield Event(
                        date, "raise", employee_id, {"salary": state["salary"]}
                    )
                if rng.random() < self.promote_rate / 12.0:
                    current = TITLES.index(state["title"])
                    if current + 1 < len(TITLES):
                        state["title"] = TITLES[current + 1]
                        yield Event(
                            date, "title", employee_id, {"title": state["title"]}
                        )
                if rng.random() < self.move_rate / 12.0:
                    choices = [d for d in DEPARTMENTS if d != state["deptno"]]
                    state["deptno"] = rng.choice(choices)
                    yield Event(
                        date, "move", employee_id, {"deptno": state["deptno"]}
                    )
                if rng.random() < self.leave_rate / 12.0:
                    del active[employee_id]
                    yield Event(date, "leave", employee_id, {})
            # replacement hires keep the population roughly stable
            hires = 0
            while rng.random() < self.hire_rate and hires < 5:
                yield hire(date)
                hires += 1

    # -- application to a current database -----------------------------------------

    @staticmethod
    def create_current_table(db: Database, name: str = "employee"):
        return db.create_table(
            name,
            [
                ("id", ColumnType.INT),
                ("name", ColumnType.VARCHAR),
                ("salary", ColumnType.INT),
                ("title", ColumnType.VARCHAR),
                ("deptno", ColumnType.VARCHAR),
            ],
            primary_key=("id",),
        )

    def apply_to(self, db: Database, table_name: str = "employee") -> int:
        """Replay the event stream as DML against a current table.

        Advances the database clock along the way so transaction timestamps
        land on the event dates.  Returns the number of events applied.
        """
        table = db.table(table_name)
        count = 0
        for event in self.events():
            if db.current_date < event.date:
                db.set_date(event.date)
            if event.op == "hire":
                table.insert(
                    (
                        event.employee_id,
                        event.payload["name"],
                        event.payload["salary"],
                        event.payload["title"],
                        event.payload["deptno"],
                    )
                )
            elif event.op == "leave":
                table.delete_where(
                    lambda r: r["id"] == event.employee_id
                )
            else:
                table.update_where(
                    lambda r: r["id"] == event.employee_id, event.payload
                )
            count += 1
        return count

    # -- helpers the benchmarks use ---------------------------------------------------

    def known_employee_id(self) -> int:
        """An id guaranteed to exist from the initial cohort."""
        return 100001

    def mid_history_date(self) -> str:
        """A date halfway through the generated history."""
        return format_date(self.start + (self.years * 365) // 2)

    def late_history_date(self) -> str:
        return format_date(self.start + (self.years * 365 * 3) // 4)

    def end_date(self) -> str:
        return format_date(self.start + self.years * 365 + 30)
