"""Update workloads for the Section 8.4 update-performance experiments."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.rdb.database import Database


@dataclass
class DailyUpdateBatch:
    """A simulated daily update: a mix of raises, moves and hires.

    The paper measures "a simulated daily update" against both systems;
    this class applies a deterministic batch to the current table.
    """

    raises: int = 20
    moves: int = 5
    hires: int = 2
    seed: int = 7

    def apply(self, db: Database, table_name: str = "employee") -> int:
        rng = random.Random(self.seed + db.current_date)
        table = db.table(table_name)
        rows = list(table.rows())
        if not rows:
            return 0
        applied = 0
        targets = rng.sample(rows, min(self.raises, len(rows)))
        for row in targets:
            table.update_where(
                lambda r, i=row[0]: r["id"] == i,
                {"salary": int(row[2] * 1.05)},
            )
            applied += 1
        targets = rng.sample(rows, min(self.moves, len(rows)))
        for row in targets:
            table.update_where(
                lambda r, i=row[0]: r["id"] == i,
                {"deptno": f"d{rng.randrange(1, 10):03d}"},
            )
            applied += 1
        max_id = max(r[0] for r in rows)
        for offset in range(self.hires):
            table.insert(
                (
                    max_id + 1 + offset,
                    f"emp{max_id + 1 + offset}",
                    rng.randrange(30000, 70000, 500),
                    "Engineer",
                    f"d{rng.randrange(1, 10):03d}",
                )
            )
            applied += 1
        return applied


def single_salary_update(
    db: Database, employee_id: int, factor: float = 1.10,
    table_name: str = "employee",
) -> None:
    """The paper's single-update example: raise one salary by 10%."""
    table = db.table(table_name)
    rid = table.lookup_pk((employee_id,))
    if rid is None:
        raise ValueError(f"no current employee {employee_id}")
    row = table.read(rid)
    salary_pos = table.schema.position("salary")
    table.update_where(
        lambda r: r["id"] == employee_id,
        {"salary": int(row[salary_pos] * factor)},
    )
