"""Shared utilities: day-granularity dates and closed temporal intervals."""

from repro.util.intervals import (
    Interval,
    coalesce,
    coalesce_valued,
    restructure,
    sweep_aggregate,
)
from repro.util.timeutil import (
    FOREVER,
    FOREVER_STR,
    NOW_LABEL,
    format_date,
    parse_date,
)

__all__ = [
    "Interval",
    "coalesce",
    "coalesce_valued",
    "restructure",
    "sweep_aggregate",
    "FOREVER",
    "FOREVER_STR",
    "NOW_LABEL",
    "format_date",
    "parse_date",
]
