"""Day-granularity time utilities.

The paper uses dates with day granularity, closed intervals
``[tstart, tend]`` and the *end-of-time* value ``9999-12-31`` as the internal
representation of ``now`` (until-changed).  Dates are represented internally
as ``int`` days since the Unix epoch (1970-01-01): this keeps rows compact,
makes interval arithmetic trivial and sorts correctly.
"""

from __future__ import annotations

import datetime as _dt

EPOCH = _dt.date(1970, 1, 1)

#: The internal ``now`` marker (paper Section 4.3): 9999-12-31.
FOREVER_DATE = _dt.date(9999, 12, 31)
FOREVER = (FOREVER_DATE - EPOCH).days

#: String form of the end-of-time marker, as it appears in H-documents.
FOREVER_STR = "9999-12-31"

#: External label substituted by ``externalnow`` (paper Section 4.3).
NOW_LABEL = "now"


def date_to_days(value: _dt.date) -> int:
    """Convert a :class:`datetime.date` to days since the epoch."""
    return (value - EPOCH).days


def days_to_date(days: int) -> _dt.date:
    """Convert days since the epoch back to a :class:`datetime.date`."""
    return EPOCH + _dt.timedelta(days=days)


def parse_date(text: str) -> int:
    """Parse ``YYYY-MM-DD`` (or ``now``) into days since the epoch.

    ``now`` parses to :data:`FOREVER`, matching the paper's convention that
    the symbol is stored internally as the end-of-time value.
    """
    text = text.strip()
    if text == NOW_LABEL:
        return FOREVER
    year, month, day = text.split("-")
    return date_to_days(_dt.date(int(year), int(month), int(day)))


def format_date(days: int) -> str:
    """Render days since the epoch as ``YYYY-MM-DD``."""
    if days == FOREVER:
        return FOREVER_STR
    return days_to_date(days).isoformat()


def is_now(days: int) -> bool:
    """True when the value is the internal ``now`` marker."""
    return days == FOREVER


def external_date(days: int, current_date: int) -> str:
    """Render a date for end users, mapping ``now`` to the current date.

    Implements the ``rtend`` convention (paper Section 4.3): the end-of-time
    marker is replaced by the query-evaluation date.
    """
    if days == FOREVER:
        return format_date(current_date)
    return format_date(days)
