"""Closed temporal intervals and the Allen-style relations the paper uses.

ArchIS timestamps every element and tuple with an inclusive interval
``[tstart, tend]`` at day granularity.  This module is the single source of
truth for interval semantics: the XQuery temporal function library, the SQL
UDFs the translator emits, the clustering code and the publisher all call
into it, which is what guarantees the two query paths agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.util.timeutil import FOREVER, format_date, parse_date


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[start, end]`` in days since the epoch."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(
                f"interval start {self.start} after end {self.end}"
            )

    @classmethod
    def from_strings(cls, start: str, end: str) -> "Interval":
        """Build an interval from ``YYYY-MM-DD`` strings (``now`` allowed)."""
        return cls(parse_date(start), parse_date(end))

    @classmethod
    def point(cls, instant: int) -> "Interval":
        """The degenerate interval containing a single day."""
        return cls(instant, instant)

    # -- Allen-style relations (paper Section 4.2) ---------------------

    def overlaps(self, other: "Interval") -> bool:
        """True when the two closed intervals share at least one day."""
        return self.start <= other.end and other.start <= self.end

    def contains(self, other: "Interval") -> bool:
        """True when ``other`` lies entirely within this interval."""
        return self.start <= other.start and other.end <= self.end

    def contains_point(self, instant: int) -> bool:
        """True when the instant falls inside the interval."""
        return self.start <= instant <= self.end

    def precedes(self, other: "Interval") -> bool:
        """True when this interval ends strictly before ``other`` starts."""
        return self.end < other.start

    def meets(self, other: "Interval") -> bool:
        """True when ``other`` starts on the day after this interval ends.

        With closed day-granularity intervals, adjacency means
        ``self.end + 1 == other.start``.
        """
        return self.end + 1 == other.start

    def equals(self, other: "Interval") -> bool:
        """True when both endpoints coincide."""
        return self.start == other.start and self.end == other.end

    def intersect(self, other: "Interval") -> "Interval | None":
        """The overlapped interval, or ``None`` when disjoint.

        This is the paper's ``overlapinterval`` primitive.
        """
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def adjacent_or_overlapping(self, other: "Interval") -> bool:
        """True when the union of the two intervals is itself an interval."""
        return (
            self.overlaps(other)
            or self.meets(other)
            or other.meets(self)
        )

    def merge(self, other: "Interval") -> "Interval":
        """The covering interval; only meaningful for coalescable pairs."""
        return Interval(min(self.start, other.start), max(self.end, other.end))

    # -- derived quantities --------------------------------------------

    def timespan(self) -> int:
        """Number of days in the interval (inclusive of both ends).

        An interval ending at *now* has an open-ended span; we report the
        span up to the end-of-time marker, which callers compare rather
        than display.
        """
        return self.end - self.start + 1

    def is_current(self) -> bool:
        """True when the interval extends to ``now`` (until-changed)."""
        return self.end == FOREVER

    def __str__(self) -> str:
        return f"[{format_date(self.start)}, {format_date(self.end)}]"


def coalesce(intervals: Iterable[Interval]) -> list[Interval]:
    """Coalesce intervals whose union is connected.

    Value-equivalent attribute histories are grouped by the publisher when
    their intervals are *adjacent or overlapping* (paper Section 3).  The
    result is sorted and maximal: no two returned intervals can be merged.
    """
    ordered = sorted(intervals)
    merged: list[Interval] = []
    for interval in ordered:
        if merged and merged[-1].adjacent_or_overlapping(interval):
            merged[-1] = merged[-1].merge(interval)
        else:
            merged.append(interval)
    return merged


def coalesce_valued(
    pairs: Iterable[tuple[object, Interval]],
) -> list[tuple[object, Interval]]:
    """Coalesce ``(value, interval)`` pairs per distinct value.

    The output preserves chronological order of the coalesced periods and is
    exactly the temporally grouped representation of an attribute history.
    """
    by_value: dict[object, list[Interval]] = {}
    for value, interval in pairs:
        by_value.setdefault(value, []).append(interval)
    out: list[tuple[object, Interval]] = []
    for value, ivs in by_value.items():
        for merged in coalesce(ivs):
            out.append((value, merged))
    out.sort(key=lambda item: (item[1].start, item[1].end))
    return out


def restructure(
    left: Sequence[Interval], right: Sequence[Interval]
) -> list[Interval]:
    """All pairwise overlapped intervals between two interval lists.

    Used by QUERY 6 (paper Section 4) to find periods during which two
    attribute histories held simultaneously.  The result is coalesced.
    """
    overlaps = []
    for a in left:
        for b in right:
            shared = a.intersect(b)
            if shared is not None:
                overlaps.append(shared)
    return coalesce(overlaps)


def sweep_aggregate(
    pairs: Iterable[tuple[float, Interval]], kind: str = "avg"
) -> list[tuple[float, Interval]]:
    """Temporal aggregate over weighted intervals in a single sweep.

    Implements the paper's ``tavg`` strategy (QUERY 5): emit +value at each
    interval start and -value the day after it ends, sort the change points,
    and walk them accumulating a running sum and count.  Whenever the
    aggregate value changes, the previous constant period is closed and a
    new one opened.

    ``kind`` selects ``avg``, ``sum``, ``count``, ``min`` or ``max``.  The
    min/max variants recompute from the live multiset at each change point,
    which is still a single chronological pass.
    """
    events: list[tuple[int, int, float]] = []
    for value, interval in pairs:
        events.append((interval.start, +1, float(value)))
        if interval.end != FOREVER:
            events.append((interval.end + 1, -1, float(value)))
        else:
            events.append((FOREVER + 1, -1, float(value)))
    if not events:
        return []
    events.sort(key=lambda e: (e[0], -e[1]))

    results: list[tuple[float, Interval]] = []
    live: dict[float, int] = {}
    total = 0.0
    count = 0
    prev_point: int | None = None

    def current_value() -> float | None:
        if count == 0:
            return None
        if kind == "avg":
            return total / count
        if kind == "sum":
            return total
        if kind == "count":
            return float(count)
        if kind == "min":
            return min(v for v, n in live.items() if n > 0)
        if kind == "max":
            return max(v for v, n in live.items() if n > 0)
        raise ValueError(f"unknown temporal aggregate kind: {kind}")

    index = 0
    open_value: float | None = None
    open_start: int | None = None
    while index < len(events):
        point = events[index][0]
        while index < len(events) and events[index][0] == point:
            _, sign, value = events[index]
            if sign > 0:
                live[value] = live.get(value, 0) + 1
                total += value
                count += 1
            else:
                live[value] -= 1
                total -= value
                count -= 1
            index += 1
        new_value = current_value()
        if open_value is not None and open_start is not None:
            if new_value != open_value:
                results.append(
                    (open_value, Interval(open_start, point - 1))
                )
                open_value = None
                open_start = None
        if new_value is not None and open_value is None:
            open_value = new_value
            open_start = point
        prev_point = point
    # A trailing open period can only happen if the sweep ended with live
    # tuples, which cannot occur because every +1 has a matching -1.
    del prev_point
    # Clamp periods that ran through the end-of-time sentinel back to now.
    clamped = []
    for value, interval in results:
        end = min(interval.end, FOREVER)
        clamped.append((value, Interval(interval.start, end)))
    return clamped


def iter_change_points(intervals: Iterable[Interval]) -> Iterator[int]:
    """Yield the sorted distinct instants where any interval starts or ends."""
    points = set()
    for interval in intervals:
        points.add(interval.start)
        points.add(interval.end)
    yield from sorted(points)
