"""The unified query-result surface.

Every read entry point of the engine — ``ArchIS.xquery``,
``ArchIS.snapshot_rows``, the SQL session's SELECTs and
``server.Client.execute`` — returns a :class:`Result`: the rows, the
column names (when the source has any), the row count, and a ``stats``
/ ``trace`` handle describing how the query ran.

A :class:`Result` is *not* a list: read ``result.rows``.  (Earlier
releases shimmed the bare-list shape these entry points once returned —
iteration, ``len``, indexing, list equality — behind per-process
``DeprecationWarning``s; the shim is gone.)
:class:`repro.sql.result.ResultSet` subclasses :class:`Result` and
keeps first-class sequence behaviour — that has always been its
documented API.
"""

from __future__ import annotations


class Result:
    """Rows plus metadata, returned by every query entry point.

    ``rows``
        The result rows — tuples for relational results, XML
        :class:`~repro.xmlkit.dom.Element` nodes (or scalars) for
        XQuery forests.
    ``columns``
        Column names, or ``None`` when the source has no column
        structure (an XML forest).
    ``row_count``
        ``len(rows)``; DML results carry the affected-row count here
        with an empty ``rows`` list.
    ``stats``
        A dict of execution facts (elapsed seconds, translated SQL,
        fallback reason, server day...) — whatever the producing entry
        point knows.  Never ``None``; may be empty.
        ``server.Client.execute`` adds ``trace_id``: the distributed
        trace id the request travelled under, matching the server-side
        root span and any slow-query log entries it produced.
    ``trace``
        The root span of the query's trace when tracing captured one,
        else ``None``.
    """

    __slots__ = ("rows", "columns", "_row_count", "stats", "trace")

    def __init__(
        self,
        rows: list,
        columns: list[str] | None = None,
        row_count: int | None = None,
        stats: dict | None = None,
        trace: object | None = None,
    ) -> None:
        self.rows = rows
        self.columns = columns
        self._row_count = row_count
        self.stats = stats if stats is not None else {}
        self.trace = trace

    @property
    def row_count(self) -> int:
        if self._row_count is not None:
            return self._row_count
        return len(self.rows)

    #: alias matching DB-API naming (Client.execute callers expect it)
    @property
    def rowcount(self) -> int:
        return self.row_count

    def first(self):
        return self.rows[0] if self.rows else None

    def __eq__(self, other) -> bool:
        if isinstance(other, Result):
            return self.rows == other.rows
        return NotImplemented

    # equality compares rows, but a Result is still usable as a dict key
    # (identity hash, like the lists it replaces were not — strictly
    # more permissive than before)
    __hash__ = object.__hash__

    def __repr__(self) -> str:
        cols = f" columns={self.columns}" if self.columns else ""
        return f"<{type(self).__name__}{cols} ({self.row_count} rows)>"


__all__ = ["Result"]
