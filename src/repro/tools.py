"""Command-line interface.

Self-contained commands over a generated employee history:

    python -m repro.tools generate --employees 50 --years 17 -o hdoc.xml
    python -m repro.tools query "for \\$e in doc(\\"employees.xml\\")..."
    python -m repro.tools sql "for ..."          # show the SQL/XML only
    python -m repro.tools plan "select ..."      # show the optimizer's plans
    python -m repro.tools bench                  # quick Table 3 comparison

All commands build a deterministic dataset in memory (same seed ⇒ same
answers), so they are reproducible without a persistent store.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import (
    build_setup,
    compare_engines,
    default_queries,
    print_comparison,
)
from repro.xmlkit import serialize


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--employees", type=int, default=30)
    parser.add_argument("--years", type=int, default=10)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument(
        "--profile", choices=["db2", "atlas"], default="atlas"
    )
    parser.add_argument(
        "--umin", type=float, default=0.4,
        help="usefulness threshold; 0 disables segmentation",
    )
    parser.add_argument(
        "--compress", action="store_true",
        help="BlockZIP the frozen segments before querying",
    )
    parser.add_argument(
        "--maintenance", choices=["inline", "background", "off"],
        default="inline",
        help="how segment freezes run: synchronously on the apply path "
             "(inline), via the background maintenance worker, or never",
    )
    parser.add_argument(
        "--maintenance-step-rows", type=int, default=1024,
        help="row budget per background rewrite step",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="partition the archive's H-tables by key into this many "
             "independent stores (default: single store)",
    )
    parser.add_argument(
        "--shard-by", choices=["hash", "range"], default=None,
        help="key-partitioning scheme for --shards (default: hash)",
    )


def _build(args) -> "object":
    umin = None if args.umin == 0 else args.umin
    return build_setup(
        employees=args.employees,
        years=args.years,
        scale=args.scale,
        profile=args.profile,
        umin=umin,
        compress=args.compress,
        maintenance=args.maintenance,
        maintenance_step_rows=args.maintenance_step_rows,
        shards=args.shards,
        shard_by=args.shard_by,
    )


def cmd_generate(args) -> int:
    setup = _build(args)
    text = serialize(setup.archis.publish("employee"), indent=2)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {len(text):,} chars of H-document to {args.output} "
            f"({setup.events_applied} events archived)",
            file=sys.stderr,
        )
    return 0


def cmd_query(args) -> int:
    setup = _build(args)
    query = args.xquery
    if query == "-":
        query = sys.stdin.read()
    results = setup.archis.xquery(query, allow_fallback=not args.no_fallback)
    for item in results.rows:
        if hasattr(item, "name"):
            print(serialize(item))
        else:
            print(item)
    return 0


def cmd_sql(args) -> int:
    setup = _build(args)
    query = args.xquery
    if query == "-":
        query = sys.stdin.read()
    print(setup.archis.translate(query))
    return 0


def cmd_plan(args) -> int:
    """Show the three plan stages (logical / optimized / physical) of a
    query.  Accepts SQL directly, or an XQuery which is translated first."""
    from repro.errors import SqlPlanError
    from repro.plan.render import to_sql
    from repro.sql import parse_sql
    from repro.sql import ast as sql_ast
    from repro.sql.planner import SelectPlan

    setup = _build(args)
    query = args.query
    if query == "-":
        query = sys.stdin.read()
    if query.lstrip().lower().startswith("select"):
        sql_text = query
    else:
        translation = setup.archis.translation(query)
        sql_text = translation.sql
        print(f"sql: {sql_text}\n")
    statement = parse_sql(sql_text)
    if not isinstance(statement, sql_ast.Select):
        print("plan: only SELECT statements have plans", file=sys.stderr)
        return 1
    plan = SelectPlan(setup.archis.db, statement)
    print(plan.report().format())
    try:
        print(f"\noptimized sql: {to_sql(plan.optimized)}")
    except (SqlPlanError, TypeError) as exc:
        print(f"\noptimized sql: (not renderable: {exc})")
    return 0


def cmd_bench(args) -> int:
    setup = _build(args)
    queries = default_queries(setup.generator)
    results = compare_engines(setup, queries, repeats=args.repeats)
    print_comparison(
        f"Table 3 queries: ArchIS-{args.profile} vs native XML DB", results
    )
    return 0


def cmd_check(args) -> int:
    from repro.archis.validation import check_archive

    setup = _build(args)
    violations = check_archive(setup.archis)
    if not violations:
        print("archive is consistent (0 violations)")
        return 0
    for violation in violations:
        print(violation)
    return 1


def cmd_report(args) -> int:
    from repro.bench.fullreport import generate_report

    text = generate_report(args.employees, args.years, args.repeats)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote report to {args.output}", file=sys.stderr)
    return 0


def cmd_stats(args) -> int:
    setup = _build(args)
    archis = setup.archis
    print(f"events archived:  {setup.events_applied}")
    print(f"segments:         {archis.segments.segment_count()} "
          f"(freezes: {archis.segments.freeze_count})")
    for name, size in sorted(archis.db.storage_report().items()):
        print(f"  {name:30s} {size:>12,} bytes")
    print(f"archive total:    {archis.storage_bytes():,} bytes")
    print(f"native XML store: {setup.native.storage_bytes():,} bytes")
    return 0


def cmd_shards(args) -> int:
    """Inspect a sharded archive: layout, routing and per-shard load."""
    setup = _build(args)
    archis = setup.archis
    router = archis.router
    print(f"layout:        {router.count} shard(s), by {router.shard_by}")
    if not router.sharded:
        print("(single store; pass --shards N to partition)")
        return 0
    counts: dict[int, int] = {index: 0 for index in router.all_shards()}
    for relation in archis.relations.values():
        table = archis.db.table(relation.name)
        key_pos = table.schema.position(relation.key)
        for row in table.rows():
            counts[router.shard_for(row[key_pos])] += 1
    for index, store in enumerate(archis.shard_stores):
        rows = sum(
            len(list(store.db.table(t).rows()))
            for relation in store.relations.values()
            for t in relation.all_tables()
        )
        print(
            f"shard {index}:       {counts[index]} live key(s), "
            f"{rows} H-table row(s), "
            f"{store.segments.segment_count()} segment(s) "
            f"({store.segments.freeze_count} frozen), "
            f"backlog {len(store.db.update_log)}, "
            f"{store.storage_bytes():,} bytes"
        )
    return 0


def cmd_explain(args) -> int:
    setup = _build(args)
    query = args.xquery
    if query == "-":
        query = sys.stdin.read()
    if args.cold:
        setup.archis.reset_caches()
    result = setup.archis.explain(
        query, allow_fallback=not args.no_fallback
    )
    print(result.format())
    return 0


def cmd_obs(args) -> int:
    from repro.bench import default_queries, run_archis_cold
    from repro.obs import format_metrics, format_traces, get_registry, get_tracer

    setup = _build(args)
    tracer = get_tracer()
    tracer.enable()
    try:
        for query in default_queries(setup.generator):
            run_archis_cold(setup.archis, query)
    finally:
        tracer.disable()
    print(format_traces(tracer, limit=args.traces))
    print()
    print(format_metrics(get_registry()))
    slow = setup.archis.slow_query_log
    if len(slow):
        print("\nslow queries:")
        for entry in slow:
            print(f"  {entry.seconds * 1000:8.1f} ms  {entry.query[:70]!r}")
    return 0


def cmd_serve(args) -> int:
    """Serve a generated history over the JSON socket protocol.

    Shuts down cleanly on SIGINT *or* SIGTERM (process managers and
    containers send the latter): the listener stops accepting, in-flight
    sessions close, maintenance workers (including per-shard workers)
    drain and stop, and the span exporter is flushed — never a killed
    process with a half-written span log.
    """
    import signal
    import threading

    from repro.server import Server
    from repro.txn import TxnManager

    setup = _build(args)
    manager = TxnManager(
        setup.archis.db, setup.archis, lock_timeout=args.lock_timeout
    )
    exporter = None
    if args.span_log:
        from repro.obs import JsonlSpanExporter, get_tracer

        exporter = JsonlSpanExporter(args.span_log)
        get_tracer().enable()
        get_tracer().add_exporter(exporter)
        print(f"exporting request traces to {args.span_log}", file=sys.stderr)
    server = Server(
        manager,
        setup.archis,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_in_flight=args.max_in_flight,
        queue_size=args.queue_size,
        job_workers=args.job_workers,
        job_result_ttl=args.job_ttl,
    )
    server.start()
    host, port = server.address
    print(
        f"serving on {host}:{port} ({args.workers} workers); "
        "SIGINT/SIGTERM stops"
    )
    stop = threading.Event()

    def _request_stop(signum, frame):
        print(f"received {signal.Signals(signum).name}; stopping",
              file=sys.stderr)
        stop.set()

    previous = {
        sig: signal.signal(sig, _request_stop)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        stop.wait()
    except KeyboardInterrupt:
        # a second Ctrl-C while shutting down, or a platform where the
        # handler did not install — same clean path
        pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.stop()
        # drain queued background rewrites, then stop every maintenance
        # worker (front + shards) before the databases go away
        try:
            setup.archis.drain_maintenance()
        except Exception as exc:
            print(f"maintenance drain failed: {exc}", file=sys.stderr)
        setup.archis.close()
        if exporter is not None:
            from repro.obs import get_tracer

            get_tracer().remove_exporter(exporter)
            get_tracer().disable()
            exporter.close()
    return 0


def cmd_jobs(args) -> int:
    """Drive the async-job ops of a running server from the shell.

    ``submit`` prints the shareable job id (add ``--wait`` to block
    until it finishes and print the result); ``status`` / ``result`` /
    ``cancel`` / ``list`` do what they say.  Results print as
    tab-separated rows after a header line.
    """
    from repro.server.client import Client

    def show_status(status: dict) -> None:
        progress = status.get("progress") or {}
        line = f"{status['job']}  {status['kind']:<6s} {status['state']}"
        if "elapsed_seconds" in progress:
            line += f"  {progress['elapsed_seconds']:.3f}s"
        if "rows" in status:
            line += f"  {status['rows']} rows"
        if "message" in status:
            line += f"  {status['message']}"
        print(line)

    def show_result(result) -> None:
        if result.columns:
            print("\t".join(str(c) for c in result.columns))
        for row in result.rows:
            print("\t".join(str(cell) for cell in row))

    with Client(args.host, args.port, encoding="binary") as client:
        if args.action == "submit":
            job_id = client.submit(args.text, kind=args.kind)
            print(job_id)
            if args.wait:
                status = client.job_wait(job_id, timeout=None)
                if status["state"] != "COMPLETED":
                    show_status(status)
                    return 1
                show_result(client.job_result(job_id))
        elif args.action == "status":
            show_status(client.job_status(args.job))
        elif args.action == "result":
            show_result(client.job_result(args.job))
        elif args.action == "cancel":
            show_status(client.job_cancel(args.job))
        else:
            for status in client.job_list():
                show_status(status)
    return 0


def cmd_top(args) -> int:
    """Live monitor: poll a running server's gauges and tail latencies.

    Each refresh issues one ``health`` and one ``metrics`` request and
    prints the load gauges plus the quantile series of the key latency
    histograms.  ``--iterations`` bounds the loop (default: forever).
    """
    import time

    from repro.server.client import Client

    watch = (
        "repro_server_request_seconds_quantile",
        "repro_txn_commit_seconds_quantile",
        "repro_txn_lock_wait_seconds_quantile",
        "repro_wal_fsync_seconds_quantile",
        "repro_ingest_seconds_quantile",
        "repro_ingest_freeze_stall_seconds_quantile",
    )
    remaining = args.iterations
    while True:
        with Client(args.host, args.port) as client:
            health = client.health()
            exposition = client.metrics()
        print(
            f"== repro top @ {args.host}:{args.port} "
            f"(status: {health['status']}) =="
        )
        gauges = health["gauges"]
        for name in sorted(gauges):
            print(f"  {name:<24s} {gauges[name]:g}")
        for line in exposition.splitlines():
            if line.startswith(watch):
                print(f"  {line}")
        if remaining is not None:
            remaining -= 1
            if remaining <= 0:
                return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def cmd_recover(args) -> int:
    import os

    from repro.storage.pager import Pager

    if not os.path.exists(args.path):
        print(f"no database file at {args.path}", file=sys.stderr)
        return 1
    pager = Pager(args.path, durability="wal")  # opening runs recovery
    report = pager.recovery_report
    pager.close()
    for line in report.lines():
        print(line)
    print(f"pages:          {pager.page_count}")

    # verify what can now be loaded from the recovered state
    from repro.archis.persistence import sidecar_path as archive_sidecar
    from repro.rdb.database import Database
    from repro.rdb.persistence import sidecar_path as catalog_sidecar

    status = 0
    if os.path.exists(catalog_sidecar(args.path)):
        try:
            db = Database.open(args.path, args.buffer_pages)
            print(f"catalog:        ok ({len(db.tables())} tables)")
            db.close()
        except Exception as exc:  # surface, don't crash the report
            print(f"catalog:        FAILED ({exc})")
            status = 1
    else:
        print("catalog:        no sidecar")
    if os.path.exists(archive_sidecar(args.path)):
        from repro.archis.config import ArchISConfig
        from repro.archis.system import ArchIS
        from repro.archis.validation import check_archive

        try:
            archis = ArchIS.open(
                args.path,
                config=ArchISConfig(buffer_pages=args.buffer_pages),
            )
            violations = check_archive(archis)
            if violations:
                print(f"archive:        {len(violations)} invariant violations")
                status = 1
            else:
                print(
                    "archive:        ok "
                    f"({len(archis.relations)} tracked relations, "
                    f"0 violations)"
                )
            archis.db.close()
        except Exception as exc:
            print(f"archive:        FAILED ({exc})")
            status = 1
    else:
        print("archive:        no sidecar")
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools",
        description="ArchIS reproduction command-line interface",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="publish the H-document of a generated history"
    )
    _add_dataset_args(generate)
    generate.add_argument("-o", "--output", default="-")
    generate.set_defaults(fn=cmd_generate)

    query = commands.add_parser("query", help="run XQuery over the H-views")
    _add_dataset_args(query)
    query.add_argument("xquery", help="query text, or '-' for stdin")
    query.add_argument(
        "--no-fallback", action="store_true",
        help="fail instead of falling back to native evaluation",
    )
    query.set_defaults(fn=cmd_query)

    sql = commands.add_parser(
        "sql", help="show the SQL/XML translation of an XQuery"
    )
    _add_dataset_args(sql)
    sql.add_argument("xquery")
    sql.set_defaults(fn=cmd_sql)

    plan = commands.add_parser(
        "plan",
        help="show the logical/optimized/physical plan of a SQL or XQuery",
    )
    _add_dataset_args(plan)
    plan.add_argument("query", help="SQL or XQuery text, or '-' for stdin")
    plan.set_defaults(fn=cmd_plan)

    bench = commands.add_parser(
        "bench", help="run the Table 3 comparison at a small scale"
    )
    _add_dataset_args(bench)
    bench.add_argument("--repeats", type=int, default=2)
    bench.set_defaults(fn=cmd_bench)

    stats = commands.add_parser("stats", help="archive storage statistics")
    _add_dataset_args(stats)
    stats.set_defaults(fn=cmd_stats)

    shards = commands.add_parser(
        "shards",
        help="inspect a sharded archive: routing, per-shard load",
    )
    _add_dataset_args(shards)
    shards.set_defaults(fn=cmd_shards)

    explain = commands.add_parser(
        "explain", help="trace one XQuery: stages, SQL, physical reads"
    )
    _add_dataset_args(explain)
    explain.add_argument("xquery", help="query text, or '-' for stdin")
    explain.add_argument(
        "--no-fallback", action="store_true",
        help="fail instead of falling back to native evaluation",
    )
    explain.add_argument(
        "--cold", action="store_true",
        help="reset buffer-pool caches before the traced run",
    )
    explain.set_defaults(fn=cmd_explain)

    obs = commands.add_parser(
        "obs", help="run the bench queries traced and dump metrics/traces"
    )
    _add_dataset_args(obs)
    obs.add_argument(
        "--traces", type=int, default=10,
        help="number of trace trees to print",
    )
    obs.set_defaults(fn=cmd_obs)

    check = commands.add_parser(
        "check", help="audit archive invariants (consistency checker)"
    )
    _add_dataset_args(check)
    check.set_defaults(fn=cmd_check)

    serve = commands.add_parser(
        "serve",
        help="serve a generated history to concurrent sessions over TCP",
    )
    _add_dataset_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7171)
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument(
        "--max-in-flight", type=int, default=None,
        help="cap on concurrently executing statements (default: workers)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=16,
        help="accepted connections waiting for a worker before BUSY",
    )
    serve.add_argument("--lock-timeout", type=float, default=5.0)
    serve.add_argument(
        "--job-workers", type=int, default=2,
        help="threads for async analytics jobs (separate from --workers)",
    )
    serve.add_argument(
        "--job-ttl", type=float, default=300.0,
        help="seconds a finished job's result stays fetchable",
    )
    serve.add_argument(
        "--span-log", default=None, metavar="PATH",
        help="enable tracing and append finished request traces "
             "to PATH as JSONL",
    )
    serve.set_defaults(fn=cmd_serve)

    jobs = commands.add_parser(
        "jobs",
        help="submit, watch and fetch async analytics jobs on a "
             "running server",
    )
    jobs.add_argument("--host", default="127.0.0.1")
    jobs.add_argument("--port", type=int, default=7171)
    jobs_actions = jobs.add_subparsers(dest="action", required=True)
    jobs_submit = jobs_actions.add_parser(
        "submit", help="submit a read-only query as an async job"
    )
    jobs_submit.add_argument("text", help="the SELECT or XQuery text")
    jobs_submit.add_argument(
        "--kind", choices=("sql", "xquery"), default="sql"
    )
    jobs_submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes and print its result",
    )
    jobs_status = jobs_actions.add_parser(
        "status", help="print one job's lifecycle status"
    )
    jobs_status.add_argument("job")
    jobs_result = jobs_actions.add_parser(
        "result", help="fetch a completed job's result"
    )
    jobs_result.add_argument("job")
    jobs_cancel = jobs_actions.add_parser(
        "cancel", help="request cooperative cancellation"
    )
    jobs_cancel.add_argument("job")
    jobs_actions.add_parser("list", help="list live jobs on the server")
    jobs.set_defaults(fn=cmd_jobs)

    top = commands.add_parser(
        "top",
        help="live-monitor a running server (health gauges + latency "
             "quantiles)",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7171)
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes",
    )
    top.add_argument(
        "--iterations", type=int, default=None,
        help="stop after this many refreshes (default: run until Ctrl-C)",
    )
    top.set_defaults(fn=cmd_top)

    recover = commands.add_parser(
        "recover",
        help="replay the WAL of a saved archive and verify its sidecars",
    )
    recover.add_argument("path", help="path to the database file")
    recover.add_argument("--buffer-pages", type=int, default=1024)
    recover.set_defaults(fn=cmd_recover)

    report = commands.add_parser(
        "report", help="regenerate the full paper-vs-measured report"
    )
    report.add_argument("--employees", type=int, default=50)
    report.add_argument("--years", type=int, default=17)
    report.add_argument("--repeats", type=int, default=2)
    report.add_argument("-o", "--output", default="-")
    report.set_defaults(fn=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
