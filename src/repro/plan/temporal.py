"""Volcano operators for the sequenced temporal plan nodes.

These are the physical implementations of
:class:`~repro.plan.nodes.TemporalJoin`,
:class:`~repro.plan.nodes.Coalesce` and
:class:`~repro.plan.nodes.SequencedAggregate` — the temporal SQL surface
(``TEMPORAL JOIN``, ``SELECT NORMALIZE``, ``tavg``/``tcount``/...) runs
entirely in the plan layer, over the closed day-granularity
``[tstart, tend]`` intervals of H-table rows.  No XQuery translation is
involved; the interval algebra lives in :mod:`repro.util.intervals`.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.obs.metrics import get_registry
from repro.plan import nodes
from repro.util.intervals import Interval, coalesce, sweep_aggregate

_JOIN_ROWS = get_registry().counter("temporal.join.rows")
_JOIN_DROPPED = get_registry().counter("temporal.join.dropped")
_COALESCE_MERGED = get_registry().counter("temporal.coalesce.rows_merged")
_AGG_PERIODS = get_registry().counter("temporal.aggregate.periods")


def _null_safe_key(value):
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, value)
    return (2, str(value))


def _hashable(value):
    if isinstance(value, (int, float, str, type(None))):
        return value
    return str(value)


class TemporalJoinOp:
    """Hash equi-join that intersects validity intervals.

    Matched row pairs whose ``[tstart, tend]`` intervals overlap are
    emitted with the intersection written back under *every* alias of
    both sides (so downstream expressions read the sequenced interval no
    matter which alias they qualify it with); non-overlapping pairs are
    dropped.
    """

    name = "TemporalJoin"

    def __init__(self, left, right, plan: nodes.TemporalJoin) -> None:
        self.left = left
        self.right = right
        self.plan = plan
        self.pairs = plan.pairs
        self.left_keys = [pair[0] for pair in plan.pairs]
        self.right_keys = [pair[1] for pair in plan.pairs]
        self.left_aliases = sorted(nodes.node_aliases(plan.left))
        self.right_aliases = sorted(nodes.node_aliases(plan.right))

    def rows(self, params: Mapping) -> Iterator[dict]:
        build: dict[tuple, list[dict]] = {}
        rstart_slot = (self.right_aliases[0], "tstart")
        rend_slot = (self.right_aliases[0], "tend")
        lstart_slot = (self.left_aliases[0], "tstart")
        lend_slot = (self.left_aliases[0], "tend")
        interval_slots = [
            (alias, column)
            for alias in self.left_aliases + self.right_aliases
            for column in ("tstart", "tend")
        ]
        for env in self.right.rows(params):
            key = tuple(env.get(k) for k in self.right_keys)
            if None in key:
                continue
            build.setdefault(key, []).append(env)
        emitted = dropped = 0
        try:
            for env in self.left.rows(params):
                key = tuple(env.get(k) for k in self.left_keys)
                matches = build.get(key)
                if not matches:
                    continue
                lstart = env.get(lstart_slot)
                lend = env.get(lend_slot)
                if lstart is None or lend is None:
                    dropped += len(matches)
                    continue
                for match in matches:
                    rstart = match.get(rstart_slot)
                    rend = match.get(rend_slot)
                    if rstart is None or rend is None:
                        dropped += 1
                        continue
                    low = max(lstart, rstart)
                    high = min(lend, rend)
                    if low > high:
                        dropped += 1
                        continue
                    merged = dict(env)
                    merged.update(match)
                    for start_slot, end_slot in zip(
                        interval_slots[::2], interval_slots[1::2]
                    ):
                        merged[start_slot] = low
                        merged[end_slot] = high
                    emitted += 1
                    yield merged
        finally:
            _JOIN_ROWS.inc(emitted)
            _JOIN_DROPPED.inc(dropped)


class CoalesceOp:
    """NORMALIZE: merge adjacent-or-overlapping periods per value group.

    Operates on output tuples (above Project/Aggregate): rows identical
    in every column but the period columns are collapsed into maximal
    periods.  Output is sorted by the non-period columns, then period
    start, so results are deterministic.
    """

    name = "Coalesce"

    def __init__(self, child, plan: nodes.Coalesce) -> None:
        self.child = child
        self.plan = plan

    def rows(self, params: Mapping) -> Iterator[tuple]:
        start_index = self.plan.start_index
        end_index = self.plan.end_index
        groups: dict[tuple, tuple] = {}
        for row in self.child.rows(params):
            rest = tuple(
                value
                for index, value in enumerate(row)
                if index not in (start_index, end_index)
            )
            key = tuple(_hashable(value) for value in rest)
            _, intervals = groups.setdefault(key, (row, []))
            start = row[start_index]
            end = row[end_index]
            if start is None or end is None:
                continue
            intervals.append(Interval(int(start), int(end)))
        out = []
        for representative, intervals in groups.values():
            merged = coalesce(intervals)
            _COALESCE_MERGED.inc(max(0, len(intervals) - len(merged)))
            for interval in merged:
                row = list(representative)
                row[start_index] = interval.start
                row[end_index] = interval.end
                out.append(tuple(row))
        out.sort(
            key=lambda row: tuple(
                _null_safe_key(value)
                for index, value in enumerate(row)
                if index not in (start_index, end_index)
            )
            + (_null_safe_key(row[start_index]),)
        )
        yield from out


class SequencedAggregateOp:
    """Time-weighted aggregate over ``(value, [tstart, tend])`` streams.

    Groups child rows, sweeps each group's weighted intervals into
    constant-value periods (:func:`repro.util.intervals.sweep_aggregate`)
    and emits one tuple per (group, period).  Output order is group key,
    then period start.
    """

    name = "SequencedAggregate"

    @property
    def render_detail(self) -> str:
        return f" [{self.plan.kind}]"

    def __init__(self, child, plan: nodes.SequencedAggregate, ctx) -> None:
        self.child = child
        self.plan = plan
        self.group_keys = [ctx.compile(g) for g in plan.group_by]
        self.operand = (
            ctx.compile(plan.operand) if plan.operand is not None else None
        )
        self.start = ctx.compile(plan.start)
        self.end = ctx.compile(plan.end)
        # the last two items are the synthesized period bounds; the item
        # at value_index is the aggregate call itself (filled per period)
        self.item_exprs = []
        for index, item in enumerate(plan.items[:-2]):
            if index == plan.value_index:
                self.item_exprs.append(None)
            else:
                self.item_exprs.append(ctx.compile(item.expr))

    def rows(self, params: Mapping) -> Iterator[tuple]:
        groups: dict[tuple, tuple] = {}
        for env in self.child.rows(params):
            key = tuple(
                _null_safe_key(k(env, params)) for k in self.group_keys
            )
            _, pairs = groups.setdefault(key, (env, []))
            start = self.start(env, params)
            end = self.end(env, params)
            if start is None or end is None:
                continue
            value = (
                1.0 if self.operand is None else self.operand(env, params)
            )
            if value is None:
                continue
            pairs.append((float(value), Interval(int(start), int(end))))
        kind = self.plan.kind
        for key in sorted(groups):
            representative, pairs = groups[key]
            periods = sweep_aggregate(pairs, kind)
            _AGG_PERIODS.inc(len(periods))
            for value, interval in periods:
                if kind == "count":
                    value = int(value)
                row = [
                    value if expr is None else expr(representative, params)
                    for expr in self.item_exprs
                ]
                row.append(interval.start)
                row.append(interval.end)
                yield tuple(row)
