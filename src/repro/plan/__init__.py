"""The logical-plan layer: IR nodes, rule-based optimizer, physical ops.

The query path is split into three explicit stages (the seam the paper's
rewrites — Algorithm 1 translation and the Section 6.4 segment
restriction — hang off):

1. :mod:`repro.plan.nodes` + :mod:`repro.plan.build` — a logical-plan IR
   (``Scan`` / ``IndexScan`` / ``FunctionScan`` / ``Join`` / ``Filter`` /
   ``Project`` / ``Aggregate`` / ``Sort`` / ``Distinct`` / ``Limit``)
   built naively from a parsed ``SELECT``;
2. :mod:`repro.plan.rules` + :mod:`repro.plan.optimizer` — rewrite rules
   (constant folding, predicate pushdown, segment restriction, index
   selection, hash-join selection) applied in a fixed order;
3. :mod:`repro.plan.physical` — volcano-style operators compiled from the
   optimized plan and pulled by ``SelectPlan.execute``.

:mod:`repro.plan.render` renders plans as trees (for EXPLAIN and golden
tests) and back to SQL text (so ``ArchIS.translate`` can show the
optimized query).
"""

from repro.plan.build import build_logical, referenced_aliases, split_conjuncts
from repro.plan.optimizer import PlanContext, RuleFiring, SegmentHints, run_rules
from repro.plan.physical import compile_plan
from repro.plan.render import expr_to_sql, render_physical, render_plan, to_sql

__all__ = [
    "PlanContext",
    "RuleFiring",
    "SegmentHints",
    "build_logical",
    "compile_plan",
    "expr_to_sql",
    "referenced_aliases",
    "render_physical",
    "render_plan",
    "run_rules",
    "split_conjuncts",
    "to_sql",
]
