"""The optimizer rules.

Each rule is a pure function ``(plan, ctx) -> (plan, [detail, ...])``
returning the rewritten plan and one human-readable detail string per
firing.  Rules never change result semantics: a plan executed without
them returns identical rows.
"""

from __future__ import annotations

from dataclasses import replace

from repro.plan import nodes
from repro.plan.build import referenced_aliases
from repro.sql import ast

#: end-of-window default when a snapshot predicate bounds only one side
_MAX_DATE = 2**31

_FALSE = ast.BinaryOp("=", ast.Literal(1), ast.Literal(0))


# -- constant folding ---------------------------------------------------------


def fold_constants(plan, ctx):
    """Evaluate constant sub-expressions inside predicates.

    Arithmetic and concatenation over literals fold anywhere in a
    conjunct; comparisons between two constants fold at the conjunct
    level — a true conjunct is dropped, a false one becomes ``1 = 0``
    (kept so the plan still shows the contradiction).
    """
    folded = 0

    def fold_conjuncts(predicates):
        nonlocal folded
        out = []
        for conjunct in predicates:
            node = _fold_expr(conjunct)
            verdict = _const_comparison(node)
            if verdict is True:
                folded += 1
                continue
            if verdict is False:
                folded += 1
                node = _FALSE
            elif node is not conjunct:
                folded += 1
            out.append(node)
        return tuple(out)

    def walk(node):
        node = nodes.map_children(node, walk)
        if isinstance(node, (nodes.Scan, nodes.FunctionScan, nodes.Filter)):
            predicates = fold_conjuncts(node.predicates)
            if predicates != node.predicates:
                if isinstance(node, nodes.Filter) and not predicates:
                    return node.child
                return replace(node, predicates=predicates)
        return node

    plan = walk(plan)
    details = [f"folded {folded} constant expression(s)"] if folded else []
    return plan, details


def _const_value(node):
    """``(value, True)`` when the node is a literal constant."""
    if isinstance(node, ast.Literal):
        return node.value, True
    if isinstance(node, ast.DateLiteral):
        return node.days, True
    return None, False


def _fold_expr(node):
    """Fold constant arithmetic/concat/negation bottom-up."""
    if isinstance(node, ast.BinaryOp) and node.op in ("+", "-", "*", "/", "||"):
        left = _fold_expr(node.left)
        right = _fold_expr(node.right)
        lv, lok = _const_value(left)
        rv, rok = _const_value(right)
        if lok and rok:
            if node.op == "||":
                return ast.Literal(_text(lv) + _text(rv))
            if lv is None or rv is None:
                return ast.Literal(None)
            if node.op == "+":
                return ast.Literal(lv + rv)
            if node.op == "-":
                return ast.Literal(lv - rv)
            if node.op == "*":
                return ast.Literal(lv * rv)
            if rv != 0:
                return ast.Literal(lv / rv)
        if left is not node.left or right is not node.right:
            return ast.BinaryOp(node.op, left, right)
        return node
    if isinstance(node, ast.UnaryOp) and node.op == "-":
        operand = _fold_expr(node.operand)
        value, ok = _const_value(operand)
        if ok and value is not None:
            return ast.Literal(-value)
        if operand is not node.operand:
            return ast.UnaryOp(node.op, operand)
        return node
    if isinstance(node, ast.BinaryOp) and node.op in (
        "=", "<>", "<", "<=", ">", ">=",
    ):
        left = _fold_expr(node.left)
        right = _fold_expr(node.right)
        if left is not node.left or right is not node.right:
            return ast.BinaryOp(node.op, left, right)
        return node
    return node


def _const_comparison(node):
    """True/False for a constant comparison conjunct, else None."""
    if not isinstance(node, ast.BinaryOp):
        return None
    if node.op not in ("=", "<>", "<", "<=", ">", ">="):
        return None
    lv, lok = _const_value(node.left)
    rv, rok = _const_value(node.right)
    if not (lok and rok):
        return None
    if lv is None or rv is None:
        return False  # SQL comparisons with NULL never hold
    ops = {
        "=": lv == rv,
        "<>": lv != rv,
        "<": lv < rv,
        "<=": lv <= rv,
        ">": lv > rv,
        ">=": lv >= rv,
    }
    return ops[node.op]


def _text(value):
    if value is None:
        return ""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


# -- predicate pushdown -------------------------------------------------------


def push_down_predicates(plan, ctx):
    """Move single-alias conjuncts from a Filter into their leaf scan."""
    details = []

    def walk(node):
        node = nodes.map_children(node, walk)
        if not isinstance(node, nodes.Filter):
            return node
        leaf_aliases = nodes.node_aliases(node.child)
        pushed: dict[str, list] = {}
        remaining = []
        for conjunct in node.predicates:
            aliases = referenced_aliases(conjunct, ctx.scope)
            if len(aliases) == 1 and (alias := next(iter(aliases))) in leaf_aliases:
                pushed.setdefault(alias, []).append(conjunct)
            else:
                remaining.append(conjunct)
        if not pushed:
            return node
        for alias in sorted(pushed):
            details.append(
                f"{len(pushed[alias])} predicate(s) into {alias}"
            )
        child = _attach(node.child, pushed)
        return nodes.Filter(child, tuple(remaining)) if remaining else child

    return walk(plan), details


def _attach(node, pushed):
    if isinstance(node, nodes.LEAVES):
        extra = pushed.get(node.alias)
        if extra:
            return replace(node, predicates=node.predicates + tuple(extra))
        return node
    return nodes.map_children(node, lambda child: _attach(child, pushed))


# -- segment restriction (paper Section 6.4) ----------------------------------


def restrict_segments(plan, ctx):
    """Restrict clustered-archive reads to the segments a window needs.

    The translator reads segmented/compressed H-tables through the
    deduplicating ``history_<t>()`` function — always correct, never
    fast.  When the pushed-down predicates bound the alias to a snapshot
    or slicing window, this rule replaces that full read:

    - one uncompressed segment  -> heap/index scan with ``segno = k``;
    - one compressed segment    -> ``seg_<t>(k, k)`` (BLOB decompression);
    - several segments          -> ``slice_<t>(lo, hi)`` (deduplicates
      freeze-forwarded copies across the span).
    """
    details = []

    def walk(node):
        node = nodes.map_children(node, walk)
        if not (
            isinstance(node, nodes.FunctionScan)
            and node.function.startswith("history_")
        ):
            return node
        table = node.function[len("history_"):]
        hints = ctx.segment_hints(table)
        if hints is None:
            return node
        window = _window_from_predicates(node.alias, node.predicates)
        if window is None:
            return node
        lo_date = window[0] if window[0] is not None else 0
        hi_date = window[1] if window[1] is not None else _MAX_DATE
        segnos = hints.segments_overlapping(lo_date, hi_date)
        lo, hi = (min(segnos), max(segnos)) if segnos else (0, -1)
        if lo == hi and not hints.compressed:
            predicate = ast.BinaryOp(
                "=", ast.ColumnRef(node.alias, "segno"), ast.Literal(lo)
            )
            details.append(
                f"{node.alias}: history_{table}() -> {table} WHERE segno = {lo}"
            )
            return nodes.Scan(table, node.alias, node.predicates + (predicate,))
        kind = "seg" if lo == hi else "slice"
        details.append(
            f"{node.alias}: history_{table}() -> {kind}_{table}({lo}, {hi})"
        )
        return nodes.FunctionScan(
            f"{kind}_{table}",
            (ast.Literal(lo), ast.Literal(hi)),
            node.alias,
            node.columns,
            node.predicates,
        )

    return walk(plan), details


def _window_from_predicates(alias, predicates):
    """Extract a ``[lo, hi]`` date window from snapshot/slicing conjuncts.

    Recognizes ``tstart <= D`` / ``tend >= D`` bounds (either side of the
    comparison) and ``toverlaps(tstart, tend, D1, D2)`` slicing calls with
    literal dates.  Returns ``None`` when no bound was found.
    """
    lo = hi = None
    found = False
    for predicate in predicates:
        if isinstance(predicate, ast.BinaryOp) and predicate.op in (
            "<", "<=", ">", ">=",
        ):
            bound = _column_bound(predicate, alias)
            if bound is None:
                continue
            column, op, date = bound
            if column == "tstart" and op in ("<", "<="):
                hi = date
                found = True
            elif column == "tend" and op in (">", ">="):
                lo = date
                found = True
        elif (
            isinstance(predicate, ast.FunctionCall)
            and predicate.name == "toverlaps"
            and len(predicate.args) == 4
        ):
            start_col, end_col, d1, d2 = predicate.args
            if not (
                _is_column(start_col, alias, "tstart")
                and _is_column(end_col, alias, "tend")
            ):
                continue
            lo_date = _const_date(d1)
            hi_date = _const_date(d2)
            if lo_date is not None and hi_date is not None:
                lo, hi = lo_date, hi_date
                found = True
    return (lo, hi) if found else None


def _column_bound(node, alias):
    """Normalize ``col OP const`` / ``const OP col`` to ``(col, op, date)``."""
    if isinstance(node.left, ast.ColumnRef) and _is_owned(node.left, alias):
        date = _const_date(node.right)
        if date is not None:
            return node.left.column, node.op, date
    if isinstance(node.right, ast.ColumnRef) and _is_owned(node.right, alias):
        date = _const_date(node.left)
        if date is not None:
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[node.op]
            return node.right.column, flipped, date
    return None


def _is_owned(ref, alias):
    return ref.table in (None, alias)


def _is_column(node, alias, column):
    return (
        isinstance(node, ast.ColumnRef)
        and node.column == column
        and _is_owned(node, alias)
    )


def _const_date(node):
    if isinstance(node, ast.DateLiteral):
        return node.days
    if isinstance(node, ast.Literal) and isinstance(node.value, int):
        return node.value
    return None


# -- index selection ----------------------------------------------------------


def select_indexes(plan, ctx):
    """Turn Scans with indexable predicates into B+ tree range scans.

    Scoring matches the historical ``SelectPlan._choose_index``: two
    points per equality column matched against an index prefix, one for a
    range column immediately after it.  Equality conjuncts are consumed;
    range conjuncts stay as residual filters (see ``IndexScan``).
    """
    details = []

    def walk(node):
        node = nodes.map_children(node, walk)
        if isinstance(node, nodes.Scan):
            access = _choose_index(node, ctx)
            if access is not None:
                details.append(
                    f"{node.alias}: {node.table} via index {access.index_name}"
                )
                return access
        return node

    return walk(plan), details


def _is_constant(node) -> bool:
    return isinstance(node, (ast.Literal, ast.DateLiteral, ast.Param))


def _indexable(scan, conjunct, scope):
    """Match ``alias.col OP constant`` (either side)."""
    if not isinstance(conjunct, ast.BinaryOp):
        return None
    op = conjunct.op
    if op not in ("=", "<", "<=", ">", ">="):
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ast.ColumnRef) and _is_constant(right):
        owner, column = scope.resolve(left)
        if owner == scan.alias:
            return column, op, right
    if isinstance(right, ast.ColumnRef) and _is_constant(left):
        owner, column = scope.resolve(right)
        if owner == scan.alias:
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            return column, flipped, left
    return None


def _choose_index(scan: nodes.Scan, ctx) -> nodes.IndexScan | None:
    table = ctx.db.table(scan.table)
    if not table.indexes:
        return None
    eq: dict[str, tuple] = {}
    ranges: dict[str, dict] = {}
    for conjunct in scan.predicates:
        bound = _indexable(scan, conjunct, ctx.scope)
        if bound is None:
            continue
        column, op, value_node = bound
        if op == "=":
            eq.setdefault(column, (conjunct, value_node))
        else:
            ranges.setdefault(column, {}).setdefault(op, (conjunct, value_node))
    best = None
    for info in table.indexes.values():
        eq_cols: list[str] = []
        position = 0
        while position < len(info.columns) and info.columns[position] in eq:
            eq_cols.append(info.columns[position])
            position += 1
        range_col = None
        if position < len(info.columns) and info.columns[position] in ranges:
            range_col = info.columns[position]
        score = len(eq_cols) * 2 + (1 if range_col else 0)
        if score == 0:
            continue
        if best is None or score > best[0]:
            best = (score, info, eq_cols, range_col)
    if best is None:
        return None
    _, info, eq_cols, range_col = best
    consumed = set()
    eq_pairs = []
    for column in eq_cols:
        conjunct, value_node = eq[column]
        consumed.add(id(conjunct))
        eq_pairs.append((column, value_node))
    access = nodes.IndexScan(
        scan.table,
        scan.alias,
        info.name,
        tuple(eq_pairs),
        predicates=tuple(
            c for c in scan.predicates if id(c) not in consumed
        ),
    )
    if range_col is not None:
        slot = ranges[range_col]
        updates = {"range_column": range_col}
        low_done = high_done = False
        for op, (conjunct, value_node) in slot.items():
            # at most one bound per direction drives the scan; every range
            # conjunct stays a residual filter (NULL keys sort below all
            # values, so an unbounded-from-below scan would admit NULLs)
            if op in (">", ">=") and not low_done:
                updates["low"] = value_node
                updates["low_inclusive"] = op == ">="
                low_done = True
            elif op in ("<", "<=") and not high_done:
                updates["high"] = value_node
                updates["high_inclusive"] = op == "<="
                high_done = True
        access = replace(access, **updates)
    return access


# -- join selection -----------------------------------------------------------


def select_joins(plan, ctx):
    """Consume equi-join conjuncts from the Filter as hash-join keys.

    Joins are processed bottom-up in the left-deep tree, so a conjunct
    becomes a key at the lowest join where both sides are bound — the
    same pairing the FROM-order executor historically produced.  Equi
    conjuncts that cannot key any join (three-way cycles) stay in the
    Filter as ordinary predicates.
    """
    details = []

    def walk(node):
        if isinstance(node, nodes.Filter) and nodes.contains_join(node.child):
            remaining = list(node.predicates)
            child = _assign_keys(node.child, remaining, ctx, details)
            if remaining:
                return nodes.Filter(child, tuple(remaining))
            return child
        return nodes.map_children(node, walk)

    return walk(plan), details


def _equi_join_sides(node, scope):
    """For ``a.x = b.y`` return ``((alias_a, col), (alias_b, col))``."""
    if (
        isinstance(node, ast.BinaryOp)
        and node.op == "="
        and isinstance(node.left, ast.ColumnRef)
        and isinstance(node.right, ast.ColumnRef)
    ):
        left = scope.resolve(node.left)
        right = scope.resolve(node.right)
        if left[0] != right[0]:
            return left, right
    return None


def _assign_keys(node, remaining, ctx, details):
    if not isinstance(node, nodes.Join):
        return node
    left = _assign_keys(node.left, remaining, ctx, details)
    right = _assign_keys(node.right, remaining, ctx, details)
    left_aliases = nodes.node_aliases(left)
    right_aliases = nodes.node_aliases(right)
    pairs = []
    for conjunct in list(remaining):
        sides = _equi_join_sides(conjunct, ctx.scope)
        if sides is None:
            continue
        first, second = sides
        if first[0] in left_aliases and second[0] in right_aliases:
            pairs.append((first, second))
        elif second[0] in left_aliases and first[0] in right_aliases:
            pairs.append((second, first))
        else:
            continue
        remaining.remove(conjunct)
    if pairs:
        keys = ", ".join(
            f"{l[0]}.{l[1]} = {r[0]}.{r[1]}" for l, r in pairs
        )
        details.append(f"hash join on {keys}")
        return nodes.Join(left, right, tuple(pairs), "hash")
    if left is not node.left or right is not node.right:
        return nodes.Join(left, right)
    return node
