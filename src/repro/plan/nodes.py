"""Logical-plan IR nodes.

Plans are immutable trees of frozen dataclasses.  Expressions inside the
nodes are plain SQL AST nodes (:mod:`repro.sql.ast`); nothing is compiled
until the physical layer, so rules can rewrite freely.

Row flow: the leaves and ``Join``/``Filter``/``Sort`` stages operate on
environment dicts keyed by ``(alias, column)``; ``Project`` and
``Aggregate`` turn environments into output tuples; ``Distinct`` and
``Limit`` operate on those tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Output:
    """One SELECT-list item: expression, output name, explicit AS flag."""

    expr: object
    name: str
    aliased: bool = False


@dataclass(frozen=True)
class Scan:
    """Heap scan of a base table with pushed-down filters."""

    table: str
    alias: str
    predicates: tuple = ()


@dataclass(frozen=True)
class IndexScan:
    """B+ tree range scan: equality prefix plus at most one range column.

    ``eq`` holds ``(column, value_node)`` pairs in index-column order;
    ``low``/``high`` are value AST nodes bounding ``range_column``.  Range
    conjuncts are *also* kept in ``predicates`` (NULL keys sort below all
    values in the index, so a scan unbounded from below would otherwise
    admit NULL rows).
    """

    table: str
    alias: str
    index_name: str
    eq: tuple = ()
    range_column: str | None = None
    low: object = None
    low_inclusive: bool = True
    high: object = None
    high_inclusive: bool = True
    predicates: tuple = ()


@dataclass(frozen=True)
class FunctionScan:
    """``TABLE(fn(args)) AS alias(columns)`` with pushed-down filters."""

    function: str
    args: tuple
    alias: str
    columns: tuple
    predicates: tuple = ()


@dataclass(frozen=True)
class Join:
    """Inner join; ``pairs`` are ``((lalias, lcol), (ralias, rcol))`` keys.

    ``strategy`` is ``"hash"`` when equi-join keys were found (build side
    is the right child) and ``"nested"`` for the filtered cross product.
    """

    left: object
    right: object
    pairs: tuple = ()
    strategy: str = "nested"


@dataclass(frozen=True)
class Filter:
    child: object
    predicates: tuple = ()


@dataclass(frozen=True)
class Project:
    child: object
    items: tuple = ()  # of Output


@dataclass(frozen=True)
class Aggregate:
    """Hash grouping; handles its own ordering since ORDER BY keys may
    contain aggregates."""

    child: object
    group_by: tuple = ()  # of expression nodes
    items: tuple = ()  # of Output
    order_by: tuple = ()  # of (expr, descending)


@dataclass(frozen=True)
class TemporalJoin:
    """Sequenced (interval-intersecting) equi-join.

    Matches rows on ``pairs`` like a hash :class:`Join`, then intersects
    the two sides' ``[tstart, tend]`` validity intervals: pairs whose
    intervals do not overlap are dropped, surviving pairs carry the
    intersection as their interval (every alias on both sides sees the
    intersected ``tstart``/``tend``).
    """

    left: object
    right: object
    pairs: tuple = ()  # of ((lalias, lcol), (ralias, rcol))


@dataclass(frozen=True)
class Coalesce:
    """NORMALIZE-style period coalescing over output tuples.

    Groups rows by every output column except the period columns at
    ``start_index``/``end_index``, merges adjacent-or-overlapping
    ``[tstart, tend]`` intervals per group, and emits one row per merged
    period.  Sits above :class:`Project`/:class:`Aggregate` (tuple flow),
    like :class:`Distinct`.
    """

    child: object
    start_index: int
    end_index: int


@dataclass(frozen=True)
class SequencedAggregate:
    """Time-weighted aggregate (``tavg``/``tsum``/``tcount``/...).

    Sweeps each group's ``(value, [tstart, tend])`` pairs into
    constant-value periods and emits one tuple per (group, period).
    ``items`` are the SELECT outputs; the aggregate call itself appears
    at ``value_index`` and the last two items are the synthesized
    ``tstart``/``tend`` period bounds.
    """

    child: object
    kind: str  # avg | sum | count | min | max
    operand: object | None  # value expression; None for tcount(*)
    start: object  # ColumnRef reading the interval start
    end: object  # ColumnRef reading the interval end
    value_index: int = 0
    group_by: tuple = ()  # of expression nodes
    items: tuple = ()  # of Output (incl. trailing tstart/tend)


@dataclass(frozen=True)
class Sort:
    child: object
    keys: tuple = ()  # of (expr, descending)


@dataclass(frozen=True)
class Distinct:
    child: object


@dataclass(frozen=True)
class Limit:
    child: object
    count: int = 0


LEAVES = (Scan, IndexScan, FunctionScan)
_CHILD_FIELDS = {
    Join: ("left", "right"),
    TemporalJoin: ("left", "right"),
    Filter: ("child",),
    Project: ("child",),
    Aggregate: ("child",),
    SequencedAggregate: ("child",),
    Sort: ("child",),
    Distinct: ("child",),
    Coalesce: ("child",),
    Limit: ("child",),
}


def children(node) -> tuple:
    names = _CHILD_FIELDS.get(type(node), ())
    return tuple(getattr(node, name) for name in names)


def map_children(node, fn):
    """Rebuild ``node`` with ``fn`` applied to each child plan."""
    names = _CHILD_FIELDS.get(type(node), ())
    if not names:
        return node
    updates = {}
    for name in names:
        child = getattr(node, name)
        new_child = fn(child)
        if new_child is not child:
            updates[name] = new_child
    return replace(node, **updates) if updates else node


def leaves(node):
    """Yield every leaf (scan) node of the plan, left to right."""
    if isinstance(node, LEAVES):
        yield node
        return
    for child in children(node):
        yield from leaves(child)


def node_aliases(node) -> set[str]:
    """The set of source aliases bound below (or at) ``node``."""
    return {leaf.alias for leaf in leaves(node)}


def contains_join(node) -> bool:
    if isinstance(node, Join):
        return True
    return any(contains_join(child) for child in children(node))


def output_node(node):
    """The node that defines the plan's output columns (Project,
    Aggregate or SequencedAggregate)."""
    while isinstance(node, (Limit, Distinct, Coalesce)):
        node = node.child
    if not isinstance(node, (Project, Aggregate, SequencedAggregate)):
        raise TypeError(f"plan has no output node: {type(node).__name__}")
    return node
