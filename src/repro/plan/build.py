"""Build the naive logical plan from a parsed SELECT.

The builder does no optimization: every FROM source becomes a leaf scan
joined left-deep as a nested-loop cross product, and the entire WHERE
clause sits in one ``Filter`` above the join tree.  The optimizer rules
(:mod:`repro.plan.rules`) then push predicates down, restrict segments,
pick indexes and upgrade equi-joins — so a plan executed with the
optimizer disabled must return exactly the same rows, just slower.
"""

from __future__ import annotations

from repro.errors import SqlPlanError
from repro.obs import get_registry
from repro.plan import nodes
from repro.sql import ast
from repro.sql.expr import Scope, contains_aggregate

#: SQL-level sequenced aggregate names -> sweep kinds
#: (:func:`repro.util.intervals.sweep_aggregate`).
TEMPORAL_AGGREGATES = {
    "tavg": "avg",
    "tsum": "sum",
    "tcount": "count",
    "tmin": "min",
    "tmax": "max",
}

_TEMPORAL_CLAUSES = get_registry().labeled_counter("temporal.clauses")


def split_conjuncts(node: object) -> list:
    """Flatten a WHERE tree into its AND-ed conjuncts."""
    if isinstance(node, ast.BinaryOp) and node.op == "and":
        return split_conjuncts(node.left) + split_conjuncts(node.right)
    return [node] if node is not None else []


def select_is_temporal(select: ast.Select) -> bool:
    """True when the statement uses any temporal SQL surface: a FOR
    SYSTEM_TIME clause, TEMPORAL JOIN, NORMALIZE or a sequenced aggregate."""
    if select.normalize:
        return True
    for source in select.sources:
        if isinstance(source, ast.TemporalJoinRef):
            return True
        if getattr(source, "temporal", None) is not None:
            return True
    return any(
        isinstance(item.expr, ast.FunctionCall)
        and item.expr.name in TEMPORAL_AGGREGATES
        for item in select.items
    )


def referenced_aliases(node: object, scope: Scope) -> set[str]:
    """Source aliases an expression references (resolved through scope)."""
    out: set[str] = set()
    for sub in ast.walk_exprs(node):
        if isinstance(sub, ast.ColumnRef):
            out.add(scope.resolve(sub)[0])
    return out


def build_logical(select: ast.Select, scope: Scope):
    plan = None
    extra_conjuncts: list = []
    # in a temporal statement, archived tables are read through their
    # deduplicated history_<t>() function (raw H-table heaps can hold
    # per-segment duplicate copies of a version)
    temporal = select_is_temporal(select)
    for ref in select.sources:
        leaf, residual = _source_plan(ref, scope, temporal)
        extra_conjuncts.extend(residual)
        plan = leaf if plan is None else nodes.Join(plan, leaf)
    if plan is None:
        raise SqlPlanError("SELECT needs at least one FROM source")
    conjuncts = tuple(split_conjuncts(select.where)) + tuple(extra_conjuncts)
    if conjuncts:
        plan = nodes.Filter(plan, conjuncts)
    sequenced = _sequenced_aggregate_item(select)
    is_aggregate = bool(select.group_by) or any(
        contains_aggregate(item.expr) for item in select.items
    )
    if sequenced is not None:
        plan = _build_sequenced_aggregate(
            select, scope, plan, sequenced, is_aggregate
        )
    elif is_aggregate:
        items = _output_items(select, scope, True)
        plan = nodes.Aggregate(
            plan,
            tuple(select.group_by),
            items,
            tuple((spec.expr, spec.descending) for spec in select.order_by),
        )
    else:
        items = _output_items(select, scope, False)
        if select.order_by:
            plan = nodes.Sort(
                plan,
                tuple((spec.expr, spec.descending) for spec in select.order_by),
            )
        plan = nodes.Project(plan, items)
    if select.normalize:
        plan = _wrap_coalesce(plan)
    if select.distinct:
        plan = nodes.Distinct(plan)
    if select.limit is not None:
        plan = nodes.Limit(plan, select.limit)
    return plan


def _source_plan(ref, scope, temporal=False):
    """Plan one FROM-list entry -> (plan node, residual conjuncts).

    TEMPORAL JOIN consumes the equi-key conjuncts of its ON condition;
    any non-equi residue is returned to join the WHERE filter above.
    """
    if isinstance(ref, ast.TemporalJoinRef):
        return _temporal_join(ref, scope)
    return _leaf(ref, scope, temporal), []


def _temporal_join(ref: ast.TemporalJoinRef, scope: Scope):
    left, residual = _source_plan(ref.left, scope, True)
    right, right_residual = _source_plan(ref.right, scope, True)
    residual = list(residual) + list(right_residual)
    left_aliases = nodes.node_aliases(left)
    right_aliases = nodes.node_aliases(right)
    for alias in sorted(left_aliases | right_aliases):
        columns = scope.columns_by_alias.get(alias, ())
        if "tstart" not in columns or "tend" not in columns:
            raise SqlPlanError(
                f"TEMPORAL JOIN source {alias!r} has no tstart/tend columns"
            )
    pairs: list = []
    for conjunct in split_conjuncts(ref.on):
        pair = _equi_pair(conjunct, scope, left_aliases, right_aliases)
        if pair is not None:
            pairs.append(pair)
        else:
            residual.append(conjunct)
    if not pairs:
        raise SqlPlanError(
            "TEMPORAL JOIN needs at least one equality key in ON"
        )
    return nodes.TemporalJoin(left, right, tuple(pairs)), residual


def _equi_pair(conjunct, scope, left_aliases, right_aliases):
    """``a.x = b.y`` with sides in opposite join inputs, or None."""
    if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
        return None
    sides = []
    for node in (conjunct.left, conjunct.right):
        if not isinstance(node, ast.ColumnRef):
            return None
        sides.append(scope.resolve(node))
    (lalias, _), (ralias, _) = sides
    if lalias in left_aliases and ralias in right_aliases:
        return (tuple(sides[0]), tuple(sides[1]))
    if lalias in right_aliases and ralias in left_aliases:
        return (tuple(sides[1]), tuple(sides[0]))
    return None


def _leaf(ref, scope, temporal_statement=False):
    clause = getattr(ref, "temporal", None)
    if isinstance(ref, ast.TableRef):
        if clause is not None:
            return _temporal_table_leaf(ref, scope)
        if temporal_statement and _history_function(scope, ref.name):
            columns = scope.columns_by_alias.get(ref.alias, ())
            return nodes.FunctionScan(
                f"history_{ref.name}", (), ref.alias, tuple(columns)
            )
        return nodes.Scan(ref.name, ref.alias)
    if isinstance(ref, ast.TableFunctionRef):
        predicates = ()
        if clause is not None:
            predicates = _temporal_predicates(ref.alias, clause)
        return nodes.FunctionScan(
            ref.function, tuple(ref.args), ref.alias, tuple(ref.columns),
            predicates,
        )
    raise SqlPlanError(f"cannot plan FROM source {type(ref).__name__}")


def _history_function(scope: Scope, table_name: str) -> bool:
    db = scope.db
    return (
        db is not None
        and db.table_function(f"history_{table_name}") is not None
    )


def _temporal_table_leaf(ref: ast.TableRef, scope: Scope):
    """Lower ``table FOR SYSTEM_TIME ...`` onto the H-table history.

    When a ``history_<table>()`` function is registered (the table is an
    archived H-table) the source becomes a FunctionScan of the full
    history with the window as pushed-down predicates — exactly the
    shape the Section 6.4 segment-restriction rule (and the Exchange
    shard pruner) rewrite.  A plain table with its own tstart/tend
    columns is scanned directly with the same predicates.
    """
    predicates = _temporal_predicates(ref.alias, ref.temporal)
    columns = scope.columns_by_alias.get(ref.alias, ())
    if _history_function(scope, ref.name):
        return nodes.FunctionScan(
            f"history_{ref.name}", (), ref.alias, tuple(columns), predicates
        )
    if "tstart" not in columns or "tend" not in columns:
        raise SqlPlanError(
            f"table {ref.name!r} has no history function and no "
            "tstart/tend columns; FOR SYSTEM_TIME needs a temporal table"
        )
    return nodes.Scan(ref.name, ref.alias, predicates)


def _temporal_predicates(alias: str, clause: ast.TemporalClause) -> tuple:
    """Lower a FOR SYSTEM_TIME clause to window predicates over the
    closed ``[tstart, tend]`` interval columns.

    ``AS OF t`` keeps versions live at ``t``; ``FROM t1 TO t2`` is the
    closed-open window ``[t1, t2)``; ``BETWEEN t1 AND t2`` is closed at
    both ends.  The comparison shapes (``tstart <= D`` / ``tend >= D``)
    are exactly what the segment-restriction rule recognizes.
    """
    tstart = ast.ColumnRef(alias, "tstart")
    tend = ast.ColumnRef(alias, "tend")
    _TEMPORAL_CLAUSES.inc(clause.kind)
    if clause.kind == "as_of":
        return (
            ast.BinaryOp("<=", tstart, clause.low),
            ast.BinaryOp(">=", tend, clause.low),
        )
    if clause.kind == "from_to":
        return (
            ast.BinaryOp("<", tstart, clause.high),
            ast.BinaryOp(">=", tend, clause.low),
        )
    if clause.kind == "between":
        return (
            ast.BinaryOp("<=", tstart, clause.high),
            ast.BinaryOp(">=", tend, clause.low),
        )
    raise SqlPlanError(f"unknown temporal clause kind {clause.kind!r}")


def _sequenced_aggregate_item(select: ast.Select):
    """The single sequenced-aggregate select item, as ``(index, call,
    sweep_kind)``, or None.  Nested uses are rejected: the sweep defines
    the output periods, so the call must be a top-level item."""
    found = None
    for index, item in enumerate(select.items):
        expr = item.expr
        if (
            isinstance(expr, ast.FunctionCall)
            and expr.name in TEMPORAL_AGGREGATES
        ):
            if found is not None:
                raise SqlPlanError("only one sequenced aggregate per SELECT")
            found = (index, expr, TEMPORAL_AGGREGATES[expr.name])
            continue
        if isinstance(expr, ast.Star):
            continue
        for sub in ast.walk_exprs(expr):
            if (
                isinstance(sub, ast.FunctionCall)
                and sub.name in TEMPORAL_AGGREGATES
            ):
                raise SqlPlanError(
                    "sequenced aggregates must be top-level select items"
                )
    return found


def _build_sequenced_aggregate(select, scope, plan, found, is_aggregate):
    index, call, kind = found
    if any(contains_aggregate(item.expr) for item in select.items):
        raise SqlPlanError(
            "sequenced aggregates cannot be mixed with row aggregates"
        )
    if select.order_by:
        raise SqlPlanError(
            "ORDER BY is not supported with sequenced aggregates "
            "(output is ordered by group, then period start)"
        )
    if len(call.args) != 1:
        raise SqlPlanError(f"{call.name}() takes exactly one argument")
    arg = call.args[0]
    operand = None if isinstance(arg, ast.Star) else arg
    if operand is None and kind != "count":
        raise SqlPlanError(f"{call.name}(*) is only valid for tcount")
    alias = _interval_alias(select, scope, operand)
    items: list[nodes.Output] = []
    for position, item in enumerate(select.items):
        if isinstance(item.expr, ast.Star):
            raise SqlPlanError(
                "SELECT * cannot be mixed with sequenced aggregation"
            )
        if item.alias:
            name = item.alias
        elif position == index:
            name = call.name
        elif isinstance(item.expr, ast.ColumnRef):
            name = item.expr.column
        else:
            name = f"col{position + 1}"
        items.append(nodes.Output(item.expr, name, aliased=bool(item.alias)))
    items.append(nodes.Output(ast.ColumnRef(alias, "tstart"), "tstart"))
    items.append(nodes.Output(ast.ColumnRef(alias, "tend"), "tend"))
    return nodes.SequencedAggregate(
        plan,
        kind,
        operand,
        ast.ColumnRef(alias, "tstart"),
        ast.ColumnRef(alias, "tend"),
        index,
        tuple(select.group_by),
        tuple(items),
    )


def _interval_alias(select, scope, operand) -> str:
    """The source alias whose ``[tstart, tend]`` weights the aggregate:
    the operand's own source when it has interval columns, else the
    first FROM source that does."""
    candidates: list[str] = []
    if operand is not None:
        candidates.extend(sorted(referenced_aliases(operand, scope)))
    for ref in ast.flat_source_refs(select.sources):
        if ref.alias not in candidates:
            candidates.append(ref.alias)
    for alias in candidates:
        columns = scope.columns_by_alias.get(alias, ())
        if "tstart" in columns and "tend" in columns:
            return alias
    raise SqlPlanError(
        "sequenced aggregates need a source with tstart/tend columns"
    )


def _wrap_coalesce(plan):
    items = nodes.output_node(plan).items
    names = [output.name for output in items]
    if "tstart" not in names or "tend" not in names:
        raise SqlPlanError(
            "SELECT NORMALIZE needs tstart and tend in the select list"
        )
    return nodes.Coalesce(plan, names.index("tstart"), names.index("tend"))


def _output_items(
    select: ast.Select, scope: Scope, is_aggregate: bool
) -> tuple:
    items: list[nodes.Output] = []
    for index, item in enumerate(select.items):
        if isinstance(item.expr, ast.Star):
            if is_aggregate:
                raise SqlPlanError("SELECT * cannot be mixed with aggregation")
            aliases = (
                [item.expr.table]
                if item.expr.table
                else [ref.alias for ref in ast.flat_source_refs(select.sources)]
            )
            for alias in aliases:
                columns = scope.columns_by_alias.get(alias)
                if columns is None:
                    raise SqlPlanError(f"unknown table alias {alias!r}")
                items.extend(
                    nodes.Output(ast.ColumnRef(alias, column), column)
                    for column in columns
                )
            continue
        if item.alias:
            name = item.alias
        elif isinstance(item.expr, ast.ColumnRef):
            name = item.expr.column
        else:
            name = f"col{index + 1}"
        items.append(nodes.Output(item.expr, name, aliased=bool(item.alias)))
    return tuple(items)
