"""Build the naive logical plan from a parsed SELECT.

The builder does no optimization: every FROM source becomes a leaf scan
joined left-deep as a nested-loop cross product, and the entire WHERE
clause sits in one ``Filter`` above the join tree.  The optimizer rules
(:mod:`repro.plan.rules`) then push predicates down, restrict segments,
pick indexes and upgrade equi-joins — so a plan executed with the
optimizer disabled must return exactly the same rows, just slower.
"""

from __future__ import annotations

from repro.errors import SqlPlanError
from repro.plan import nodes
from repro.sql import ast
from repro.sql.expr import Scope, contains_aggregate


def split_conjuncts(node: object) -> list:
    """Flatten a WHERE tree into its AND-ed conjuncts."""
    if isinstance(node, ast.BinaryOp) and node.op == "and":
        return split_conjuncts(node.left) + split_conjuncts(node.right)
    return [node] if node is not None else []


def referenced_aliases(node: object, scope: Scope) -> set[str]:
    """Source aliases an expression references (resolved through scope)."""
    out: set[str] = set()
    for sub in ast.walk_exprs(node):
        if isinstance(sub, ast.ColumnRef):
            out.add(scope.resolve(sub)[0])
    return out


def build_logical(select: ast.Select, scope: Scope):
    plan = None
    for ref in select.sources:
        leaf = _leaf(ref)
        plan = leaf if plan is None else nodes.Join(plan, leaf)
    if plan is None:
        raise SqlPlanError("SELECT needs at least one FROM source")
    conjuncts = tuple(split_conjuncts(select.where))
    if conjuncts:
        plan = nodes.Filter(plan, conjuncts)
    is_aggregate = bool(select.group_by) or any(
        contains_aggregate(item.expr) for item in select.items
    )
    items = _output_items(select, scope, is_aggregate)
    if is_aggregate:
        plan = nodes.Aggregate(
            plan,
            tuple(select.group_by),
            items,
            tuple((spec.expr, spec.descending) for spec in select.order_by),
        )
    else:
        if select.order_by:
            plan = nodes.Sort(
                plan,
                tuple((spec.expr, spec.descending) for spec in select.order_by),
            )
        plan = nodes.Project(plan, items)
    if select.distinct:
        plan = nodes.Distinct(plan)
    if select.limit is not None:
        plan = nodes.Limit(plan, select.limit)
    return plan


def _leaf(ref):
    if isinstance(ref, ast.TableRef):
        return nodes.Scan(ref.name, ref.alias)
    if isinstance(ref, ast.TableFunctionRef):
        return nodes.FunctionScan(
            ref.function, tuple(ref.args), ref.alias, tuple(ref.columns)
        )
    raise SqlPlanError(f"cannot plan FROM source {type(ref).__name__}")


def _output_items(
    select: ast.Select, scope: Scope, is_aggregate: bool
) -> tuple:
    items: list[nodes.Output] = []
    for index, item in enumerate(select.items):
        if isinstance(item.expr, ast.Star):
            if is_aggregate:
                raise SqlPlanError("SELECT * cannot be mixed with aggregation")
            aliases = (
                [item.expr.table]
                if item.expr.table
                else [ref.alias for ref in select.sources]
            )
            for alias in aliases:
                columns = scope.columns_by_alias.get(alias)
                if columns is None:
                    raise SqlPlanError(f"unknown table alias {alias!r}")
                items.extend(
                    nodes.Output(ast.ColumnRef(alias, column), column)
                    for column in columns
                )
            continue
        if item.alias:
            name = item.alias
        elif isinstance(item.expr, ast.ColumnRef):
            name = item.expr.column
        else:
            name = f"col{index + 1}"
        items.append(nodes.Output(item.expr, name, aliased=bool(item.alias)))
    return tuple(items)
