"""Plan rendering: indented trees for EXPLAIN, SQL text for translate().

``render_plan`` / ``render_physical`` produce the stable tree format the
golden-plan tests snapshot.  ``to_sql`` turns an (optimized) logical plan
back into executable SQL text — this is what ``ArchIS.translate`` returns,
so the segment-restricted access paths the optimizer picked are visible
in the query text itself.
"""

from __future__ import annotations

from repro.plan import nodes
from repro.sql import ast
from repro.util.timeutil import format_date

# -- expressions --------------------------------------------------------------

#: binding strength per binary operator; higher binds tighter
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 3, "<>": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4, "||": 4,
    "*": 5, "/": 5,
}


def expr_to_sql(node) -> str:
    return _expr(node, 0)


def _expr(node, parent_precedence: int) -> str:
    if isinstance(node, ast.Literal):
        return _literal(node.value)
    if isinstance(node, ast.DateLiteral):
        return f"DATE '{format_date(node.days)}'"
    if isinstance(node, ast.Param):
        return f":{node.name}"
    if isinstance(node, ast.ColumnRef):
        return f"{node.table}.{node.column}" if node.table else node.column
    if isinstance(node, ast.Star):
        return f"{node.table}.*" if node.table else "*"
    if isinstance(node, ast.BinaryOp):
        precedence = _PRECEDENCE[node.op]
        op = node.op.upper() if node.op in ("and", "or") else node.op
        text = (
            f"{_expr(node.left, precedence)} {op} "
            f"{_expr(node.right, precedence + 1)}"
        )
        if precedence < parent_precedence:
            return f"({text})"
        return text
    if isinstance(node, ast.UnaryOp):
        if node.op == "not":
            text = f"NOT {_expr(node.operand, 3)}"
            return f"({text})" if parent_precedence > 2 else text
        return f"-{_expr(node.operand, 6)}"
    if isinstance(node, ast.FunctionCall):
        args = ", ".join(_expr(a, 0) for a in node.args)
        if node.distinct:
            return f"{node.name}(DISTINCT {args})"
        return f"{node.name}({args})"
    if isinstance(node, ast.InList):
        items = ", ".join(_expr(i, 0) for i in node.items)
        keyword = "NOT IN" if node.negated else "IN"
        return f"{_expr(node.operand, 4)} {keyword} ({items})"
    if isinstance(node, ast.Between):
        keyword = "NOT BETWEEN" if node.negated else "BETWEEN"
        return (
            f"{_expr(node.operand, 4)} {keyword} "
            f"{_expr(node.low, 4)} AND {_expr(node.high, 4)}"
        )
    if isinstance(node, ast.IsNull):
        keyword = "IS NOT NULL" if node.negated else "IS NULL"
        return f"{_expr(node.operand, 4)} {keyword}"
    if isinstance(node, ast.LikeOp):
        keyword = "NOT LIKE" if node.negated else "LIKE"
        return f"{_expr(node.operand, 4)} {keyword} {_expr(node.pattern, 4)}"
    if isinstance(node, ast.CaseExpr):
        parts = ["CASE"]
        for condition, result in node.whens:
            parts.append(f"WHEN {_expr(condition, 0)} THEN {_expr(result, 0)}")
        if node.else_result is not None:
            parts.append(f"ELSE {_expr(node.else_result, 0)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(node, ast.XmlElementExpr):
        parts = [f'Name "{node.tag}"']
        if node.attributes:
            attrs = ", ".join(
                f'{_expr(a.value, 0)} AS "{a.name}"' for a in node.attributes
            )
            parts.append(f"XMLAttributes({attrs})")
        parts.extend(_expr(c, 0) for c in node.content)
        return f"XMLElement({', '.join(parts)})"
    if isinstance(node, ast.XmlAggExpr):
        text = _expr(node.operand, 0)
        if node.order_by:
            keys = ", ".join(
                _expr(item.expr, 0) + (" DESC" if item.descending else "")
                for item in node.order_by
            )
            text += f" ORDER BY {keys}"
        return f"XMLAgg({text})"
    if isinstance(node, ast.Subquery):
        return f"({select_ast_to_sql(node.select)})"
    if isinstance(node, ast.InSubquery):
        keyword = "NOT IN" if node.negated else "IN"
        return (
            f"{_expr(node.operand, 4)} {keyword} "
            f"({select_ast_to_sql(node.subquery.select)})"
        )
    if isinstance(node, ast.ExistsSubquery):
        keyword = "NOT EXISTS" if node.negated else "EXISTS"
        return f"{keyword} ({select_ast_to_sql(node.subquery.select)})"
    raise TypeError(f"cannot render expression {type(node).__name__}")


def _literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def select_ast_to_sql(select: ast.Select) -> str:
    """Render a raw SELECT AST (used for subqueries inside expressions)."""
    items = []
    for item in select.items:
        text = _expr(item.expr, 0)
        if item.alias:
            text += f" AS {item.alias}"
        items.append(text)
    sources = [_source_sql(ref) for ref in select.sources]
    distinct = "DISTINCT " if select.distinct else ""
    sql = f"SELECT {distinct}{', '.join(items)} FROM {', '.join(sources)}"
    if select.where is not None:
        sql += f" WHERE {_expr(select.where, 0)}"
    if select.group_by:
        sql += " GROUP BY " + ", ".join(_expr(g, 0) for g in select.group_by)
    if select.order_by:
        sql += " ORDER BY " + ", ".join(
            _expr(spec.expr, 0) + (" DESC" if spec.descending else "")
            for spec in select.order_by
        )
    if select.limit is not None:
        sql += f" LIMIT {select.limit}"
    return sql


def _source_sql(ref) -> str:
    if isinstance(ref, ast.TableRef):
        return f"{ref.name} AS {ref.alias}"
    args = ", ".join(_expr(a, 0) for a in ref.args)
    columns = ", ".join(ref.columns)
    return f"TABLE({ref.function}({args})) AS {ref.alias}({columns})"


# -- logical plan -> SQL ------------------------------------------------------


def to_sql(plan) -> str:
    """Render an (optimized) logical plan back to SQL text.

    The plan trees this renders are the shapes ``build_logical`` + the
    rule pipeline produce: joins collapse back into a FROM list, pushed
    predicates and join keys back into one WHERE conjunction, so the
    output re-parses and re-plans to an equivalent query.
    """
    limit = None
    distinct = False
    normalize = False
    node = plan
    if isinstance(node, nodes.Limit):
        limit = node.count
        node = node.child
    if isinstance(node, nodes.Distinct):
        distinct = True
        node = node.child
    if isinstance(node, nodes.Coalesce):
        normalize = True
        node = node.child

    order_by: tuple = ()
    group_by: tuple = ()
    if isinstance(node, nodes.Aggregate):
        items = node.items
        group_by = node.group_by
        order_by = node.order_by
        body = node.child
    elif isinstance(node, nodes.SequencedAggregate):
        # the trailing tstart/tend outputs are synthesized; the parser
        # re-creates them when the rendered text is planned again
        items = node.items[:-2]
        group_by = node.group_by
        body = node.child
    elif isinstance(node, nodes.Project):
        items = node.items
        body = node.child
        if isinstance(body, nodes.Sort):
            order_by = body.keys
            body = body.child
    else:
        raise TypeError(f"plan has no output node: {type(node).__name__}")

    sources: list[str] = []
    conditions: list[str] = []
    _flatten(body, sources, conditions)

    rendered_items = []
    for item in items:
        text = _expr(item.expr, 0)
        if item.aliased:
            text += f" AS {item.name}"
        rendered_items.append(text)
    head = "SELECT DISTINCT" if distinct else "SELECT"
    if normalize:
        head += " NORMALIZE"
    sql = f"{head} {', '.join(rendered_items)} FROM {', '.join(sources)}"
    if conditions:
        sql += " WHERE " + " AND ".join(conditions)
    if group_by:
        sql += " GROUP BY " + ", ".join(_expr(g, 0) for g in group_by)
    if order_by:
        sql += " ORDER BY " + ", ".join(
            _expr(expr, 0) + (" DESC" if descending else "")
            for expr, descending in order_by
        )
    if limit is not None:
        sql += f" LIMIT {limit}"
    return sql


def _flatten(node, sources: list, conditions: list) -> None:
    """Collapse a join/filter/scan tree into FROM sources + WHERE conjuncts."""
    if isinstance(node, nodes.Scan):
        sources.append(f"{node.table} AS {node.alias}")
        conditions.extend(_qualified(p, node.alias) for p in node.predicates)
        return
    if isinstance(node, nodes.IndexScan):
        sources.append(f"{node.table} AS {node.alias}")
        # equality conjuncts were consumed into the access path; re-emit
        # them so the SQL text stays equivalent (range conjuncts are still
        # present in node.predicates)
        for column, value_node in node.eq:
            conditions.append(
                f"{node.alias}.{column} = {_expr(value_node, 0)}"
            )
        conditions.extend(_qualified(p, node.alias) for p in node.predicates)
        return
    if isinstance(node, nodes.FunctionScan):
        args = ", ".join(_expr(a, 0) for a in node.args)
        columns = ", ".join(node.columns)
        sources.append(
            f"TABLE({node.function}({args})) AS {node.alias}({columns})"
        )
        conditions.extend(_qualified(p, node.alias) for p in node.predicates)
        return
    if isinstance(node, nodes.Join):
        _flatten(node.left, sources, conditions)
        _flatten(node.right, sources, conditions)
        for (lalias, lcol), (ralias, rcol) in node.pairs:
            conditions.append(f"{lalias}.{lcol} = {ralias}.{rcol}")
        return
    if isinstance(node, nodes.TemporalJoin):
        left_sources: list = []
        right_sources: list = []
        _flatten(node.left, left_sources, conditions)
        _flatten(node.right, right_sources, conditions)
        on = " AND ".join(
            f"{l[0]}.{l[1]} = {r[0]}.{r[1]}" for l, r in node.pairs
        )
        sources.append(
            f"{left_sources[0]} TEMPORAL JOIN {right_sources[0]} ON {on}"
        )
        return
    if isinstance(node, nodes.Filter):
        _flatten(node.child, sources, conditions)
        conditions.extend(_expr(p, 3) for p in node.predicates)
        return
    raise TypeError(f"cannot render plan node {type(node).__name__} as SQL")


def _qualified(predicate, alias: str) -> str:
    """Render a pushed-down predicate with unqualified columns re-owned."""
    return _expr(_qualify(predicate, alias), 3)


def _qualify(node, alias: str):
    if isinstance(node, ast.ColumnRef) and node.table is None:
        return ast.ColumnRef(alias, node.column)
    rebuilt = node
    for child in ast.child_exprs(node):
        new_child = _qualify(child, alias)
        if new_child is not child:
            rebuilt = _replace_child(rebuilt, child, new_child)
    return rebuilt


def _replace_child(node, old, new):
    from dataclasses import fields, replace

    for field in fields(node):
        value = getattr(node, field.name)
        if value is old:
            return replace(node, **{field.name: new})
        if isinstance(value, tuple) and any(v is old for v in value):
            return replace(
                node,
                **{
                    field.name: tuple(
                        new if v is old else v for v in value
                    )
                },
            )
    return node


# -- plan trees ---------------------------------------------------------------


def render_plan(plan) -> str:
    """Render a logical plan as an indented tree (stable, for goldens)."""
    lines: list[str] = []
    _render_node(plan, lines, 0)
    return "\n".join(lines)


def _render_node(node, lines: list, depth: int) -> None:
    indent = "  " * depth
    if isinstance(node, nodes.Scan):
        lines.append(f"{indent}Scan {node.table} AS {node.alias}"
                     + _predicate_suffix(node.predicates))
        return
    if isinstance(node, nodes.IndexScan):
        parts = [f"{indent}IndexScan {node.table} AS {node.alias}",
                 f"using {node.index_name}"]
        if node.eq:
            eq = ", ".join(
                f"{column} = {_expr(value, 0)}" for column, value in node.eq
            )
            parts.append(f"eq [{eq}]")
        if node.range_column is not None:
            low = (
                ("[" if node.low_inclusive else "(")
                + (_expr(node.low, 0) if node.low is not None else "-inf")
            )
            high = (
                (_expr(node.high, 0) if node.high is not None else "+inf")
                + ("]" if node.high_inclusive else ")")
            )
            parts.append(f"range {node.range_column} in {low}, {high}")
        lines.append(" ".join(parts) + _predicate_suffix(node.predicates))
        return
    if isinstance(node, nodes.FunctionScan):
        args = ", ".join(_expr(a, 0) for a in node.args)
        lines.append(
            f"{indent}FunctionScan {node.function}({args}) AS {node.alias}"
            + _predicate_suffix(node.predicates)
        )
        return
    if isinstance(node, nodes.Join):
        if node.pairs:
            keys = ", ".join(
                f"{l[0]}.{l[1]} = {r[0]}.{r[1]}" for l, r in node.pairs
            )
            lines.append(f"{indent}Join [{node.strategy}] on {keys}")
        else:
            lines.append(f"{indent}Join [{node.strategy}]")
        _render_node(node.left, lines, depth + 1)
        _render_node(node.right, lines, depth + 1)
        return
    if isinstance(node, nodes.TemporalJoin):
        keys = ", ".join(
            f"{l[0]}.{l[1]} = {r[0]}.{r[1]}" for l, r in node.pairs
        )
        lines.append(
            f"{indent}TemporalJoin on {keys} intersect [tstart, tend]"
        )
        _render_node(node.left, lines, depth + 1)
        _render_node(node.right, lines, depth + 1)
        return
    if isinstance(node, nodes.Filter):
        lines.append(f"{indent}Filter" + _predicate_suffix(node.predicates))
    elif isinstance(node, nodes.Project):
        items = ", ".join(_output_sql(item) for item in node.items)
        lines.append(f"{indent}Project [{items}]")
    elif isinstance(node, nodes.Aggregate):
        items = ", ".join(_output_sql(item) for item in node.items)
        text = f"{indent}Aggregate [{items}]"
        if node.group_by:
            text += " group by [" + ", ".join(
                _expr(g, 0) for g in node.group_by
            ) + "]"
        if node.order_by:
            text += " order by [" + _order_sql(node.order_by) + "]"
        lines.append(text)
    elif isinstance(node, nodes.SequencedAggregate):
        items = ", ".join(_output_sql(item) for item in node.items)
        text = f"{indent}SequencedAggregate [{node.kind}] [{items}]"
        if node.group_by:
            text += " group by [" + ", ".join(
                _expr(g, 0) for g in node.group_by
            ) + "]"
        lines.append(text)
    elif isinstance(node, nodes.Sort):
        lines.append(f"{indent}Sort [{_order_sql(node.keys)}]")
    elif isinstance(node, nodes.Distinct):
        lines.append(f"{indent}Distinct")
    elif isinstance(node, nodes.Coalesce):
        lines.append(
            f"{indent}Coalesce periods at "
            f"[{node.start_index}, {node.end_index}]"
        )
    elif isinstance(node, nodes.Limit):
        lines.append(f"{indent}Limit {node.count}")
    else:
        raise TypeError(f"cannot render plan node {type(node).__name__}")
    for child in nodes.children(node):
        _render_node(child, lines, depth + 1)


def _predicate_suffix(predicates: tuple) -> str:
    if not predicates:
        return ""
    return " [" + " AND ".join(_expr(p, 3) for p in predicates) + "]"


def _output_sql(item: nodes.Output) -> str:
    text = _expr(item.expr, 0)
    if item.aliased:
        text += f" AS {item.name}"
    return text


def _order_sql(keys: tuple) -> str:
    return ", ".join(
        _expr(expr, 0) + (" DESC" if descending else "")
        for expr, descending in keys
    )


# -- physical plan ------------------------------------------------------------


def render_physical(op) -> str:
    """Render a physical operator tree as an indented list of op names."""
    lines: list[str] = []
    _render_op(op, lines, 0)
    return "\n".join(lines)


def _render_op(op, lines: list, depth: int) -> None:
    indent = "  " * depth
    detail = ""
    plan = getattr(op, "plan", None)
    if plan is not None:
        if hasattr(plan, "table"):
            detail = f" {plan.table} AS {plan.alias}"
        elif hasattr(plan, "function"):
            detail = f" {plan.function} AS {plan.alias}"
    if getattr(op, "pairs", None):
        keys = ", ".join(
            f"{l[0]}.{l[1]} = {r[0]}.{r[1]}" for l, r in op.pairs
        )
        detail = f" on {keys}"
    index_name = getattr(getattr(op, "plan", None), "index_name", None)
    if index_name:
        detail += f" using {index_name}"
    # operators carrying their own description (ExchangeOp's shard
    # fan-out) override the generic plan-derived detail
    own = getattr(op, "render_detail", None)
    if own:
        detail = own
    lines.append(f"{indent}{op.name}{detail}")
    for child_name in ("left", "right", "child"):
        child = getattr(op, child_name, None)
        if child is not None:
            _render_op(child, lines, depth + 1)
