"""Volcano-style physical operators compiled from an optimized plan.

``compile_plan`` walks the logical tree bottom-up and builds one operator
per node.  Expressions are compiled to closures once, at construction;
``rows(params)`` then pulls lazily through the pipeline.

Leaf operators (and ``FilterOp`` above them) additionally expose
``rid_rows(params)`` yielding ``(rid, env)`` pairs so UPDATE/DELETE can
reuse the same access paths the optimizer picked for SELECT.

Row flow matches :mod:`repro.plan.nodes`: environments (dicts keyed by
``(alias, column)``) below ``Project``/``Aggregate``, output tuples above.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator, Mapping

from repro.errors import SqlPlanError
from repro.obs.metrics import get_registry
from repro.plan import nodes
from repro.sql import ast
from repro.sql.expr import AGGREGATE_NAMES, Scope, compile_expr
from repro.sql.sqlxml import xml_agg

Env = dict

#: Rows pulled from base tables / table functions before filtering.  The
#: count accumulates in a local and is flushed once per scan (in a
#: ``finally``), so the per-row cost is a plain integer increment.
_ROWS_SCANNED = get_registry().counter("sql.rows_scanned")

#: scatter-gather executions and their fan-out (see :class:`ExchangeOp`)
_EXCHANGE_QUERIES = get_registry().counter("exchange.queries")
_EXCHANGE_SHARDS_HIT = get_registry().histogram(
    "exchange.shards_hit", (1, 2, 4, 8, 16, 32)
)
_EXCHANGE_PRUNED = get_registry().counter("exchange.shards_pruned")


class _Top:
    """Sorts after every real value: pads composite-index range bounds.

    A bound ``(2,)`` compares *less* than key ``(2, x)`` under tuple
    ordering, so an inclusive high bound on an index prefix must be padded
    to ``(2, _TOP)`` to admit all keys sharing the prefix.
    """

    __slots__ = ()

    def __lt__(self, other) -> bool:
        return False

    def __gt__(self, other) -> bool:
        return other is not self

    def __le__(self, other) -> bool:
        return other is self

    def __ge__(self, other) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return other is self

    def __hash__(self) -> int:
        return 0x70FF


_TOP = _Top()


class ExecContext:
    """Shared compilation context: database, name scope, scalar functions."""

    def __init__(self, db, scope: Scope, functions: Mapping) -> None:
        self.db = db
        self.scope = scope
        self.functions = functions

    def compile(self, node):
        return compile_expr(node, self.scope, self.functions)

    def compile_const(self, node):
        """Compile a scope-free value expression (literals and params)."""
        return compile_expr(node, Scope({}), self.functions)


def compile_plan(plan, ctx: ExecContext):
    """Compile a logical plan node into its physical operator."""
    if isinstance(plan, (nodes.Scan, nodes.IndexScan, nodes.FunctionScan)):
        provider = getattr(ctx.db, "shard_provider", None)
        if provider is not None:
            name = (
                plan.function
                if isinstance(plan, nodes.FunctionScan)
                else plan.table
            )
            target = provider(name)
            if target is not None:
                return ExchangeOp(plan, ctx, target)
    if isinstance(plan, nodes.Scan):
        return SeqScanOp(plan, ctx)
    if isinstance(plan, nodes.IndexScan):
        return IndexScanOp(plan, ctx)
    if isinstance(plan, nodes.FunctionScan):
        return FunctionScanOp(plan, ctx)
    if isinstance(plan, nodes.Join):
        left = compile_plan(plan.left, ctx)
        right = compile_plan(plan.right, ctx)
        if plan.strategy == "hash":
            return HashJoinOp(left, right, plan.pairs)
        return NestedLoopOp(left, right)
    if isinstance(plan, nodes.Filter):
        return FilterOp(compile_plan(plan.child, ctx), plan.predicates, ctx)
    if isinstance(plan, nodes.Sort):
        return SortOp(compile_plan(plan.child, ctx), plan.keys, ctx)
    if isinstance(plan, nodes.Project):
        return ProjectOp(compile_plan(plan.child, ctx), plan.items, ctx)
    if isinstance(plan, nodes.Aggregate):
        return AggregateOp(compile_plan(plan.child, ctx), plan, ctx)
    if isinstance(plan, nodes.Distinct):
        return DistinctOp(compile_plan(plan.child, ctx))
    if isinstance(plan, nodes.Limit):
        return LimitOp(compile_plan(plan.child, ctx), plan.count)
    if isinstance(plan, nodes.TemporalJoin):
        from repro.plan.temporal import TemporalJoinOp

        return TemporalJoinOp(
            compile_plan(plan.left, ctx), compile_plan(plan.right, ctx), plan
        )
    if isinstance(plan, nodes.Coalesce):
        from repro.plan.temporal import CoalesceOp

        return CoalesceOp(compile_plan(plan.child, ctx), plan)
    if isinstance(plan, nodes.SequencedAggregate):
        from repro.plan.temporal import SequencedAggregateOp

        return SequencedAggregateOp(compile_plan(plan.child, ctx), plan, ctx)
    raise SqlPlanError(f"cannot compile plan node {type(plan).__name__}")


# -- leaf scans ---------------------------------------------------------------


class SeqScanOp:
    name = "SeqScan"

    def __init__(self, plan: nodes.Scan, ctx: ExecContext) -> None:
        self.plan = plan
        self.ctx = ctx
        self.filters = [ctx.compile(p) for p in plan.predicates]
        self.columns = ctx.scope.columns_by_alias[plan.alias]

    def rows(self, params: Mapping) -> Iterator[Env]:
        for _, env in self.rid_rows(params):
            yield env

    def rid_rows(self, params: Mapping):
        table = self.ctx.db.table(self.plan.table)
        names = self.columns
        alias = self.plan.alias
        filters = self.filters
        scanned = 0
        try:
            for rid, row in table.scan():
                scanned += 1
                env = {(alias, name): value for name, value in zip(names, row)}
                if all(f(env, params) for f in filters):
                    yield rid, env
        finally:
            _ROWS_SCANNED.inc(scanned)


class IndexScanOp:
    name = "IndexScan"

    def __init__(self, plan: nodes.IndexScan, ctx: ExecContext) -> None:
        self.plan = plan
        self.ctx = ctx
        self.eq_values = [ctx.compile_const(v) for _, v in plan.eq]
        self.low = ctx.compile_const(plan.low) if plan.low is not None else None
        self.high = (
            ctx.compile_const(plan.high) if plan.high is not None else None
        )
        self.filters = [ctx.compile(p) for p in plan.predicates]
        self.columns = ctx.scope.columns_by_alias[plan.alias]

    def rows(self, params: Mapping) -> Iterator[Env]:
        for _, env in self.rid_rows(params):
            yield env

    def rid_rows(self, params: Mapping):
        names = self.columns
        alias = self.plan.alias
        filters = self.filters
        scanned = 0
        try:
            for rid, row in self._index_rows(params):
                scanned += 1
                env = {(alias, name): value for name, value in zip(names, row)}
                if all(f(env, params) for f in filters):
                    yield rid, env
        finally:
            _ROWS_SCANNED.inc(scanned)

    def _index_rows(self, params: Mapping):
        plan = self.plan
        table = self.ctx.db.table(plan.table)
        prefix = tuple(v(None, params) for v in self.eq_values)
        if plan.range_column is not None:
            low_val = self.low(None, params) if self.low is not None else None
            high_val = (
                self.high(None, params) if self.high is not None else None
            )
            if high_val is None and prefix:
                # prefix-bounded from above only: emulate with prefix scan
                yield from self._prefix_scan(table, prefix)
                return
            # pad bounds so keys extending the bound tuple compare correctly
            if low_val is None:
                low_key = prefix or None
            elif plan.low_inclusive:
                low_key = prefix + (low_val,)
            else:
                low_key = prefix + (low_val, _TOP)
            if high_val is None:
                high_key = None
            elif plan.high_inclusive:
                high_key = prefix + (high_val, _TOP)
            else:
                high_key = prefix + (high_val,)
            yield from table.index_scan(
                plan.index_name,
                low_key,
                high_key,
                low_inclusive=True,
                high_inclusive=False,
            )
            return
        if prefix:
            yield from self._prefix_scan(table, prefix)
            return
        yield from table.index_scan(plan.index_name)

    def _prefix_scan(self, table, prefix: tuple):
        info = table.indexes[self.plan.index_name]
        for key, rid in info.tree.prefix(prefix):
            yield rid, table.read(rid)


class FunctionScanOp:
    name = "FunctionScan"

    def __init__(self, plan: nodes.FunctionScan, ctx: ExecContext) -> None:
        self.plan = plan
        self.ctx = ctx
        self.args = [ctx.compile_const(a) for a in plan.args]
        self.filters = [ctx.compile(p) for p in plan.predicates]
        self.columns = ctx.scope.columns_by_alias[plan.alias]

    def rows(self, params: Mapping) -> Iterator[Env]:
        fn = self.ctx.db.table_function(self.plan.function)
        if fn is None:
            raise SqlPlanError(
                f"unknown table function {self.plan.function}()"
            )
        args = [a(None, params) for a in self.args]
        names = self.columns
        alias = self.plan.alias
        filters = self.filters
        scanned = 0
        try:
            for row in fn(*args):
                scanned += 1
                env = {(alias, name): value for name, value in zip(names, row)}
                if all(f(env, params) for f in filters):
                    yield env
        finally:
            _ROWS_SCANNED.inc(scanned)


# -- scatter-gather exchange --------------------------------------------------


class ExchangeOp:
    """Scatter a leaf scan across shard stores and gather the streams.

    Built whenever ``ctx.db.shard_provider`` resolves the leaf's table
    (or table-function) name to a :class:`~repro.archis.sharding.
    ShardTarget`.  For every shard the *logical leaf* is re-optimized
    against that shard's own catalog — segment restriction and index
    selection run with the shard's segment map, so a query the
    coordinator could not restrict (its copy of the H-table is empty)
    becomes a ``segno = k`` scan, a ``seg_``/``slice_`` read or a B+
    tree range scan per shard, each under the shard's history read lock.

    Pruning: a ``key = <literal|param>`` equality on the leaf (or an
    index-scan eq prefix) collapses the fan-out to the single owning
    shard; params are resolved at ``rows()`` time.  Gathering runs on
    the coordinator's shard thread pool (a multiprocessing exchange can
    slot in behind the same ``ShardTarget.submit`` seam); per-shard
    streams are merged ordered on the leaf's index range column when
    every shard scans it, else concatenated in shard order so results
    stay deterministic.
    """

    name = "Exchange"

    def __init__(self, plan, ctx: ExecContext, target) -> None:
        self.plan = plan
        self.ctx = ctx
        self.target = target
        #: shards touched by the most recent execution (EXPLAIN reads
        #: this through ``render_detail`` after the query ran)
        self.shards_hit = target.router.count
        self._key_value = self._key_eq_value()
        # an IndexScan leaf streams every shard in (prefix, range_column)
        # order with identical eq prefixes, so a k-way ordered merge
        # preserves the index order end to end
        self._merge_column = (
            plan.range_column
            if isinstance(plan, nodes.IndexScan)
            else None
        )
        #: representative per-shard sub-plan, compiled for rendering
        #: only (shard 0 with no pruning); execution re-optimizes per
        #: shard under each shard's read lock
        self.child = None
        if target.stores:
            try:
                self.child = self._compile_for(target.stores[0])
            except Exception:
                self.child = None

    @property
    def render_detail(self) -> str:
        where = (
            self.plan.function
            if isinstance(self.plan, nodes.FunctionScan)
            else self.plan.table
        )
        return (
            f" {where} shards={self.shards_hit}/{self.target.router.count}"
            f" by {self.target.key_column}"
        )

    # -- pruning -----------------------------------------------------------

    def _key_eq_value(self):
        """A compiled ``() -> key`` closure when the leaf pins the
        shard key with an equality, else ``None``."""
        key = self.target.key_column
        candidates = []
        if isinstance(self.plan, nodes.IndexScan):
            candidates.extend(
                value for column, value in self.plan.eq if column == key
            )
        for pred in self.plan.predicates:
            if (
                isinstance(pred, ast.BinaryOp)
                and pred.op == "="
            ):
                for side, other in (
                    (pred.left, pred.right),
                    (pred.right, pred.left),
                ):
                    if (
                        isinstance(side, ast.ColumnRef)
                        and side.column == key
                        and isinstance(
                            other, (ast.Literal, ast.DateLiteral, ast.Param)
                        )
                    ):
                        candidates.append(other)
        for value in candidates:
            if isinstance(value, (ast.Literal, ast.DateLiteral, ast.Param)):
                return self.ctx.compile_const(value)
        return None

    def _fanout(self, params: Mapping) -> list[int]:
        router = self.target.router
        if self._key_value is not None:
            key = self._key_value(None, params)
            if key is not None:
                return router.shards_for_key(key)
        return router.all_shards()

    # -- per-shard compilation ---------------------------------------------

    def _compile_for(self, store):
        """Re-optimize the logical leaf for one shard and compile it.

        The shard's ``segment_provider`` sees that shard's clustering
        state, so segment restriction / index selection pick the access
        path the shard would have picked standalone.  The coordinator's
        scope is reused — aliases and column lists are identical.
        """
        from repro.plan.optimizer import PlanContext, run_rules
        from repro.sql.planner import function_registry

        functions = function_registry(store.db)
        sub_plan = self.plan
        if getattr(store.db, "optimizer_enabled", True):
            sub_plan, _ = run_rules(
                sub_plan, PlanContext(store.db, self.ctx.scope, functions)
            )
        return compile_plan(
            sub_plan, ExecContext(store.db, self.ctx.scope, functions)
        )

    def _run_shard(self, store, params: Mapping) -> list:
        with store.history_lock.read():
            return list(self._compile_for(store).rows(params))

    # -- execution ---------------------------------------------------------

    def rows(self, params: Mapping) -> Iterator[Env]:
        self.target.prepare()
        fanout = self._fanout(params)
        self.shards_hit = len(fanout)
        _EXCHANGE_QUERIES.inc()
        _EXCHANGE_SHARDS_HIT.observe(len(fanout))
        _EXCHANGE_PRUNED.inc(self.target.router.count - len(fanout))
        stores = self.target.stores
        if len(fanout) == 1:
            yield from self._run_shard(stores[fanout[0]], params)
            return
        futures = [
            self.target.submit(
                lambda store=stores[index]: self._run_shard(store, params)
            )
            for index in fanout
        ]
        streams = [future.result() for future in futures]
        if self._merge_column is not None:
            import heapq

            slot = (self.plan.alias, self._merge_column)
            yield from heapq.merge(
                *streams,
                key=lambda env: _null_safe_key(env.get(slot)),
            )
            return
        for stream in streams:
            yield from stream

    def rid_rows(self, params: Mapping):
        raise SqlPlanError(
            f"cannot run DML against sharded history table "
            f"{self.target.table!r} through the coordinator"
        )


# -- joins and filters --------------------------------------------------------


class HashJoinOp:
    name = "HashJoin"

    def __init__(self, left, right, pairs: tuple) -> None:
        self.left = left
        self.right = right
        self.pairs = pairs
        self.left_keys = [pair[0] for pair in pairs]
        self.right_keys = [pair[1] for pair in pairs]

    def rows(self, params: Mapping) -> Iterator[Env]:
        build: dict[tuple, list[Env]] = {}
        for env in self.right.rows(params):
            key = tuple(env.get(k) for k in self.right_keys)
            if None in key:
                continue
            build.setdefault(key, []).append(env)
        for env in self.left.rows(params):
            key = tuple(env.get(k) for k in self.left_keys)
            for match in build.get(key, ()):  # inner join
                merged = dict(env)
                merged.update(match)
                yield merged


class NestedLoopOp:
    name = "NestedLoop"

    def __init__(self, left, right) -> None:
        self.left = left
        self.right = right

    def rows(self, params: Mapping) -> Iterator[Env]:
        inner = list(self.right.rows(params))
        for env in self.left.rows(params):
            for match in inner:
                merged = dict(env)
                merged.update(match)
                yield merged


class FilterOp:
    name = "Filter"

    def __init__(self, child, predicates: tuple, ctx: ExecContext) -> None:
        self.child = child
        self.predicates = predicates
        self.filters = [ctx.compile(p) for p in predicates]

    def rows(self, params: Mapping) -> Iterator[Env]:
        filters = self.filters
        for env in self.child.rows(params):
            if all(f(env, params) for f in filters):
                yield env

    def rid_rows(self, params: Mapping):
        filters = self.filters
        for rid, env in self.child.rid_rows(params):
            if all(f(env, params) for f in filters):
                yield rid, env


# -- sorting, projection, aggregation ----------------------------------------


class SortOp:
    name = "Sort"

    def __init__(self, child, keys: tuple, ctx: ExecContext) -> None:
        self.child = child
        self.keys = [
            (ctx.compile(expr), descending) for expr, descending in keys
        ]

    def rows(self, params: Mapping) -> Iterator[Env]:
        materialized = list(self.child.rows(params))
        for key, descending in reversed(self.keys):
            materialized.sort(
                key=lambda env: _null_safe_key(key(env, params)),
                reverse=descending,
            )
        return iter(materialized)


class ProjectOp:
    name = "Project"

    def __init__(self, child, items: tuple, ctx: ExecContext) -> None:
        self.child = child
        self.items = items
        self.exprs = [ctx.compile(item.expr) for item in items]

    def rows(self, params: Mapping) -> Iterator[tuple]:
        exprs = self.exprs
        for env in self.child.rows(params):
            yield tuple(expr(env, params) for expr in exprs)


class AggregateOp:
    name = "Aggregate"

    def __init__(self, child, plan: nodes.Aggregate, ctx: ExecContext) -> None:
        self.child = child
        self.plan = plan
        self.group_keys = [ctx.compile(g) for g in plan.group_by]
        self.agg_specs: list[_AggSpec] = []
        self.item_exprs = []
        for item in plan.items:
            rewritten = _rewrite_aggregates(
                item.expr, self.agg_specs, ctx.scope, ctx.functions
            )
            self.item_exprs.append(ctx.compile(rewritten))
        self.order_keys = []
        for expr, descending in plan.order_by:
            rewritten = _rewrite_aggregates(
                expr, self.agg_specs, ctx.scope, ctx.functions
            )
            self.order_keys.append((ctx.compile(rewritten), descending))

    def rows(self, params: Mapping) -> Iterator[tuple]:
        groups: dict[tuple, list[Env]] = {}
        representative: dict[tuple, Env] = {}
        for env in self.child.rows(params):
            key = tuple(k(env, params) for k in self.group_keys)
            groups.setdefault(key, []).append(env)
            representative.setdefault(key, env)
        if not groups and not self.group_keys:
            groups[()] = []
            representative[()] = {}
        out = []
        for key, members in groups.items():
            env = representative[key]
            agg_params = dict(params)
            for spec in self.agg_specs:
                agg_params[spec.placeholder] = spec.finish(members, params)
            row = tuple(item(env, agg_params) for item in self.item_exprs)
            order_key = tuple(
                _null_safe_key(k(env, agg_params)) for k, _ in self.order_keys
            )
            out.append((order_key, row))
        if self.order_keys:
            descending = [d for _, d in self.order_keys]
            # sort per key direction (stable, last key first)
            for index in reversed(range(len(descending))):
                out.sort(
                    key=lambda pair: pair[0][index], reverse=descending[index]
                )
        for _, row in out:
            yield row


class DistinctOp:
    name = "Distinct"

    def __init__(self, child) -> None:
        self.child = child

    def rows(self, params: Mapping) -> Iterator[tuple]:
        seen = set()
        for row in self.child.rows(params):
            key = tuple(
                str(v) if not isinstance(v, (int, float, str, type(None))) else v
                for v in row
            )
            if key not in seen:
                seen.add(key)
                yield row


class LimitOp:
    name = "Limit"

    def __init__(self, child, count: int) -> None:
        self.child = child
        self.count = count

    def rows(self, params: Mapping) -> Iterator[tuple]:
        return islice(self.child.rows(params), self.count)


# -- aggregate machinery ------------------------------------------------------


class _AggSpec:
    """One aggregate occurrence, rewritten to a synthetic parameter."""

    def __init__(self, placeholder: str, node, scope: Scope, functions) -> None:
        self.placeholder = placeholder
        self.node = node
        if isinstance(node, ast.XmlAggExpr):
            self.kind = "xmlagg"
            self.operand = compile_expr(node.operand, scope, functions)
            self.order_keys = [
                (compile_expr(spec.expr, scope, functions), spec.descending)
                for spec in node.order_by
            ]
        else:
            self.kind = node.name
            self.distinct = node.distinct
            if len(node.args) == 1 and isinstance(node.args[0], ast.Star):
                self.operand = None
            elif len(node.args) == 1:
                self.operand = compile_expr(node.args[0], scope, functions)
            else:
                raise SqlPlanError(
                    f"aggregate {node.name}() takes one argument"
                )

    def finish(self, rows: list[Env], params: Mapping):
        if self.kind == "xmlagg":
            if self.order_keys:
                def sort_key(env):
                    return tuple(
                        (-k(env, params) if desc else k(env, params))
                        for k, desc in self.order_keys
                    )
                rows = sorted(rows, key=sort_key)
            return xml_agg([self.operand(env, params) for env in rows])
        if self.kind == "count":
            if self.operand is None:
                return len(rows)
            values = [
                v
                for v in (self.operand(env, params) for env in rows)
                if v is not None
            ]
            if self.distinct:
                return len(set(values))
            return len(values)
        values = [
            v
            for v in (self.operand(env, params) for env in rows)
            if v is not None
        ]
        if self.distinct:
            values = list(dict.fromkeys(values))
        if not values:
            return None
        if self.kind == "sum":
            return sum(values)
        if self.kind == "avg":
            return sum(values) / len(values)
        if self.kind == "min":
            return min(values)
        if self.kind == "max":
            return max(values)
        raise SqlPlanError(f"unknown aggregate {self.kind}")


def _rewrite_aggregates(node, specs: list, scope: Scope, functions):
    """Replace aggregate sub-expressions with synthetic Param nodes."""
    if isinstance(node, ast.XmlAggExpr) or (
        isinstance(node, ast.FunctionCall) and node.name in AGGREGATE_NAMES
    ):
        placeholder = f"__agg{len(specs)}"
        specs.append(_AggSpec(placeholder, node, scope, functions))
        return ast.Param(placeholder)
    if isinstance(node, ast.BinaryOp):
        return ast.BinaryOp(
            node.op,
            _rewrite_aggregates(node.left, specs, scope, functions),
            _rewrite_aggregates(node.right, specs, scope, functions),
        )
    if isinstance(node, ast.UnaryOp):
        return ast.UnaryOp(
            node.op, _rewrite_aggregates(node.operand, specs, scope, functions)
        )
    if isinstance(node, ast.FunctionCall):
        return ast.FunctionCall(
            node.name,
            tuple(
                _rewrite_aggregates(a, specs, scope, functions)
                for a in node.args
            ),
            node.distinct,
        )
    if isinstance(node, ast.XmlElementExpr):
        return ast.XmlElementExpr(
            node.tag,
            tuple(
                ast.XmlAttribute(
                    _rewrite_aggregates(a.value, specs, scope, functions),
                    a.name,
                )
                for a in node.attributes
            ),
            tuple(
                _rewrite_aggregates(c, specs, scope, functions)
                for c in node.content
            ),
        )
    if isinstance(node, ast.CaseExpr):
        return ast.CaseExpr(
            tuple(
                (
                    _rewrite_aggregates(c, specs, scope, functions),
                    _rewrite_aggregates(r, specs, scope, functions),
                )
                for c, r in node.whens
            ),
            _rewrite_aggregates(node.else_result, specs, scope, functions)
            if node.else_result is not None
            else None,
        )
    return node


def _null_safe_key(value):
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, value)
    return (2, str(value))
