"""The rule-based optimizer: a fixed pipeline of plan rewrites.

Rules run in a deliberate order — each one's output is the next one's
input:

1. ``constant-folding``   — evaluate constant arithmetic, drop vacuous
   conjuncts;
2. ``predicate-pushdown`` — move single-alias conjuncts from the Filter
   into their leaf scans;
3. ``segment-restriction``— the paper's Section 6.4 rewrite: snapshot /
   slicing windows over a clustered archive replace the full
   ``history_<t>()`` read with segment-restricted access (needs the
   windows pushed down first);
4. ``index-selection``    — turn Scans with indexable predicates into
   B+ tree range scans (after segment restriction so a ``segno = k``
   equality can anchor the ``(segno, ...)`` indexes);
5. ``join-selection``     — consume equi-join conjuncts as hash-join
   keys.

Every firing is recorded (for EXPLAIN) and counted in the
``plan.rules_fired`` labeled metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.obs.metrics import get_registry

_RULES_FIRED = get_registry().labeled_counter("plan.rules_fired")


@dataclass(frozen=True)
class SegmentHints:
    """What the optimizer needs to know about one H-table's clustering.

    Provided per table by ``ArchIS`` through ``Database.segment_provider``
    so the SQL layer stays ignorant of the archive: ``compressed`` says
    whether the frozen segments live in BlockZIP BLOBs, and
    ``segments_overlapping(start, end)`` maps a date window to segment
    numbers (live segment included).
    """

    compressed: bool
    segments_overlapping: Callable[[int, int], list]


@dataclass(frozen=True)
class RuleFiring:
    """One rule application, e.g. ``segment-restriction: t1 -> segno 2``."""

    rule: str
    detail: str


@dataclass
class PlanContext:
    """Everything rules need: catalog access, name resolution, functions."""

    db: object
    scope: object
    functions: Mapping = field(default_factory=dict)

    def segment_hints(self, table_name: str) -> SegmentHints | None:
        provider = getattr(self.db, "segment_provider", None)
        if provider is None:
            return None
        return provider(table_name)


def run_rules(plan, ctx: PlanContext):
    """Apply the rule pipeline; returns ``(plan, tuple_of_firings)``."""
    from repro.plan import rules

    pipeline = (
        ("constant-folding", rules.fold_constants),
        ("predicate-pushdown", rules.push_down_predicates),
        ("segment-restriction", rules.restrict_segments),
        ("index-selection", rules.select_indexes),
        ("join-selection", rules.select_joins),
    )
    firings: list[RuleFiring] = []
    for name, rule in pipeline:
        plan, details = rule(plan, ctx)
        for detail in details:
            firings.append(RuleFiring(name, detail))
            _RULES_FIRED.inc(name)
    return plan, tuple(firings)
