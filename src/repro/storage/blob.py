"""BLOB store.

Compressed BlockZIP segments (paper Section 8.2) are stored as BLOBs.  Each
BLOB occupies whole pages of its own so that reading one compressed block
costs a predictable number of physical page reads, and the store's size
feeds the compression-ratio experiments (Fig. 13).
"""

from __future__ import annotations

import struct

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.page import PAGE_SIZE

_LEN = struct.Struct("<I")
_PAYLOAD_PER_PAGE = PAGE_SIZE  # pages carry raw payload; length in the map


class BlobStore:
    """Stores opaque byte strings, addressed by integer blob ids."""

    def __init__(self, pool: BufferPool) -> None:
        self._pool = pool
        self._blobs: dict[int, tuple[list[int], int]] = {}
        self._next_id = 1

    def put(self, data: bytes) -> int:
        """Store a blob, returning its id."""
        if not isinstance(data, (bytes, bytearray)):
            raise StorageError("blob payload must be bytes")
        data = bytes(data)
        pages: list[int] = []
        for offset in range(0, max(len(data), 1), _PAYLOAD_PER_PAGE):
            chunk = data[offset : offset + _PAYLOAD_PER_PAGE]
            page_no = self._pool.allocate()
            image = chunk + b"\x00" * (PAGE_SIZE - len(chunk))
            self._pool.put(page_no, image)
            pages.append(page_no)
        blob_id = self._next_id
        self._next_id += 1
        self._blobs[blob_id] = (pages, len(data))
        return blob_id

    def get(self, blob_id: int) -> bytes:
        """Fetch a blob by id."""
        try:
            pages, length = self._blobs[blob_id]
        except KeyError:
            raise StorageError(f"unknown blob id {blob_id}") from None
        chunks = [self._pool.get(page_no) for page_no in pages]
        return b"".join(chunks)[:length]

    def delete(self, blob_id: int) -> None:
        if blob_id not in self._blobs:
            raise StorageError(f"unknown blob id {blob_id}")
        del self._blobs[blob_id]

    def size_bytes(self) -> int:
        """Bytes occupied by all live blobs (page-rounded)."""
        return sum(len(pages) for pages, _ in self._blobs.values()) * PAGE_SIZE

    # -- persistence -------------------------------------------------------

    def snapshot(self) -> dict:
        """The blob directory as plain JSON-ready data.

        Persistence code must use this (and :meth:`restore`) instead of
        reaching into the private directory, so the sidecar format cannot
        drift from the store's internals.
        """
        return {
            "next_id": self._next_id,
            "entries": [
                {"id": blob_id, "pages": list(pages), "length": length}
                for blob_id, (pages, length) in sorted(self._blobs.items())
            ],
        }

    def restore(self, snapshot: dict) -> None:
        """Replace the directory with a :meth:`snapshot` payload."""
        try:
            next_id = snapshot["next_id"]
            blobs = {
                entry["id"]: (list(entry["pages"]), int(entry["length"]))
                for entry in snapshot["entries"]
            }
        except (KeyError, TypeError) as exc:
            raise StorageError(f"malformed blob directory snapshot: {exc}") from exc
        self._next_id = next_id
        self._blobs = blobs

    def __contains__(self, blob_id: int) -> bool:
        return blob_id in self._blobs

    def __len__(self) -> int:
        return len(self._blobs)
