"""Slotted pages.

A page is a fixed-size byte buffer laid out the classical way: a header,
a slot directory growing from the front and record payloads growing from the
back.  Deleted slots are tombstoned so record ids (page_no, slot_no) stay
stable, which the heap file and indexes rely on.

Layout (little-endian):

    [0:2)   slot count (including tombstones)
    [2:4)   free-space pointer (offset of the lowest used payload byte)
    [4:..)  slot directory: (offset: u16, length: u16) per slot;
            offset == 0xFFFF marks a tombstone
    ...
    [free .. PAGE_SIZE) record payloads
"""

from __future__ import annotations

import struct

from repro.errors import PageFullError, StorageError

PAGE_SIZE = 4096

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")
_TOMBSTONE = 0xFFFF


class SlottedPage:
    """A mutable slotted page over a ``bytearray`` buffer."""

    def __init__(self, data: bytes | bytearray | None = None) -> None:
        if data is None:
            self._buf = bytearray(PAGE_SIZE)
            self._set_header(0, PAGE_SIZE)
        else:
            if len(data) != PAGE_SIZE:
                raise StorageError(
                    f"page buffer must be {PAGE_SIZE} bytes, got {len(data)}"
                )
            self._buf = bytearray(data)

    # -- header helpers -------------------------------------------------

    def _header(self) -> tuple[int, int]:
        slot_count, free_ptr = _HEADER.unpack_from(self._buf, 0)
        if free_ptr == 0:
            # A zero-filled (freshly allocated) page: no record payload can
            # ever end at offset 0, so 0 is safely read as "empty page".
            free_ptr = PAGE_SIZE
        return slot_count, free_ptr

    def _set_header(self, slot_count: int, free_ptr: int) -> None:
        _HEADER.pack_into(self._buf, 0, slot_count, free_ptr)

    def _slot(self, slot_no: int) -> tuple[int, int]:
        return _SLOT.unpack_from(self._buf, _HEADER.size + slot_no * _SLOT.size)

    def _set_slot(self, slot_no: int, offset: int, length: int) -> None:
        _SLOT.pack_into(
            self._buf, _HEADER.size + slot_no * _SLOT.size, offset, length
        )

    # -- public API -------------------------------------------------------

    @property
    def slot_count(self) -> int:
        """Number of slots, including tombstones."""
        return self._header()[0]

    def free_space(self) -> int:
        """Bytes available for one more record (including its slot entry)."""
        slot_count, free_ptr = self._header()
        directory_end = _HEADER.size + slot_count * _SLOT.size
        gap = free_ptr - directory_end
        return max(0, gap - _SLOT.size)

    def insert(self, payload: bytes) -> int:
        """Insert a record payload, returning its slot number."""
        if not payload:
            raise StorageError("cannot insert empty payload")
        if len(payload) > self.free_space():
            raise PageFullError(
                f"payload of {len(payload)} bytes does not fit "
                f"({self.free_space()} free)"
            )
        slot_count, free_ptr = self._header()
        offset = free_ptr - len(payload)
        self._buf[offset:free_ptr] = payload
        self._set_slot(slot_count, offset, len(payload))
        self._set_header(slot_count + 1, offset)
        return slot_count

    def read(self, slot_no: int) -> bytes | None:
        """Return the payload at ``slot_no``, or None for a tombstone."""
        if slot_no < 0 or slot_no >= self.slot_count:
            raise StorageError(f"slot {slot_no} out of range")
        offset, length = self._slot(slot_no)
        if offset == _TOMBSTONE:
            return None
        return bytes(self._buf[offset : offset + length])

    def delete(self, slot_no: int) -> None:
        """Tombstone a slot.  The payload space is not reclaimed in place;
        heap compaction happens when segments are rewritten (paper §6.1)."""
        if slot_no < 0 or slot_no >= self.slot_count:
            raise StorageError(f"slot {slot_no} out of range")
        self._set_slot(slot_no, _TOMBSTONE, 0)

    def update_in_place(self, slot_no: int, payload: bytes) -> bool:
        """Overwrite a record if the new payload is no larger.

        Returns False when the payload does not fit, in which case the
        caller must delete + reinsert elsewhere.
        """
        offset, length = self._slot(slot_no)
        if offset == _TOMBSTONE:
            raise StorageError(f"slot {slot_no} is deleted")
        if len(payload) > length:
            return False
        self._buf[offset : offset + len(payload)] = payload
        self._set_slot(slot_no, offset, len(payload))
        return True

    def records(self) -> list[tuple[int, bytes]]:
        """All live ``(slot_no, payload)`` pairs in slot order."""
        out = []
        for slot_no in range(self.slot_count):
            payload = self.read(slot_no)
            if payload is not None:
                out.append((slot_no, payload))
        return out

    def to_bytes(self) -> bytes:
        """The raw page image."""
        return bytes(self._buf)
