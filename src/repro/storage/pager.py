"""File-backed pager with physical-IO accounting and WAL durability.

The pager reads and writes fixed-size pages in a single file and counts
every physical read and write.  The benchmarks use these counters to explain
wall-clock shapes, mirroring the paper's cold-cache measurement protocol
(Section 7: the authors unmounted the data drive between queries; we expose
:meth:`Pager.io_stats` and let the buffer pool be reset instead).

File-backed pagers default to ``durability="wal"``: page writes and staged
sidecars are appended to a checksummed write-ahead log
(:mod:`repro.storage.wal`) and only reach the main file at
:meth:`Pager.checkpoint`, so a whole save commits or disappears as one
unit.  Opening a pager runs recovery — committed WAL frames are replayed,
torn tails discarded.  ``durability="none"`` keeps the original
write-in-place behaviour (still fsync-correct on :meth:`sync`/:meth:`close`)
for benchmarks that model raw page IO.
"""

from __future__ import annotations

import io
import os
import threading
from dataclasses import dataclass

from repro.errors import StorageError
from repro.obs.metrics import get_registry
from repro.storage.atomicio import atomic_write_bytes, remove_stale_tmp_files
from repro.storage.crashpoints import fire
from repro.storage.page import PAGE_SIZE
from repro.storage.wal import RecoveryReport, WriteAheadLog, require_durability

# Global physical-IO counters, aggregated across every pager instance.
_READS = get_registry().counter("pager.reads")
_WRITES = get_registry().counter("pager.writes")
_ALLOCATIONS = get_registry().counter("pager.allocations")
#: pages staged in the WAL overlay, awaiting checkpoint (process-wide;
#: last pager to change wins — one ArchIS per process in practice)
_DIRTY_PAGES = get_registry().gauge("pager.dirty_pages")

WAL_SUFFIX = ".wal"


@dataclass
class IoStats:
    """Physical IO counters for one pager."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0

    def snapshot(self) -> "IoStats":
        return IoStats(self.reads, self.writes, self.allocations)

    def delta(self, earlier: "IoStats") -> "IoStats":
        return IoStats(
            self.reads - earlier.reads,
            self.writes - earlier.writes,
            self.allocations - earlier.allocations,
        )


class Pager:
    """Reads/writes :data:`PAGE_SIZE` pages from a file or memory buffer.

    Passing ``path=None`` keeps the store in memory (used heavily by the
    test-suite) and forces ``durability="none"``; the IO accounting
    behaves identically either way.
    """

    def __init__(
        self,
        path: str | None = None,
        durability: str = "wal",
        group_commit: bool = True,
        group_window: float = 0.002,
    ) -> None:
        require_durability(durability)
        self._path = path
        self._group_commit = group_commit
        self._group_window = group_window
        self._durability = durability if path is not None else "none"
        if path is None:
            self._file: io.BufferedRandom | io.BytesIO = io.BytesIO()
        else:
            mode = "r+b" if os.path.exists(path) else "w+b"
            self._file = open(path, mode)
        self._page_count = self._measure_page_count()
        self.stats = IoStats()
        self._closed = False
        # One internal lock serializes page-table mutation, the shared
        # file handle's seek/read cycles and the stats counters; the lock
        # is re-entrant because checkpoint() composes locked operations.
        # Lock order is pager → WAL, never the reverse.
        self._lock = threading.RLock()
        # The transaction id tagged onto WAL frames is per *thread*: each
        # writer thread runs one transaction at a time, and frames it
        # appends belong to that transaction (0 = the anonymous
        # single-writer transaction, the pre-concurrency behaviour).
        self._txn_local = threading.local()
        # WAL state: page/sidecar images written since the last checkpoint
        # live here (and in the log); the main file is only touched by
        # checkpoint().  ``_dirty_txns`` tracks which transactions have
        # appended frames that are not yet covered by a COMMIT.
        self._overlay: dict[int, bytes] = {}
        self._meta_overlay: dict[str, bytes] = {}
        self._wal: WriteAheadLog | None = None
        self._dirty_txns: set[int] = set()
        self.recovery_report: RecoveryReport | None = None
        if path is not None:
            stale = remove_stale_tmp_files(path)
            if self._durability == "wal":
                self._wal = WriteAheadLog(
                    path + WAL_SUFFIX,
                    group_commit=group_commit,
                    group_window=group_window,
                )
                self._recover(stale)

    # -- WAL transaction tagging ------------------------------------------

    @property
    def wal_txn(self) -> int:
        """The WAL transaction id for the calling thread (0 = anonymous)."""
        return getattr(self._txn_local, "txn_id", 0)

    def set_wal_txn(self, txn_id: int) -> None:
        """Tag this thread's subsequent WAL frames with ``txn_id``."""
        self._txn_local.txn_id = txn_id

    def clear_wal_txn(self) -> None:
        self._txn_local.txn_id = 0

    def discard_wal_txn(self, txn_id: int) -> None:
        """Forget a transaction's dirty flag (abort path).

        Its frames stay in the log but no COMMIT will ever promote them;
        the next checkpoint truncation reclaims the space.
        """
        with self._lock:
            self._dirty_txns.discard(txn_id)

    def _measure_page_count(self) -> int:
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % PAGE_SIZE:
            raise StorageError(
                f"file size {size} is not a multiple of the page size"
            )
        return size // PAGE_SIZE

    def _recover(self, stale_tmp_files: list[str]) -> None:
        """Replay committed WAL frames left by a crash, drop the rest."""
        pages, metas, report = self._wal.scan()
        report.stale_tmp_files = stale_tmp_files
        self.recovery_report = report
        if report.replayed:
            self._overlay = pages
            self._meta_overlay = metas
            _DIRTY_PAGES.set(len(self._overlay))
            if pages:
                self._page_count = max(
                    self._page_count, max(pages) + 1
                )
            self._apply_checkpoint()
        elif self._wal.size_bytes():
            # only torn/uncommitted frames: the save never committed,
            # so the pre-save state on the main file is authoritative.
            self._wal.truncate()

    # -- public API -------------------------------------------------------

    @property
    def page_count(self) -> int:
        return self._page_count

    @property
    def path(self) -> str | None:
        return self._path

    @property
    def durability(self) -> str:
        """``"wal"`` (atomic, recoverable saves) or ``"none"``."""
        return self._durability

    def allocate(self) -> int:
        """Append a zeroed page, returning its page number."""
        with self._lock:
            self._check_open()
            page_no = self._page_count
            zero = b"\x00" * PAGE_SIZE
            if self._wal is not None:
                self._wal.append_page(page_no, zero, self.wal_txn)
                self._overlay[page_no] = zero
                self._dirty_txns.add(self.wal_txn)
                _DIRTY_PAGES.set(len(self._overlay))
            else:
                self._file.seek(page_no * PAGE_SIZE)
                self._file.write(zero)
            self._page_count += 1
            self.stats.allocations += 1
            self.stats.writes += 1
        _ALLOCATIONS.inc()
        _WRITES.inc()
        return page_no

    def read_page(self, page_no: int) -> bytes:
        with self._lock:
            self._check_open()
            self._check_range(page_no)
            data = self._overlay.get(page_no)
            if data is None:
                self._file.seek(page_no * PAGE_SIZE)
                data = self._file.read(PAGE_SIZE)
                if len(data) != PAGE_SIZE:
                    raise StorageError(f"short read on page {page_no}")
            self.stats.reads += 1
        _READS.inc()
        return data

    def write_page(self, page_no: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise StorageError(
                f"page image must be {PAGE_SIZE} bytes, got {len(data)}"
            )
        data = bytes(data)
        with self._lock:
            self._check_open()
            self._check_range(page_no)
            if self._wal is not None:
                self._wal.append_page(page_no, data, self.wal_txn)
                self._overlay[page_no] = data
                self._dirty_txns.add(self.wal_txn)
                _DIRTY_PAGES.set(len(self._overlay))
            else:
                self._file.seek(page_no * PAGE_SIZE)
                self._file.write(data)
                self._file.flush()
                fire("pager.page_written")
            self.stats.writes += 1
        _WRITES.inc()

    def write_sidecar(self, suffix: str, data: bytes) -> str:
        """Write ``<path><suffix>`` as part of the durability protocol.

        In WAL mode the payload is staged in the log and lands atomically
        at the next :meth:`checkpoint`, in the same transaction as the
        page writes; in ``none`` mode it is written atomically right away
        (tmp file → fsync → ``os.replace``).  Returns the final path.
        """
        if self._path is None:
            raise StorageError("memory pagers have no sidecar files")
        path = self._path + suffix
        with self._lock:
            self._check_open()
            if self._wal is not None:
                self._wal.append_meta(suffix, bytes(data), self.wal_txn)
                self._meta_overlay[suffix] = bytes(data)
                self._dirty_txns.add(self.wal_txn)
                return path
        return atomic_write_bytes(path, bytes(data))

    def size_bytes(self) -> int:
        """Total bytes occupied by the paged file."""
        return self._page_count * PAGE_SIZE

    def truncate(self) -> None:
        """Drop every page (used when segments are rewritten)."""
        with self._lock:
            self._check_open()
            self._overlay.clear()
            _DIRTY_PAGES.set(0)
            if self._wal is not None:
                self._wal.truncate()
                self._dirty_txns.clear()
            self._file.seek(0)
            self._file.truncate(0)
            self._page_count = 0
            # truncating is a physical write to the main file: account for it
            self.stats.writes += 1
        _WRITES.inc()

    def commit(self, cause: str = "txn") -> None:
        """Make this thread's transaction durable (COMMIT frame + fsync).

        Writes stay in the log (and the in-memory overlay) until the next
        :meth:`checkpoint`; after a crash, recovery replays them.  In
        ``none`` mode this is a plain flush + fsync of the main file.
        The group-commit wait happens *outside* the pager lock so other
        threads keep reading and writing pages while a leader fsyncs.
        ``cause`` labels the ``wal.commits.cause`` counter ("txn",
        "ingest", ...).
        """
        txn = self.wal_txn
        with self._lock:
            self._check_open()
            if self._wal is None:
                self._fsync_main()
                return
            dirty = txn in self._dirty_txns
            self._dirty_txns.discard(txn)
        if dirty:
            self._wal.append_commit(txn, cause=cause)

    def checkpoint(self) -> None:
        """Commit, then apply the log to the main file and truncate it.

        Callers must quiesce writers first (the transaction layer runs
        checkpoints with no transaction in flight): applying the overlay
        publishes every staged page to the main file and drops the log.
        """
        self._check_open()
        if self._wal is None:
            with self._lock:
                self._fsync_main()
            return
        self.commit()
        with self._lock:
            if not self._overlay and not self._meta_overlay:
                return
            self._apply_checkpoint()

    def _apply_checkpoint(self) -> None:
        fire("wal.checkpoint.begin")
        for page_no in sorted(self._overlay):
            self._file.seek(page_no * PAGE_SIZE)
            self._file.write(self._overlay[page_no])
            self._file.flush()
            fire("wal.checkpoint.page_applied")
        self._fsync_main()
        fire("wal.checkpoint.pages_synced")
        for suffix in sorted(self._meta_overlay):
            atomic_write_bytes(self._path + suffix, self._meta_overlay[suffix])
        self._wal.truncate()  # fires wal.checkpoint.truncated
        self._overlay.clear()
        self._meta_overlay.clear()
        _DIRTY_PAGES.set(0)

    def sync(self) -> None:
        """Make writes durable: WAL commit, or flush + fsync in ``none``."""
        self._check_open()
        if self._wal is not None:
            self.commit()
        else:
            with self._lock:
                self._fsync_main()
        fire("pager.synced")

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                if self._wal is not None:
                    self.checkpoint()
                    self._wal.close()
                else:
                    self._fsync_main()
                self._file.close()
                self._closed = True

    def io_stats(self) -> IoStats:
        with self._lock:
            return self.stats.snapshot()

    # -- helpers ------------------------------------------------------------

    def _fsync_main(self) -> None:
        """Flush, then fsync when file-backed (BytesIO has no fd)."""
        self._file.flush()
        if self._path is not None:
            os.fsync(self._file.fileno())

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("pager is closed")

    def _check_range(self, page_no: int) -> None:
        if page_no < 0 or page_no >= self._page_count:
            raise StorageError(
                f"page {page_no} out of range (0..{self._page_count - 1})"
            )

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
