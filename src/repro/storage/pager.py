"""File-backed pager with physical-IO accounting.

The pager reads and writes fixed-size pages in a single file and counts
every physical read and write.  The benchmarks use these counters to explain
wall-clock shapes, mirroring the paper's cold-cache measurement protocol
(Section 7: the authors unmounted the data drive between queries; we expose
:meth:`Pager.io_stats` and let the buffer pool be reset instead).
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass

from repro.errors import StorageError
from repro.obs.metrics import get_registry
from repro.storage.page import PAGE_SIZE

# Global physical-IO counters, aggregated across every pager instance.
_READS = get_registry().counter("pager.reads")
_WRITES = get_registry().counter("pager.writes")
_ALLOCATIONS = get_registry().counter("pager.allocations")


@dataclass
class IoStats:
    """Physical IO counters for one pager."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0

    def snapshot(self) -> "IoStats":
        return IoStats(self.reads, self.writes, self.allocations)

    def delta(self, earlier: "IoStats") -> "IoStats":
        return IoStats(
            self.reads - earlier.reads,
            self.writes - earlier.writes,
            self.allocations - earlier.allocations,
        )


class Pager:
    """Reads/writes :data:`PAGE_SIZE` pages from a file or memory buffer.

    Passing ``path=None`` keeps the store in memory (used heavily by the
    test-suite); the IO accounting behaves identically either way.
    """

    def __init__(self, path: str | None = None) -> None:
        self._path = path
        if path is None:
            self._file: io.BufferedRandom | io.BytesIO = io.BytesIO()
        else:
            mode = "r+b" if os.path.exists(path) else "w+b"
            self._file = open(path, mode)
        self._page_count = self._measure_page_count()
        self.stats = IoStats()
        self._closed = False

    def _measure_page_count(self) -> int:
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % PAGE_SIZE:
            raise StorageError(
                f"file size {size} is not a multiple of the page size"
            )
        return size // PAGE_SIZE

    # -- public API -------------------------------------------------------

    @property
    def page_count(self) -> int:
        return self._page_count

    @property
    def path(self) -> str | None:
        return self._path

    def allocate(self) -> int:
        """Append a zeroed page, returning its page number."""
        self._check_open()
        page_no = self._page_count
        self._file.seek(page_no * PAGE_SIZE)
        self._file.write(b"\x00" * PAGE_SIZE)
        self._page_count += 1
        self.stats.allocations += 1
        self.stats.writes += 1
        _ALLOCATIONS.inc()
        _WRITES.inc()
        return page_no

    def read_page(self, page_no: int) -> bytes:
        self._check_open()
        self._check_range(page_no)
        self._file.seek(page_no * PAGE_SIZE)
        data = self._file.read(PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise StorageError(f"short read on page {page_no}")
        self.stats.reads += 1
        _READS.inc()
        return data

    def write_page(self, page_no: int, data: bytes) -> None:
        self._check_open()
        self._check_range(page_no)
        if len(data) != PAGE_SIZE:
            raise StorageError(
                f"page image must be {PAGE_SIZE} bytes, got {len(data)}"
            )
        self._file.seek(page_no * PAGE_SIZE)
        self._file.write(data)
        self.stats.writes += 1
        _WRITES.inc()

    def size_bytes(self) -> int:
        """Total bytes occupied by the paged file."""
        return self._page_count * PAGE_SIZE

    def truncate(self) -> None:
        """Drop every page (used when segments are rewritten)."""
        self._check_open()
        self._file.seek(0)
        self._file.truncate(0)
        self._page_count = 0

    def sync(self) -> None:
        self._check_open()
        self._file.flush()

    def close(self) -> None:
        if not self._closed:
            self._file.flush()
            self._file.close()
            self._closed = True

    def io_stats(self) -> IoStats:
        return self.stats.snapshot()

    # -- helpers ------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("pager is closed")

    def _check_range(self, page_no: int) -> None:
        if page_no < 0 or page_no >= self._page_count:
            raise StorageError(
                f"page {page_no} out of range (0..{self._page_count - 1})"
            )

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
