"""Heap files: unordered collections of records addressed by RID.

A RID is ``(page_no, slot_no)``.  A heap file owns a contiguous run of pages
inside a shared buffer pool/pager.  Page numbers are tracked per heap (heaps
are allocated interleaved in one file), so a heap scan touches exactly its
own pages — this is what makes segment clustering measurable.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import PageFullError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.page import SlottedPage
from repro.storage.record import decode_record, encode_record

Rid = tuple[int, int]


class HeapFile:
    """Append-mostly record heap over a buffer pool."""

    def __init__(self, pool: BufferPool, name: str = "heap") -> None:
        self._pool = pool
        self._name = name
        self._pages: list[int] = []
        self._live = 0

    @property
    def name(self) -> str:
        return self._name

    @property
    def page_numbers(self) -> list[int]:
        return list(self._pages)

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def record_count(self) -> int:
        return self._live

    def insert(self, values: tuple) -> Rid:
        """Append a record, returning its RID."""
        payload = encode_record(values)
        if self._pages:
            last = self._pages[-1]
            page = SlottedPage(self._pool.get(last))
            try:
                slot = page.insert(payload)
                self._pool.put(last, page.to_bytes())
                self._live += 1
                return (last, slot)
            except PageFullError:
                pass
        page_no = self._pool.allocate()
        self._pages.append(page_no)
        page = SlottedPage(self._pool.get(page_no))
        slot = page.insert(payload)  # a fresh page always fits sane records
        self._pool.put(page_no, page.to_bytes())
        self._live += 1
        return (page_no, slot)

    def read(self, rid: Rid) -> tuple:
        """Fetch the record at ``rid``."""
        page_no, slot_no = rid
        payload = SlottedPage(self._pool.get(page_no)).read(slot_no)
        if payload is None:
            raise StorageError(f"record {rid} is deleted")
        return decode_record(payload)

    def update(self, rid: Rid, values: tuple) -> Rid:
        """Rewrite the record at ``rid``; may relocate it.

        Returns the (possibly new) RID.  Callers maintaining indexes must
        re-key when the RID changes.
        """
        page_no, slot_no = rid
        payload = encode_record(values)
        page = SlottedPage(self._pool.get(page_no))
        if page.update_in_place(slot_no, payload):
            self._pool.put(page_no, page.to_bytes())
            return rid
        page.delete(slot_no)
        self._pool.put(page_no, page.to_bytes())
        self._live -= 1
        return self.insert(values)

    def delete(self, rid: Rid) -> None:
        """Tombstone the record at ``rid``."""
        page_no, slot_no = rid
        page = SlottedPage(self._pool.get(page_no))
        page.delete(slot_no)
        self._pool.put(page_no, page.to_bytes())
        self._live -= 1

    def scan(self) -> Iterator[tuple[Rid, tuple]]:
        """Iterate live records in page order."""
        for page_no in self._pages:
            page = SlottedPage(self._pool.get(page_no))
            for slot_no, payload in page.records():
                yield (page_no, slot_no), decode_record(payload)

    def adopt_pages(self, pages: list[int]) -> None:
        """Attach existing pages (catalog restore) and recount records."""
        self._pages = list(pages)
        self._live = sum(1 for _ in self.scan())

    def compact(self) -> list[tuple]:
        """Rewrite live records densely into fresh pages.

        Returns the records in their new storage order.  RIDs change, so
        callers owning indexes must rebuild them (see ``Table.compact``).
        Old pages are released from this heap's page list (the shared
        pager file is append-only; released pages model reclaimed space).
        """
        rows = [row for _, row in self.scan()]
        self._pages.clear()
        self._live = 0
        for row in rows:
            self.insert(row)
        return rows

    def truncate(self) -> None:
        """Forget every record.  Pages are abandoned, not reclaimed; the
        database compacts by rebuilding files, as the paper's segment
        rewrite does."""
        for page_no in self._pages:
            page = SlottedPage(self._pool.get(page_no))
            for slot_no, _ in page.records():
                page.delete(slot_no)
            self._pool.put(page_no, page.to_bytes())
        self._pages.clear()
        self._live = 0

    def size_bytes(self) -> int:
        """Bytes occupied by this heap's pages."""
        from repro.storage.page import PAGE_SIZE

        return len(self._pages) * PAGE_SIZE
