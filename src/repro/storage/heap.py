"""Heap files: unordered collections of records addressed by RID.

A RID is ``(page_no, slot_no)``.  A heap file owns a contiguous run of pages
inside a shared buffer pool/pager.  Page numbers are tracked per heap (heaps
are allocated interleaved in one file), so a heap scan touches exactly its
own pages — this is what makes segment clustering measurable.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import PageFullError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.page import SlottedPage
from repro.storage.record import decode_record, encode_record

Rid = tuple[int, int]


class HeapFile:
    """Append-mostly record heap over a buffer pool."""

    def __init__(self, pool: BufferPool, name: str = "heap") -> None:
        self._pool = pool
        self._name = name
        self._pages: list[int] = []
        self._live = 0

    @property
    def name(self) -> str:
        return self._name

    @property
    def page_numbers(self) -> list[int]:
        return list(self._pages)

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def record_count(self) -> int:
        return self._live

    def insert(self, values: tuple) -> Rid:
        """Append a record, returning its RID."""
        payload = encode_record(values)
        if self._pages:
            last = self._pages[-1]
            page = SlottedPage(self._pool.get(last))
            try:
                slot = page.insert(payload)
                self._pool.put(last, page.to_bytes())
                self._live += 1
                return (last, slot)
            except PageFullError:
                pass
        page_no = self._pool.allocate()
        self._pages.append(page_no)
        page = SlottedPage(self._pool.get(page_no))
        slot = page.insert(payload)  # a fresh page always fits sane records
        self._pool.put(page_no, page.to_bytes())
        self._live += 1
        return (page_no, slot)

    def insert_many(self, rows: list[tuple]) -> list[Rid]:
        """Append many records, writing each filled page back once.

        Produces exactly the RIDs a sequence of :meth:`insert` calls
        would (append-only, same order) — it only batches the per-row
        pool round-trip (fetch, whole-page serialize, write-through)
        into one per page, which is what makes the freeze switch's
        live-copy cheap enough for the ingest path.
        """
        return self.insert_payloads(
            [encode_record(values) for values in rows]
        )

    def insert_payloads(self, payloads: list[bytes]) -> list[Rid]:
        """Bulk-append pre-encoded record payloads (see :meth:`insert_many`).

        The physical-clone path: maintenance copies a row to another
        segment by splicing the stored payload instead of re-encoding
        the decoded tuple.  Callers must pass payloads produced by
        :func:`~repro.storage.record.encode_record`.
        """
        rids: list[Rid] = []
        page_no: int | None = self._pages[-1] if self._pages else None
        page = SlottedPage(self._pool.get(page_no)) if page_no is not None else None
        dirty = False
        fresh = False
        for payload in payloads:
            while True:
                if page is None:
                    page_no = self._pool.allocate()
                    self._pages.append(page_no)
                    page = SlottedPage(self._pool.get(page_no))
                    dirty = False
                    fresh = True
                try:
                    slot = page.insert(payload)
                except PageFullError:
                    if fresh:
                        raise  # a fresh page always fits sane records
                    if dirty:
                        self._pool.put(page_no, page.to_bytes())
                    page = None
                    continue
                dirty = True
                fresh = False
                self._live += 1
                rids.append((page_no, slot))
                break
        if dirty:
            self._pool.put(page_no, page.to_bytes())
        return rids

    def read(self, rid: Rid) -> tuple:
        """Fetch the record at ``rid``."""
        page_no, slot_no = rid
        payload = SlottedPage(self._pool.get(page_no)).read(slot_no)
        if payload is None:
            raise StorageError(f"record {rid} is deleted")
        return decode_record(payload)

    def update(self, rid: Rid, values: tuple) -> Rid:
        """Rewrite the record at ``rid``; may relocate it.

        Returns the (possibly new) RID.  Callers maintaining indexes must
        re-key when the RID changes.
        """
        page_no, slot_no = rid
        payload = encode_record(values)
        page = SlottedPage(self._pool.get(page_no))
        if page.update_in_place(slot_no, payload):
            self._pool.put(page_no, page.to_bytes())
            return rid
        page.delete(slot_no)
        self._pool.put(page_no, page.to_bytes())
        self._live -= 1
        return self.insert(values)

    def delete(self, rid: Rid) -> None:
        """Tombstone the record at ``rid``."""
        page_no, slot_no = rid
        page = SlottedPage(self._pool.get(page_no))
        page.delete(slot_no)
        self._pool.put(page_no, page.to_bytes())
        self._live -= 1

    def read_many(self, rids: list[Rid]) -> list[tuple]:
        """Fetch many records, parsing each touched page only once.

        Row-at-a-time :meth:`read` pays a pool fetch (which copies the
        page image) plus page-header parsing per record; an index range
        scan in key order revisits the same pages in arbitrary order and
        multiplies that cost.  Grouping by page keeps bulk reads linear
        in pages touched, not records read.  Results come back in
        ``rids`` order.
        """
        pages: dict[int, SlottedPage] = {}
        out = []
        for rid in rids:
            page_no, slot_no = rid
            page = pages.get(page_no)
            if page is None:
                page = pages[page_no] = SlottedPage(self._pool.get(page_no))
            payload = page.read(slot_no)
            if payload is None:
                raise StorageError(f"record {rid} is deleted")
            out.append(decode_record(payload))
        return out

    def read_records_containing(
        self, rids: list[Rid], pattern: bytes
    ) -> list[tuple[bytes, tuple]]:
        """Decode only the records whose payload contains ``pattern``.

        Byte-level prefilter over a bulk read (see
        :func:`~repro.storage.record.encoded_int`): records whose raw
        payload cannot contain the searched field value are skipped
        before any decoding.  Conservative — callers must re-check the
        decoded field.  Returns matching ``(payload, row)`` pairs in
        ``rids`` order; the raw payload rides along so physical clones
        can splice it instead of re-encoding.
        """
        pages: dict[int, SlottedPage] = {}
        out = []
        for rid in rids:
            page_no, slot_no = rid
            page = pages.get(page_no)
            if page is None:
                page = pages[page_no] = SlottedPage(self._pool.get(page_no))
            payload = page.read(slot_no)
            if payload is None:
                raise StorageError(f"record {rid} is deleted")
            if pattern in payload:
                out.append((payload, decode_record(payload)))
        return out

    def scan(self) -> Iterator[tuple[Rid, tuple]]:
        """Iterate live records in page order."""
        for page_no in self._pages:
            page = SlottedPage(self._pool.get(page_no))
            for slot_no, payload in page.records():
                yield (page_no, slot_no), decode_record(payload)

    def adopt_pages(self, pages: list[int]) -> None:
        """Attach existing pages (catalog restore) and recount records."""
        self._pages = list(pages)
        self._live = sum(1 for _ in self.scan())

    def compact(self) -> list[tuple]:
        """Rewrite live records densely into fresh pages.

        Returns the records in their new storage order.  RIDs change, so
        callers owning indexes must rebuild them (see ``Table.compact``).
        Old pages are released from this heap's page list (the shared
        pager file is append-only; released pages model reclaimed space).
        """
        rows = [row for _, row in self.scan()]
        self._pages.clear()
        self._live = 0
        for row in rows:
            self.insert(row)
        return rows

    def prune_empty_pages(self) -> int:
        """Drop pages with no live records from this heap's page list.

        Surviving records keep their RIDs (nothing is rewritten), so
        callers' indexes stay valid — unlike :meth:`compact`.  Costs one
        page-header walk instead of a full decode/re-encode pass; the
        background segment rewrite relies on this, because its deletes
        empty whole pages (the frozen segment's rows were clustered) and
        a full compact would stall concurrent appliers for O(heap).

        Returns the number of pages released.
        """
        kept = []
        for page_no in self._pages:
            page = SlottedPage(self._pool.get(page_no))
            if any(True for _ in page.records()):
                kept.append(page_no)
        dropped = len(self._pages) - len(kept)
        self._pages = kept
        return dropped

    def truncate(self) -> None:
        """Forget every record.  Pages are abandoned, not reclaimed; the
        database compacts by rebuilding files, as the paper's segment
        rewrite does."""
        for page_no in self._pages:
            page = SlottedPage(self._pool.get(page_no))
            for slot_no, _ in page.records():
                page.delete(slot_no)
            self._pool.put(page_no, page.to_bytes())
        self._pages.clear()
        self._live = 0

    def size_bytes(self) -> int:
        """Bytes occupied by this heap's pages."""
        from repro.storage.page import PAGE_SIZE

        return len(self._pages) * PAGE_SIZE
