"""Fault-injection crash points for durability testing.

The durability protocol (WAL append → commit fsync → checkpoint → atomic
sidecar replace) is only trustworthy if a "crash" at *every* write/fsync
boundary leaves a recoverable state.  Each boundary in the pager, the WAL
and the atomic sidecar writer calls :func:`fire` with a stable name; in
production the call is a dict lookup and a ``None`` check.  Tests arm the
registry to either *record* the points a protocol crosses (to enumerate
the crash matrix) or to raise :class:`InjectedCrash` at the N-th crossing
of one point, simulating the process dying there.

A hard rule for instrumented code: file buffers must be flushed **before**
firing a crash point, so that the bytes "on disk" at the moment of an
injected crash are exactly the bytes a subsequent reopen will observe.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator


class InjectedCrash(Exception):
    """A simulated process death, raised by an armed crash point.

    Deliberately *not* a :class:`~repro.errors.ReproError`: library code
    must never catch it, exactly as it could not catch a real ``kill -9``.
    """

    def __init__(self, point: str, occurrence: int) -> None:
        super().__init__(f"injected crash at {point!r} (occurrence {occurrence})")
        self.point = point
        self.occurrence = occurrence


class CrashPointRegistry:
    """Process-wide registry of crash points.

    Disarmed (the default), :meth:`fire` costs two attribute reads.
    """

    def __init__(self) -> None:
        self._callback: Callable[[str, int], None] | None = None
        self._recorder: list[str] | None = None
        self._counts: dict[str, int] = {}
        # Occurrence counting must stay exact when several writer threads
        # cross the same point; the lock is only taken while armed.
        self._lock = threading.Lock()

    @property
    def armed(self) -> bool:
        return self._callback is not None or self._recorder is not None

    def fire(self, name: str) -> None:
        """Cross the crash point ``name`` (no-op unless armed)."""
        if self._callback is None and self._recorder is None:
            return
        with self._lock:
            count = self._counts.get(name, 0) + 1
            self._counts[name] = count
            if self._recorder is not None:
                self._recorder.append(name)
        if self._callback is not None:
            self._callback(name, count)

    def reset(self) -> None:
        """Disarm and forget all occurrence counts."""
        self._callback = None
        self._recorder = None
        self._counts = {}

    @contextmanager
    def recording(self) -> Iterator[list[str]]:
        """Record every crash point fired, in order, without crashing.

        The yielded list grows as points fire; use it to enumerate the
        ``(name, occurrence)`` matrix a protocol actually crosses.
        """
        self.reset()
        fired: list[str] = []
        self._recorder = fired
        try:
            yield fired
        finally:
            self.reset()

    @contextmanager
    def crash_at(self, name: str, occurrence: int = 1) -> Iterator[None]:
        """Raise :class:`InjectedCrash` at the N-th firing of ``name``."""
        self.reset()

        def callback(fired: str, count: int) -> None:
            if fired == name and count == occurrence:
                raise InjectedCrash(name, count)

        self._callback = callback
        try:
            yield
        finally:
            self.reset()

    @contextmanager
    def crash_from(self, name: str, occurrence: int = 1) -> Iterator[None]:
        """Raise :class:`InjectedCrash` at *every* crossing from the N-th on.

        ``crash_at`` kills exactly one crossing, which under concurrency
        means only one thread "dies" while the rest keep writing — not
        how a process crash behaves.  This variant models the process
        dying at the N-th crossing: that thread and every later one to
        reach the point raise, so no post-crash writes leak to disk.
        """
        self.reset()

        def callback(fired: str, count: int) -> None:
            if fired == name and count >= occurrence:
                raise InjectedCrash(name, count)

        self._callback = callback
        try:
            yield
        finally:
            self.reset()


_CRASH_POINTS = CrashPointRegistry()


def get_crash_points() -> CrashPointRegistry:
    """The process-wide crash-point registry."""
    return _CRASH_POINTS


def fire(name: str) -> None:
    """Module-level shorthand for ``get_crash_points().fire(name)``."""
    _CRASH_POINTS.fire(name)
