"""Binary record codec.

Rows are serialized into a compact, self-describing binary format so that
heap pages hold real bytes: storage-size experiments (paper Figs. 7, 11, 13)
measure actual on-disk footprints, not Python object counts.

Supported field types:

``i``  64-bit signed integer (also used for DATE as days since epoch)
``f``  64-bit float
``s``  UTF-8 string, 2-byte length prefix
``b``  raw bytes, 4-byte length prefix
``n``  NULL (encoded in the null bitmap, no payload)
"""

from __future__ import annotations

import struct

from repro.errors import StorageError

_INT = struct.Struct("<q")
_FLOAT = struct.Struct("<d")
_SHORT = struct.Struct("<H")
_LONG = struct.Struct("<I")


def encode_record(values: tuple) -> bytes:
    """Serialize a tuple of Python values into record bytes.

    The layout is: field count (1 byte), null bitmap (ceil(n/8) bytes),
    per-field type tag + payload.
    """
    count = len(values)
    if count > 255:
        raise StorageError(f"record too wide: {count} fields")
    bitmap = bytearray((count + 7) // 8)
    parts: list[bytes] = []
    for position, value in enumerate(values):
        if value is None:
            bitmap[position // 8] |= 1 << (position % 8)
            continue
        if isinstance(value, bool):
            # bools are stored as integers; keep them out of the float path
            parts.append(b"i" + _INT.pack(int(value)))
        elif isinstance(value, int):
            parts.append(b"i" + _INT.pack(value))
        elif isinstance(value, float):
            parts.append(b"f" + _FLOAT.pack(value))
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            if len(raw) > 0xFFFF:
                raise StorageError("string field exceeds 65535 bytes")
            parts.append(b"s" + _SHORT.pack(len(raw)) + raw)
        elif isinstance(value, (bytes, bytearray)):
            raw = bytes(value)
            parts.append(b"b" + _LONG.pack(len(raw)) + raw)
        else:
            raise StorageError(
                f"unsupported field type: {type(value).__name__}"
            )
    return bytes([count]) + bytes(bitmap) + b"".join(parts)


def encoded_int(value: int) -> bytes:
    """The exact bytes an integer field contributes to a record payload.

    A payload that does not *contain* this pattern cannot hold ``value``
    in any integer field, so substring search (C speed) works as a
    conservative prefilter before :func:`decode_record` — callers must
    still re-check the decoded field, since the pattern can also appear
    inside a different field's bytes.
    """
    return b"i" + _INT.pack(value)


def decode_record(data: bytes) -> tuple:
    """Deserialize record bytes produced by :func:`encode_record`."""
    if not data:
        raise StorageError("empty record payload")
    count = data[0]
    bitmap_len = (count + 7) // 8
    bitmap = data[1 : 1 + bitmap_len]
    offset = 1 + bitmap_len
    values: list[object] = []
    for position in range(count):
        if bitmap[position // 8] & (1 << (position % 8)):
            values.append(None)
            continue
        tag = data[offset : offset + 1]
        offset += 1
        if tag == b"i":
            (value,) = _INT.unpack_from(data, offset)
            offset += _INT.size
        elif tag == b"f":
            (value,) = _FLOAT.unpack_from(data, offset)
            offset += _FLOAT.size
        elif tag == b"s":
            (length,) = _SHORT.unpack_from(data, offset)
            offset += _SHORT.size
            value = data[offset : offset + length].decode("utf-8")
            offset += length
        elif tag == b"b":
            (length,) = _LONG.unpack_from(data, offset)
            offset += _LONG.size
            value = data[offset : offset + length]
            offset += length
        else:
            raise StorageError(f"corrupt record: unknown tag {tag!r}")
        values.append(value)
    return tuple(values)
