"""Atomic, durable sidecar writes.

JSON sidecars (the catalog and the ArchIS archive metadata) must never be
observable half-written: a crash mid-save used to leave truncated JSON
that made the whole archive unloadable.  :func:`atomic_write_bytes`
implements the standard protocol — write to ``<path>.tmp``, flush, fsync,
``os.replace`` onto the final name — so a reader sees either the old file
or the new one, never a prefix.

Both sidecar writers stamp their payloads with :data:`SIDECAR_VERSION`
from this module so the two formats can never drift apart silently.
"""

from __future__ import annotations

import glob
import os

from repro.storage.crashpoints import fire

#: Format version written into (and required from) every JSON sidecar.
SIDECAR_VERSION = 1

_TMP_SUFFIX = ".tmp"


def atomic_write_bytes(path: str, data: bytes) -> str:
    """Atomically replace ``path`` with ``data``; returns ``path``.

    Crash points: ``atomic.tmp_written`` (tmp file complete but not
    durable), ``atomic.tmp_synced`` (tmp durable, final name still old),
    ``atomic.replaced`` (rename done, directory entry not yet synced).
    """
    tmp_path = path + _TMP_SUFFIX
    with open(tmp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        fire("atomic.tmp_written")
        os.fsync(handle.fileno())
    fire("atomic.tmp_synced")
    os.replace(tmp_path, path)
    fire("atomic.replaced")
    _fsync_directory(os.path.dirname(os.path.abspath(path)))
    return path


def remove_stale_tmp_files(path_prefix: str) -> list[str]:
    """Delete leftover ``<path_prefix>*.tmp`` files from crashed saves.

    Tmp files are never authoritative — either the rename happened (the
    final file is current) or the save never committed (the old final
    file is current) — so removing them on open is always safe.
    """
    removed = []
    for stale in glob.glob(glob.escape(path_prefix) + "*" + _TMP_SUFFIX):
        os.remove(stale)
        removed.append(stale)
    return removed


def _fsync_directory(dir_path: str) -> None:
    """Make a rename durable by syncing its directory (best effort)."""
    try:
        fd = os.open(dir_path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
