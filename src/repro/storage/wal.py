"""Page-level write-ahead log.

The WAL makes a whole save — many page images plus the JSON sidecars —
one atomic unit.  Writers append checksummed, length-prefixed frames:

    ``PAGE``   a full page image, keyed by page number;
    ``META``   a sidecar payload, keyed by its path suffix
               (e.g. ``.catalog.json``), staged for the checkpoint;
    ``COMMIT`` a transaction boundary — everything since the previous
               commit becomes durable once this frame is fsynced.

Frame layout (little-endian)::

    magic "WALF" | type u8 | key u64 | payload_len u32 | crc32 u32 | payload

The CRC covers type, key and payload, so a torn tail — a frame whose
header or payload the crash cut short, or whose bytes a partial sector
write scrambled — is detected and discarded during recovery.  Recovery
(:meth:`WriteAheadLog.scan`) replays frames up to the last valid COMMIT
and drops everything after it; the pager then applies the survivors to
the main file and truncates the log (checkpoint), which is idempotent if
the process dies mid-checkpoint.

Concurrency.  Since the transaction subsystem landed, several writers
may append to one log at once, so frames are *transaction-tagged*: the
key of a PAGE frame packs ``(txn_id << 40) | page_no`` and the key of a
META or COMMIT frame is the txn id itself.  Recovery groups pending
frames per transaction and a COMMIT promotes only its own transaction's
frames, so one writer's commit can never publish another's half-written
pages.  Single-writer logs keep txn id 0 everywhere — byte-identical to
the pre-concurrency format, so old logs replay unchanged.

Commit durability uses **group commit**: the committing thread appends
its COMMIT frame under the log lock, then either discovers a concurrent
leader has already fsynced past it (``wal.group_commit.batched``) or
becomes the leader itself, fsyncing every frame appended so far in one
``fsync`` (``wal.fsyncs``).  An optional ``group_window`` lets the
leader linger briefly so more followers can pile on.

The linger is **adaptive**: a fixed window taxes every solo commit the
full window (a serial client pays ~3x p50 for batching that never
happens) while the batching win only exists under contention.  Each
COMMIT append samples whether another commit was already awaiting
fsync — the one signal that distinguishes concurrent committers from a
fast serial client — into an exponentially-weighted ``contention``
score, and the leader sleeps the window only while the score is above
:data:`CONTENTION_THRESHOLD` (``wal.group_commit.adaptive_waits`` vs
``wal.group_commit.fast_syncs``).  Follower-rides-leader batching is
independent of the linger and always on, so contended workloads keep
their fsync savings even while the score is still warming up.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.obs.metrics import get_registry
from repro.storage.crashpoints import fire

MAGIC = b"WALF"
FRAME_PAGE = 1
FRAME_META = 2
FRAME_COMMIT = 3

_HEADER = struct.Struct("<4sBQII")  # magic, type, key, payload_len, crc32
_CRC_PREFIX = struct.Struct("<BQ")  # the checksummed part of the header

#: Low bits of a PAGE frame's key hold the page number; the bits above
#: hold the transaction id.  40 bits of page number at 4 KiB pages is
#: 4 PiB of addressable file — effectively unbounded for this engine.
PAGE_KEY_BITS = 40
_PAGE_KEY_MASK = (1 << PAGE_KEY_BITS) - 1

# Global WAL instrumentation (see repro.obs).
_FRAMES = get_registry().counter("wal.frames")
_BYTES = get_registry().counter("wal.bytes")
_COMMITS = get_registry().counter("wal.commits")
_CHECKPOINTS = get_registry().counter("wal.checkpoints")
_RECOVERIES = get_registry().counter("wal.recoveries")
_FRAMES_REPLAYED = get_registry().counter("wal.frames_replayed")
_FSYNCS = get_registry().counter("wal.fsyncs")
_FSYNC_SECONDS = get_registry().histogram("wal.fsync.seconds")
_GROUP_BATCHED = get_registry().counter("wal.group_commit.batched")
_ADAPTIVE_WAITS = get_registry().counter("wal.group_commit.adaptive_waits")
_FAST_SYNCS = get_registry().counter("wal.group_commit.fast_syncs")
_BATCH_SIZE = get_registry().histogram(
    "wal.group_commit.batch_size", (1, 2, 4, 8, 16, 32, 64, 128)
)
_SIZE_BYTES = get_registry().gauge("wal.size_bytes")
#: commit frames by what triggered them: "txn" (transaction commit /
#: checkpoint), "ingest" (one frame per BatchArchiver batch), ...
_COMMIT_CAUSES = get_registry().labeled_counter("wal.commits.cause")

#: the EWMA contention score above which a group-commit leader lingers
#: ``group_window`` before its fsync.  With ``CONTENTION_ALPHA = 0.25``
#: one concurrent arrival lifts the score from zero to 0.25 (linger
#: starts on the first sign of contention) and it takes ~5 consecutive
#: solo commits to decay back below the threshold.
CONTENTION_THRESHOLD = 0.2
CONTENTION_ALPHA = 0.25


@dataclass
class RecoveryReport:
    """What one WAL recovery pass found and did."""

    wal_path: str
    frames_scanned: int = 0
    commits: int = 0
    pages_replayed: int = 0
    metas_replayed: int = 0
    uncommitted_frames: int = 0
    torn_bytes: int = 0
    stale_tmp_files: list[str] = field(default_factory=list)

    @property
    def replayed(self) -> bool:
        return self.commits > 0

    def lines(self) -> list[str]:
        state = "replayed a committed save" if self.replayed else "nothing to replay"
        return [
            f"wal:            {self.wal_path} ({state})",
            f"frames scanned: {self.frames_scanned} "
            f"({self.commits} commit frames)",
            f"replayed:       {self.pages_replayed} pages, "
            f"{self.metas_replayed} sidecars",
            f"discarded:      {self.uncommitted_frames} uncommitted frames, "
            f"{self.torn_bytes} torn bytes, "
            f"{len(self.stale_tmp_files)} stale tmp files",
        ]


def _checksum(frame_type: int, key: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(_CRC_PREFIX.pack(frame_type, key)))


def encode_meta_payload(suffix: str, data: bytes) -> bytes:
    raw = suffix.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw + data


def decode_meta_payload(payload: bytes) -> tuple[str, bytes]:
    (length,) = struct.unpack_from("<H", payload)
    return payload[2 : 2 + length].decode("utf-8"), payload[2 + length :]


class WriteAheadLog:
    """Append-only frame log next to a pager's main file.

    Safe for concurrent appenders: every file mutation happens under one
    internal lock, and commit durability goes through the group-commit
    protocol described in the module docstring.
    """

    def __init__(
        self,
        path: str,
        *,
        group_commit: bool = True,
        group_window: float = 0.002,
    ) -> None:
        self.path = path
        self.group_commit = group_commit
        self.group_window = group_window
        mode = "r+b" if os.path.exists(path) else "w+b"
        self._file = open(path, mode)
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._append_seq = 0  # frames appended so far
        self._durable_seq = 0  # highest append_seq known fsynced
        self._leader_active = False
        self._pending_commits = 0  # COMMIT frames since the last fsync
        #: EWMA of "another commit was already awaiting fsync when mine
        #: arrived" — the adaptive-linger contention signal
        self._contention = 0.0

    # -- appending ---------------------------------------------------------

    def append_page(self, page_no: int, data: bytes, txn_id: int = 0) -> None:
        if page_no > _PAGE_KEY_MASK:
            raise StorageError(f"page number {page_no} exceeds WAL key space")
        self._append(FRAME_PAGE, (txn_id << PAGE_KEY_BITS) | page_no, data)

    def append_meta(self, suffix: str, data: bytes, txn_id: int = 0) -> None:
        self._append(FRAME_META, txn_id, encode_meta_payload(suffix, data))

    def append_commit(self, txn_id: int = 0, cause: str = "txn") -> None:
        """Write the commit frame and make the transaction durable."""
        fire("wal.commit.begin")
        seq = self._append(FRAME_COMMIT, txn_id, b"")
        if self.group_commit:
            self._group_sync(seq)
        else:
            self.sync()
        _COMMITS.inc()
        _COMMIT_CAUSES.inc(cause)
        fire("wal.commit.synced")

    def _append(self, frame_type: int, key: int, payload: bytes) -> int:
        crc = _checksum(frame_type, key, payload)
        frame = _HEADER.pack(MAGIC, frame_type, key, len(payload), crc) + payload
        with self._lock:
            self._file.seek(0, os.SEEK_END)
            # Two writes with a crash point between them: an injected crash
            # at ``wal.frame.torn`` leaves a genuinely torn frame on disk,
            # which is exactly what recovery's checksum pass must survive.
            split = max(1, len(frame) // 2)
            self._file.write(frame[:split])
            self._file.flush()
            fire("wal.frame.torn")
            self._file.write(frame[split:])
            self._file.flush()
            self._append_seq += 1
            seq = self._append_seq
            if frame_type == FRAME_COMMIT:
                # sample contention *before* counting ourselves: a commit
                # already awaiting fsync means concurrent committers (a
                # serial client, however fast, always sees zero here)
                arrived_contended = 1.0 if self._pending_commits else 0.0
                self._contention += CONTENTION_ALPHA * (
                    arrived_contended - self._contention
                )
                self._pending_commits += 1
            _SIZE_BYTES.set(self._file.tell())
        _FRAMES.inc()
        _BYTES.inc(len(frame))
        fire("wal.frame.appended")
        return seq

    def sync(self) -> None:
        with self._lock:
            target = self._append_seq
            batch = self._pending_commits
            self._pending_commits = 0
            self._file.flush()
            started = time.perf_counter()
            os.fsync(self._file.fileno())
            _FSYNC_SECONDS.observe(time.perf_counter() - started)
            _FSYNCS.inc()
            if batch:
                _BATCH_SIZE.observe(batch)
            if target > self._durable_seq:
                self._durable_seq = target

    def _group_sync(self, seq: int) -> None:
        """Make frame ``seq`` durable, batching with concurrent commits.

        Follower path: a concurrent leader's fsync already covered (or
        will cover) our frame — wait for ``durable_seq`` to pass it and
        count the saved fsync.  Leader path: snapshot the append
        sequence, fsync once, publish the new durable horizon.
        """
        with self._cond:
            while True:
                if self._durable_seq >= seq:
                    _GROUP_BATCHED.inc()
                    return
                if not self._leader_active:
                    self._leader_active = True
                    # decide the linger while holding the lock: recent
                    # concurrent arrivals (EWMA above the threshold)
                    # mean a window of waiting will batch real work
                    linger = (
                        self.group_window > 0
                        and self._contention >= CONTENTION_THRESHOLD
                    )
                    break
                self._cond.wait()
        try:
            if linger:
                # Let more followers append their COMMIT frames so one
                # fsync below covers them all.
                _ADAPTIVE_WAITS.inc()
                time.sleep(self.group_window)
            else:
                _FAST_SYNCS.inc()
            with self._lock:
                target = self._append_seq
                batch = self._pending_commits
                self._pending_commits = 0
                self._file.flush()
                fileno = self._file.fileno()
            # fsync outside the lock: followers may keep appending (their
            # frames simply ride the *next* fsync).
            started = time.perf_counter()
            os.fsync(fileno)
            _FSYNC_SECONDS.observe(time.perf_counter() - started)
            _FSYNCS.inc()
            if batch:
                _BATCH_SIZE.observe(batch)
            with self._cond:
                if target > self._durable_seq:
                    self._durable_seq = target
        finally:
            with self._cond:
                self._leader_active = False
                self._cond.notify_all()

    # -- recovery ----------------------------------------------------------

    def scan(self) -> tuple[dict[int, bytes], dict[str, bytes], RecoveryReport]:
        """Read the log, returning committed pages/metas and a report.

        Pending frames are grouped by the transaction id packed into
        their keys, and a COMMIT promotes only its own transaction's
        frames — with concurrent writers the log interleaves frames from
        several transactions, and one txn's commit must never publish
        another's half-written pages.  Frames whose transaction never
        committed are counted as uncommitted and dropped; the first torn
        or corrupt frame ends the scan (bytes past it are unreachable by
        construction — the log is truncated at every checkpoint, so
        nothing valid can follow a tear).
        """
        report = RecoveryReport(wal_path=self.path)
        with self._lock:
            self._file.seek(0, os.SEEK_END)
            size = self._file.tell()
            self._file.seek(0)
            committed_pages: dict[int, bytes] = {}
            committed_metas: dict[str, bytes] = {}
            pending: dict[int, list[tuple[int, int, bytes]]] = {}
            offset = 0
            while offset < size:
                header = self._file.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    report.torn_bytes = size - offset
                    break
                magic, frame_type, key, payload_len, crc = _HEADER.unpack(header)
                if magic != MAGIC or frame_type not in (
                    FRAME_PAGE, FRAME_META, FRAME_COMMIT,
                ):
                    report.torn_bytes = size - offset
                    break
                payload = self._file.read(payload_len)
                if len(payload) < payload_len or _checksum(
                    frame_type, key, payload
                ) != crc:
                    report.torn_bytes = size - offset
                    break
                offset += _HEADER.size + payload_len
                report.frames_scanned += 1
                txn_id = key >> PAGE_KEY_BITS if frame_type == FRAME_PAGE else key
                if frame_type == FRAME_COMMIT:
                    report.commits += 1
                    for kind, frame_key, frame_payload in pending.pop(txn_id, []):
                        if kind == FRAME_PAGE:
                            committed_pages[frame_key & _PAGE_KEY_MASK] = (
                                frame_payload
                            )
                            report.pages_replayed += 1
                        else:
                            suffix, data = decode_meta_payload(frame_payload)
                            committed_metas[suffix] = data
                            report.metas_replayed += 1
                else:
                    pending.setdefault(txn_id, []).append(
                        (frame_type, key, payload)
                    )
        report.uncommitted_frames = sum(len(v) for v in pending.values())
        if report.replayed:
            _RECOVERIES.inc()
            _FRAMES_REPLAYED.inc(
                report.pages_replayed + report.metas_replayed
            )
        return committed_pages, committed_metas, report

    # -- lifecycle ---------------------------------------------------------

    def truncate(self) -> None:
        """Drop every frame (end of checkpoint); durable before return."""
        with self._lock:
            self._file.seek(0)
            self._file.truncate(0)
            self.sync()
            _SIZE_BYTES.set(0)
        _CHECKPOINTS.inc()
        fire("wal.checkpoint.truncated")

    def size_bytes(self) -> int:
        with self._lock:
            self._file.seek(0, os.SEEK_END)
            return self._file.tell()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def require_durability(value: str) -> str:
    if value not in ("wal", "none"):
        raise StorageError(
            f"unknown durability mode {value!r}; use 'wal' or 'none'"
        )
    return value
