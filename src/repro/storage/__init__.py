"""Paged storage: slotted pages, pager, WAL durability, heaps, blobs."""

from repro.storage.atomicio import SIDECAR_VERSION, atomic_write_bytes
from repro.storage.blob import BlobStore
from repro.storage.buffer import BufferPool, CacheStats
from repro.storage.crashpoints import (
    CrashPointRegistry,
    InjectedCrash,
    get_crash_points,
)
from repro.storage.heap import HeapFile, Rid
from repro.storage.page import PAGE_SIZE, SlottedPage
from repro.storage.pager import IoStats, Pager
from repro.storage.record import decode_record, encode_record
from repro.storage.wal import RecoveryReport, WriteAheadLog

__all__ = [
    "BlobStore",
    "BufferPool",
    "CacheStats",
    "CrashPointRegistry",
    "HeapFile",
    "InjectedCrash",
    "Rid",
    "PAGE_SIZE",
    "RecoveryReport",
    "SIDECAR_VERSION",
    "SlottedPage",
    "IoStats",
    "Pager",
    "WriteAheadLog",
    "atomic_write_bytes",
    "decode_record",
    "encode_record",
    "get_crash_points",
]
