"""Paged storage: slotted pages, pager, buffer pool, heaps, blobs."""

from repro.storage.blob import BlobStore
from repro.storage.buffer import BufferPool, CacheStats
from repro.storage.heap import HeapFile, Rid
from repro.storage.page import PAGE_SIZE, SlottedPage
from repro.storage.pager import IoStats, Pager
from repro.storage.record import decode_record, encode_record

__all__ = [
    "BlobStore",
    "BufferPool",
    "CacheStats",
    "HeapFile",
    "Rid",
    "PAGE_SIZE",
    "SlottedPage",
    "IoStats",
    "Pager",
    "decode_record",
    "encode_record",
]
