"""LRU buffer pool.

Sits between page consumers (heap files, the blob store) and a
:class:`~repro.storage.pager.Pager`.  Tracks hits and misses; a miss costs a
physical read in the pager's counters.  ``reset()`` drops every cached page,
which the benchmark harness calls before each measured query to reproduce
the paper's cold-cache protocol.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import StorageError
from repro.obs.metrics import get_registry
from repro.storage.page import PAGE_SIZE
from repro.storage.pager import Pager

# Hoisted instruments: every pool reports into the same global counters so
# physical reads are visible uniformly (per-pool CacheStats stay available
# for instance-level attribution).
_HITS = get_registry().counter("buffer.hits")
_MISSES = get_registry().counter("buffer.misses")
#: pages currently cached, process-wide (last pool to change wins; with
#: one ArchIS per process — the server deployment — that is *the* pool)
_OCCUPANCY = get_registry().gauge("buffer.occupancy")


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


class BufferPool:
    """Write-through LRU page cache over a pager.

    Write-through keeps recovery concerns out of scope (the paper's
    contribution is not in the buffer manager) while still modelling read
    locality, which is what the clustering experiments depend on.
    """

    def __init__(self, pager: Pager, capacity: int = 256) -> None:
        if capacity < 1:
            raise StorageError("buffer pool capacity must be >= 1")
        self._pager = pager
        self._capacity = capacity
        self._frames: OrderedDict[int, bytearray] = OrderedDict()
        self.stats = CacheStats()
        # Frame-table mutation (including the LRU reordering a *read*
        # performs) and the hit/miss counters are guarded by one
        # re-entrant lock, so concurrent sessions never corrupt the
        # OrderedDict or lose stat increments.  Lock order is
        # buffer → pager → WAL, never the reverse.
        self._lock = threading.RLock()

    @property
    def pager(self) -> Pager:
        return self._pager

    @property
    def capacity(self) -> int:
        return self._capacity

    def get(self, page_no: int) -> bytes:
        """Fetch a page image, from cache when possible."""
        with self._lock:
            frame = self._frames.get(page_no)
            if frame is not None:
                self._frames.move_to_end(page_no)
                self.stats.hits += 1
                _HITS.inc()
                return bytes(frame)
            self.stats.misses += 1
            _MISSES.inc()
            data = self._pager.read_page(page_no)
            self._admit(page_no, bytearray(data))
            return data

    def put(self, page_no: int, data: bytes) -> None:
        """Write a page image through to disk and refresh the cache."""
        if len(data) != PAGE_SIZE:
            raise StorageError("page image has wrong size")
        with self._lock:
            self._pager.write_page(page_no, data)
            self._admit(page_no, bytearray(data))

    def allocate(self) -> int:
        """Allocate a fresh page and cache its (zeroed) image."""
        with self._lock:
            page_no = self._pager.allocate()
            self._admit(page_no, bytearray(PAGE_SIZE))
            return page_no

    def set_capacity(self, capacity: int) -> None:
        """Resize the pool (evicting LRU frames if shrinking)."""
        if capacity < 1:
            raise StorageError("buffer pool capacity must be >= 1")
        with self._lock:
            self._capacity = capacity
            while len(self._frames) > self._capacity:
                self._frames.popitem(last=False)
            _OCCUPANCY.set(len(self._frames))

    def reset(self) -> None:
        """Drop all cached pages (cold-cache measurement protocol)."""
        with self._lock:
            self._frames.clear()
            _OCCUPANCY.set(0)

    def reset_stats(self) -> None:
        """Zero the counters in place.

        Callers hold references to ``self.stats`` (the bench harness
        snapshots it); rebinding to a fresh object would leave those
        references reading stale numbers forever.
        """
        with self._lock:
            self.stats.hits = 0
            self.stats.misses = 0

    def _admit(self, page_no: int, frame: bytearray) -> None:
        if page_no in self._frames:
            self._frames[page_no] = frame
            self._frames.move_to_end(page_no)
            return
        self._frames[page_no] = frame
        while len(self._frames) > self._capacity:
            self._frames.popitem(last=False)
        _OCCUPANCY.set(len(self._frames))
