"""ArchIS reproduction: transaction-time temporal databases via XML views.

Reproduces Wang, Zhou & Zaniolo, *Using XML to Build Efficient
Transaction-Time Temporal Database Systems on Relational Databases*
(TimeCenter TR-81 / ICDE 2006).

Public API (see README.md for a tour):

- :class:`repro.rdb.Database` — the relational engine substrate
- :class:`repro.archis.ArchIS` — the temporal archival system (the core)
- :class:`repro.nativexml.NativeXmlDatabase` — the Tamino-like baseline
- :class:`repro.dataset.EmployeeHistoryGenerator` — evaluation workload
- :func:`repro.xquery.run_xquery` — standalone XQuery evaluation
- :class:`repro.util.Interval` — the shared interval algebra
- :class:`repro.txn.TxnManager` — MVCC snapshots + locked write txns
- :class:`repro.server.Server` / :class:`repro.server.Client` — the
  multi-session socket front end (``python -m repro.tools serve``)
- :class:`repro.api.Result` — the unified query-result surface
- :class:`repro.archis.ArchISConfig` — one keyword-only config object
"""

from repro.api import Result
from repro.archis import ArchIS, ArchISConfig, BatchArchiver
from repro.dataset import EmployeeHistoryGenerator
from repro.nativexml import NativeXmlDatabase
from repro.rdb import ColumnType, Database
from repro.server import Client, Server
from repro.txn import Snapshot, Transaction, TxnManager
from repro.util import FOREVER, Interval, format_date, parse_date
from repro.xquery import run_xquery

__version__ = "1.0.0"

__all__ = [
    "ArchIS",
    "ArchISConfig",
    "BatchArchiver",
    "EmployeeHistoryGenerator",
    "Result",
    "NativeXmlDatabase",
    "Client",
    "ColumnType",
    "Database",
    "FOREVER",
    "Interval",
    "Server",
    "Snapshot",
    "Transaction",
    "TxnManager",
    "format_date",
    "parse_date",
    "run_xquery",
    "__version__",
]
