"""A compact XPath subset for direct DOM navigation.

Supports the axes and predicates the native XML store and the tests need:

- absolute (``/a/b``) and relative (``a/b``) location paths
- descendant-or-self ``//name``
- wildcard ``*`` steps and attribute steps ``@name``
- predicates: positional (``[2]``, 1-based), existence (``[title]``),
  comparisons (``[name="Bob"]``, ``[@tstart<="1994-05-06"]``, numeric
  comparisons when both sides are numeric), ``and`` / ``or``.

XQuery path expressions are handled separately by the XQuery engine; this
module exists for standalone DOM work (value indexes, assertions in tests).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import XPathError
from repro.xmlkit.dom import Element

_TOKEN = re.compile(
    r"\s*(//|/|\[|\]|@|\*|<=|>=|!=|=|<|>|\band\b|\bor\b|"
    r"'[^']*'|\"[^\"]*\"|\d+(?:\.\d+)?|[A-Za-z_][\w.\-:]*\(\)|[A-Za-z_][\w.\-:]*)"
)


def _tokenize(path: str) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(path):
        match = _TOKEN.match(path, pos)
        if not match:
            if path[pos:].strip():
                raise XPathError(f"bad XPath syntax near {path[pos:]!r}")
            break
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


@dataclass
class _Step:
    axis: str  # "child" or "descendant"
    name: str  # element name, "*", "@attr" or "text()"
    predicates: list


class _PathParser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise XPathError("unexpected end of XPath")
        self.pos += 1
        return token

    def parse(self) -> tuple[bool, list[_Step]]:
        absolute = False
        steps: list[_Step] = []
        if self.peek() in ("/", "//"):
            absolute = True
        first = True
        while self.peek() is not None and self.peek() not in ("]",):
            axis = "child"
            token = self.peek()
            if token in ("/", "//"):
                self.take()
                axis = "descendant" if token == "//" else "child"
            elif not first:
                break
            steps.append(self._parse_step(axis))
            first = False
        return absolute, steps

    def _parse_step(self, axis: str) -> _Step:
        token = self.take()
        if token == "@":
            name = "@" + self.take()
        elif token == "*":
            name = "*"
        elif token == "text()":
            name = "text()"
        elif re.fullmatch(r"[A-Za-z_][\w.\-:]*", token):
            name = token
        else:
            raise XPathError(f"unexpected step token {token!r}")
        predicates = []
        while self.peek() == "[":
            self.take()
            predicates.append(self._parse_predicate())
            if self.take() != "]":
                raise XPathError("expected ']'")
        return _Step(axis, name, predicates)

    def _parse_predicate(self):
        left = self._parse_or()
        return left

    def _parse_or(self):
        node = self._parse_and()
        while self.peek() == "or":
            self.take()
            node = ("or", node, self._parse_and())
        return node

    def _parse_and(self):
        node = self._parse_comparison()
        while self.peek() == "and":
            self.take()
            node = ("and", node, self._parse_comparison())
        return node

    def _parse_comparison(self):
        left = self._parse_operand()
        if self.peek() in ("=", "!=", "<", "<=", ">", ">="):
            op = self.take()
            right = self._parse_operand()
            return ("cmp", op, left, right)
        return ("exists", left)

    def _parse_operand(self):
        token = self.peek()
        if token is None:
            raise XPathError("unexpected end in predicate")
        if token[0] in ("'", '"'):
            self.take()
            return ("lit", token[1:-1])
        if re.fullmatch(r"\d+(?:\.\d+)?", token):
            self.take()
            return ("num", float(token))
        # a relative sub-path
        _, steps = _PathParser(self._slice_subpath()).parse()
        return ("path", steps)

    def _slice_subpath(self) -> list[str]:
        # Collect tokens forming a relative path until a comparison/closing token.
        out = []
        depth = 0
        while self.pos < len(self.tokens):
            token = self.tokens[self.pos]
            if depth == 0 and token in ("=", "!=", "<", "<=", ">", ">=", "]", "and", "or"):
                break
            if token == "[":
                depth += 1
            elif token == "]":
                depth -= 1
            out.append(token)
            self.pos += 1
        return out


def _step_candidates(node: Element, step: _Step) -> list:
    if step.axis == "descendant":
        pool: list[Element] = list(node.descendants())
    else:
        pool = node.elements()
    if step.name == "*":
        return pool
    if step.name.startswith("@"):
        attr = step.name[1:]
        source = [node, *pool] if step.axis == "descendant" else [node]
        values = []
        for candidate in source:
            if attr in candidate.attrs:
                values.append(candidate.attrs[attr])
        return values
    if step.name == "text()":
        source = pool if step.axis == "descendant" else [node]
        return [n.text() for n in source]
    return [n for n in pool if n.name == step.name]


def _eval_operand(node: Element, operand) -> object:
    kind = operand[0]
    if kind == "lit":
        return operand[1]
    if kind == "num":
        return operand[1]
    if kind == "path":
        return _walk([node], operand[1])
    raise XPathError(f"bad operand {operand!r}")


def _as_strings(value: object) -> list[str]:
    if isinstance(value, list):
        out = []
        for item in value:
            out.append(item.text() if isinstance(item, Element) else str(item))
        return out
    return [str(value)]


def _compare(op: str, left: object, right: object) -> bool:
    left_values = _as_strings(left)
    right_values = _as_strings(right)
    for lv in left_values:
        for rv in right_values:
            try:
                lnum, rnum = float(lv), float(rv)
                ok = _apply(op, lnum, rnum)
            except ValueError:
                ok = _apply(op, lv, rv)
            if ok:
                return True
    return False


def _apply(op: str, a, b) -> bool:
    if op == "=":
        return a == b
    if op == "!=":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise XPathError(f"unknown operator {op}")


def _eval_predicate(node: Element, predicate, position: int) -> bool:
    kind = predicate[0]
    if kind == "and":
        return _eval_predicate(node, predicate[1], position) and _eval_predicate(
            node, predicate[2], position
        )
    if kind == "or":
        return _eval_predicate(node, predicate[1], position) or _eval_predicate(
            node, predicate[2], position
        )
    if kind == "cmp":
        _, op, left, right = predicate
        return _compare(op, _eval_operand(node, left), _eval_operand(node, right))
    if kind == "exists":
        operand = predicate[1]
        if operand[0] == "num":
            return position == int(operand[1])
        value = _eval_operand(node, operand)
        if isinstance(value, list):
            return bool(value)
        return bool(value)
    raise XPathError(f"bad predicate {predicate!r}")


def _walk(nodes: list, steps: list[_Step]) -> list:
    current = nodes
    for step in steps:
        gathered = []
        for node in current:
            if not isinstance(node, Element):
                raise XPathError("cannot navigate below an atomic value")
            candidates = _step_candidates(node, step)
            survivors = []
            position = 0
            for candidate in candidates:
                position += 1
                keep = True
                for predicate in step.predicates:
                    if not isinstance(candidate, Element):
                        raise XPathError("predicates require element context")
                    if not _eval_predicate(candidate, predicate, position):
                        keep = False
                        break
                if keep:
                    survivors.append(candidate)
            gathered.extend(survivors)
        current = gathered
    return current


def xpath(context: Element, path: str) -> list:
    """Evaluate an XPath subset expression from ``context``.

    Returns a list of Elements and/or strings (for ``@attr``/``text()``
    terminal steps).  Absolute paths start from the document root and match
    the root element itself as the first step (as if addressing the
    document node).
    """
    tokens = _tokenize(path)
    if not tokens:
        raise XPathError("empty XPath")
    absolute, steps = _PathParser(tokens).parse()
    if absolute:
        root = context.root()
        if not steps:
            return [root]
        first, rest = steps[0], steps[1:]
        if first.axis == "child":
            # '/name' addresses the root element itself.
            if first.name != "*" and first.name != root.name:
                return []
            start = [root]
            for predicate in first.predicates:
                if not _eval_predicate(root, predicate, 1):
                    return []
            return _walk(start, rest)
        return _walk([root], steps) + (
            [root] if steps and steps[0].name == root.name else []
        )
    return _walk([context], steps)
