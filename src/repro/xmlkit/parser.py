"""A small, strict XML parser producing :mod:`repro.xmlkit.dom` trees."""

from __future__ import annotations

import re

from repro.errors import XmlError
from repro.xmlkit.dom import Element, Text

_NAME = re.compile(r"[A-Za-z_][\w.\-:]*")
_ENTITIES = {
    "&lt;": "<",
    "&gt;": ">",
    "&amp;": "&",
    "&quot;": '"',
    "&apos;": "'",
}


def _unescape(value: str) -> str:
    def replace(match: re.Match) -> str:
        entity = match.group(0)
        if entity in _ENTITIES:
            return _ENTITIES[entity]
        if entity.startswith("&#x"):
            return chr(int(entity[3:-1], 16))
        if entity.startswith("&#"):
            return chr(int(entity[2:-1]))
        raise XmlError(f"unknown entity {entity}")

    return re.sub(r"&#x[0-9A-Fa-f]+;|&#\d+;|&\w+;", replace, value)


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> XmlError:
        line = self.text.count("\n", 0, self.pos) + 1
        return XmlError(f"XML parse error at line {line}: {message}")

    def parse_document(self) -> Element:
        self._skip_misc()
        root = self._parse_element()
        self._skip_misc()
        if self.pos != len(self.text):
            raise self.error("content after document element")
        return root

    # -- pieces -------------------------------------------------------------

    def _skip_misc(self) -> None:
        while True:
            while self.pos < len(self.text) and self.text[self.pos].isspace():
                self.pos += 1
            if self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos)
                if end < 0:
                    raise self.error("unterminated processing instruction")
                self.pos = end + 2
            elif self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.text.startswith("<!DOCTYPE", self.pos):
                end = self.text.find(">", self.pos)
                if end < 0:
                    raise self.error("unterminated DOCTYPE")
                self.pos = end + 1
            else:
                return

    def _parse_name(self) -> str:
        match = _NAME.match(self.text, self.pos)
        if not match:
            raise self.error("expected a name")
        self.pos = match.end()
        return match.group(0)

    def _parse_element(self) -> Element:
        if not self.text.startswith("<", self.pos):
            raise self.error("expected '<'")
        self.pos += 1
        name = self._parse_name()
        element = Element(name)
        self._parse_attributes(element)
        if self.text.startswith("/>", self.pos):
            self.pos += 2
            return element
        if not self.text.startswith(">", self.pos):
            raise self.error(f"malformed start tag for <{name}>")
        self.pos += 1
        self._parse_content(element)
        return element

    def _parse_attributes(self, element: Element) -> None:
        while True:
            while self.pos < len(self.text) and self.text[self.pos].isspace():
                self.pos += 1
            char = self.text[self.pos : self.pos + 1]
            if char in (">", "/") or not char:
                return
            attr = self._parse_name()
            if not self.text.startswith("=", self.pos):
                raise self.error(f"attribute {attr} missing '='")
            self.pos += 1
            quote = self.text[self.pos : self.pos + 1]
            if quote not in ("'", '"'):
                raise self.error(f"attribute {attr} value not quoted")
            self.pos += 1
            end = self.text.find(quote, self.pos)
            if end < 0:
                raise self.error(f"unterminated attribute value for {attr}")
            if attr in element.attrs:
                raise self.error(f"duplicate attribute {attr}")
            element.attrs[attr] = _unescape(self.text[self.pos : end])
            self.pos = end + 1

    def _parse_content(self, element: Element) -> None:
        buffer: list[str] = []

        def flush() -> None:
            if buffer:
                text = _unescape("".join(buffer))
                if text:
                    element.append(Text(text))
                buffer.clear()

        while True:
            if self.pos >= len(self.text):
                raise self.error(f"unterminated element <{element.name}>")
            if self.text.startswith("</", self.pos):
                flush()
                self.pos += 2
                name = self._parse_name()
                if name != element.name:
                    raise self.error(
                        f"mismatched end tag </{name}> for <{element.name}>"
                    )
                while self.pos < len(self.text) and self.text[self.pos].isspace():
                    self.pos += 1
                if not self.text.startswith(">", self.pos):
                    raise self.error("malformed end tag")
                self.pos += 1
                return
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
                continue
            if self.text.startswith("<![CDATA[", self.pos):
                end = self.text.find("]]>", self.pos)
                if end < 0:
                    raise self.error("unterminated CDATA section")
                buffer.append(self.text[self.pos + 9 : end])
                self.pos = end + 3
                continue
            if self.text.startswith("<", self.pos):
                flush()
                element.append(self._parse_element())
                continue
            next_tag = self.text.find("<", self.pos)
            if next_tag < 0:
                raise self.error(f"unterminated element <{element.name}>")
            buffer.append(self.text[self.pos : next_tag])
            self.pos = next_tag


def parse_xml(text: str) -> Element:
    """Parse an XML document, returning its root element."""
    return _Parser(text).parse_document()


def parse_fragment(text: str) -> list[Element]:
    """Parse a sequence of sibling elements (no single-root requirement)."""
    wrapped = parse_xml(f"<__fragment__>{text}</__fragment__>")
    out = []
    for child in wrapped.children:
        if isinstance(child, Element):
            child.parent = None
            out.append(child)
    return out
