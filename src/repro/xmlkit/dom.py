"""A small XML DOM.

H-documents are trees of elements with attributes and text; this module is
the in-memory representation shared by the XML parser, the XQuery engine,
the SQL/XML constructors and the H-document publisher.

Only what XML needs for the paper is implemented: elements, attributes,
text; no namespaces beyond prefixed names treated literally, no processing
instructions.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import XmlError


def escape_text(value: str) -> str:
    return (
        value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def escape_attr(value: str) -> str:
    return escape_text(value).replace('"', "&quot;")


class Element:
    """An XML element with attributes and mixed content.

    Children are :class:`Element` or :class:`Text` nodes.  Parent pointers
    are maintained by :meth:`append`, enabling upward navigation.
    """

    __slots__ = ("name", "attrs", "children", "parent")

    def __init__(
        self,
        name: str,
        attrs: dict[str, str] | None = None,
        children: "list[Element | Text] | None" = None,
    ) -> None:
        if not name:
            raise XmlError("element name cannot be empty")
        self.name = name
        self.attrs: dict[str, str] = dict(attrs or {})
        self.children: list[Element | Text] = []
        self.parent: Element | None = None
        for child in children or []:
            self.append(child)

    # -- construction ------------------------------------------------------

    def append(self, child: "Element | Text | str") -> "Element | Text":
        """Attach a child node (strings become Text nodes)."""
        if isinstance(child, str):
            child = Text(child)
        if not isinstance(child, (Element, Text)):
            raise XmlError(f"cannot append {type(child).__name__} to element")
        child.parent = self
        self.children.append(child)
        return child

    def set(self, attr: str, value: str) -> None:
        self.attrs[attr] = str(value)

    def get(self, attr: str, default: str | None = None) -> str | None:
        return self.attrs.get(attr, default)

    # -- navigation -----------------------------------------------------------

    def elements(self, name: str | None = None) -> "list[Element]":
        """Child elements, optionally filtered by name (``*`` matches all)."""
        out = []
        for child in self.children:
            if isinstance(child, Element):
                if name is None or name == "*" or child.name == name:
                    out.append(child)
        return out

    def first(self, name: str) -> "Element | None":
        for child in self.children:
            if isinstance(child, Element) and child.name == name:
                return child
        return None

    def descendants(self) -> "Iterator[Element]":
        """All descendant elements, document order, self excluded."""
        for child in self.children:
            if isinstance(child, Element):
                yield child
                yield from child.descendants()

    def text(self) -> str:
        """Concatenated text content of the whole subtree."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, Text):
                parts.append(child.value)
            else:
                parts.append(child.text())
        return "".join(parts)

    def root(self) -> "Element":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    # -- equality / copying ------------------------------------------------------

    def deep_equal(self, other: "Element") -> bool:
        """Structural equality: names, attributes and ordered content."""
        if not isinstance(other, Element):
            return False
        if self.name != other.name or self.attrs != other.attrs:
            return False
        mine = [c for c in self.children if not _ignorable(c)]
        theirs = [c for c in other.children if not _ignorable(c)]
        if len(mine) != len(theirs):
            return False
        for a, b in zip(mine, theirs):
            if isinstance(a, Text) and isinstance(b, Text):
                if a.value != b.value:
                    return False
            elif isinstance(a, Element) and isinstance(b, Element):
                if not a.deep_equal(b):
                    return False
            else:
                return False
        return True

    def copy(self) -> "Element":
        """Detached deep copy."""
        clone = Element(self.name, dict(self.attrs))
        for child in self.children:
            if isinstance(child, Element):
                clone.append(child.copy())
            else:
                clone.append(Text(child.value))
        return clone

    def __repr__(self) -> str:
        return f"<Element {self.name} attrs={self.attrs}>"


class Text:
    """A text node."""

    __slots__ = ("value", "parent")

    def __init__(self, value: str) -> None:
        self.value = str(value)
        self.parent: Element | None = None

    def __repr__(self) -> str:
        return f"<Text {self.value!r}>"


def _ignorable(node: "Element | Text") -> bool:
    return isinstance(node, Text) and not node.value.strip()


Node = Element | Text
