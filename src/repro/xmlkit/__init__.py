"""XML substrate: DOM, parser, serializer and an XPath subset."""

from repro.xmlkit.dom import Element, Node, Text
from repro.xmlkit.parser import parse_fragment, parse_xml
from repro.xmlkit.serializer import serialize
from repro.xmlkit.xpath import xpath

__all__ = [
    "Element",
    "Node",
    "Text",
    "parse_fragment",
    "parse_xml",
    "serialize",
    "xpath",
]
