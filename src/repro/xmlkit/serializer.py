"""Serialization of DOM trees back to XML text."""

from __future__ import annotations

from repro.xmlkit.dom import Element, Text, escape_attr, escape_text


def serialize(node: Element | Text, indent: int | None = None) -> str:
    """Serialize a node.

    ``indent=None`` produces compact output; an integer pretty-prints with
    that many spaces per level (text-only elements stay on one line).
    """
    if isinstance(node, Text):
        return escape_text(node.value)
    if indent is None:
        return _compact(node)
    return _pretty(node, indent, 0)


def _start_tag(element: Element) -> str:
    attrs = "".join(
        f' {name}="{escape_attr(value)}"'
        for name, value in element.attrs.items()
    )
    return f"<{element.name}{attrs}"


def _compact(element: Element) -> str:
    head = _start_tag(element)
    if not element.children:
        return head + "/>"
    body = []
    for child in element.children:
        if isinstance(child, Text):
            body.append(escape_text(child.value))
        else:
            body.append(_compact(child))
    return f"{head}>{''.join(body)}</{element.name}>"


def _pretty(element: Element, indent: int, level: int) -> str:
    pad = " " * (indent * level)
    head = pad + _start_tag(element)
    if not element.children:
        return head + "/>"
    only_text = all(isinstance(c, Text) for c in element.children)
    if only_text:
        text = "".join(escape_text(c.value) for c in element.children)  # type: ignore[union-attr]
        return f"{head}>{text}</{element.name}>"
    lines = [head + ">"]
    for child in element.children:
        if isinstance(child, Text):
            if child.value.strip():
                lines.append(" " * (indent * (level + 1)) + escape_text(child.value))
        else:
            lines.append(_pretty(child, indent, level + 1))
    lines.append(f"{pad}</{element.name}>")
    return "\n".join(lines)
