"""Native XML document store (the Tamino role in the paper's evaluation).

Documents are serialized, cut into blocks and stored zlib-compressed in a
blob store ("Tamino automatically compresses documents with an algorithm
similar to gzip", paper Section 7.2).  A query that touches a document must
read and decompress all of its blocks and re-parse the tree, and an update
must re-serialize and re-store the whole document — exactly the cost
profile the paper measures against.

``compress=False`` models a hypothetical uncompressed native store (used
for the Fig. 13 comparison where uncompressed Tamino storage is 1.47x the
H-documents).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.errors import XmlError
from repro.storage.blob import BlobStore
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.xmlkit.dom import Element
from repro.xmlkit.parser import parse_xml
from repro.xmlkit.serializer import serialize

#: Documents are chunked before compression so that storage behaves like a
#: paged store rather than one giant stream.
BLOCK_CHARS = 16 * 1024

#: Models the native store's metadata/structure overhead per stored byte
#: when compression is disabled (DOM storage is fatter than raw text;
#: the paper reports a 1.47 ratio for uncompressed Tamino).
UNCOMPRESSED_OVERHEAD = 1.47


@dataclass
class _StoredDocument:
    blob_ids: list[int]
    text_size: int


class NativeXmlStore:
    """A compressed (or not) XML document store over paged blobs."""

    def __init__(self, path: str | None = None, compress: bool = True,
                 buffer_pages: int = 1024) -> None:
        # no sidecar/catalog persistence here (the document directory is
        # in-memory), so raw in-place paging models the store's IO best
        self.pager = Pager(path, durability="none")
        self.pool = BufferPool(self.pager, capacity=buffer_pages)
        self.blobs = BlobStore(self.pool)
        self.compress = compress
        self._documents: dict[str, _StoredDocument] = {}
        self._parse_cache: dict[str, Element] = {}

    # -- storage ------------------------------------------------------------

    def put_document(self, uri: str, root: Element) -> None:
        """Store (or replace) a document."""
        self.remove_document(uri, missing_ok=True)
        text = serialize(root)
        blob_ids = []
        for offset in range(0, max(len(text), 1), BLOCK_CHARS):
            chunk = text[offset : offset + BLOCK_CHARS].encode("utf-8")
            if self.compress:
                chunk = zlib.compress(chunk, level=6)
            else:
                # pad to model the native store's uncompressed overhead
                chunk = chunk + b"\x00" * int(
                    len(chunk) * (UNCOMPRESSED_OVERHEAD - 1.0)
                )
            blob_ids.append(self.blobs.put(chunk))
        self._documents[uri] = _StoredDocument(blob_ids, len(text))
        self._parse_cache[uri] = root

    def put_text(self, uri: str, text: str) -> None:
        self.put_document(uri, parse_xml(text))

    def load_document(self, uri: str) -> Element:
        """Fetch, decompress and parse a document (cached until reset)."""
        cached = self._parse_cache.get(uri)
        if cached is not None:
            return cached
        stored = self._documents.get(uri)
        if stored is None:
            raise XmlError(f"no document stored at {uri!r}")
        chunks = []
        for blob_id in stored.blob_ids:
            raw = self.blobs.get(blob_id)
            if self.compress:
                raw = zlib.decompress(raw)
            else:
                raw = raw.rstrip(b"\x00")
            chunks.append(raw.decode("utf-8"))
        root = parse_xml("".join(chunks))
        self._parse_cache[uri] = root
        return root

    def remove_document(self, uri: str, missing_ok: bool = False) -> None:
        stored = self._documents.pop(uri, None)
        self._parse_cache.pop(uri, None)
        if stored is None:
            if missing_ok:
                return
            raise XmlError(f"no document stored at {uri!r}")
        for blob_id in stored.blob_ids:
            self.blobs.delete(blob_id)

    def documents(self) -> list[str]:
        return sorted(self._documents)

    def __contains__(self, uri: str) -> bool:
        return uri in self._documents

    # -- measurement hooks ----------------------------------------------------

    def storage_bytes(self) -> int:
        """Bytes of blob pages holding the stored documents."""
        return self.blobs.size_bytes()

    def document_text_bytes(self) -> int:
        """Total size of the stored documents' serialized text."""
        return sum(d.text_size for d in self._documents.values())

    def reset_caches(self) -> None:
        """Drop parsed trees and buffered pages (cold-query protocol)."""
        self._parse_cache.clear()
        self.pool.reset()

    def close(self) -> None:
        self.pager.close()
