"""Native XML database baseline (the paper's Tamino comparator)."""

from repro.nativexml.engine import NativeXmlDatabase
from repro.nativexml.store import NativeXmlStore

__all__ = ["NativeXmlDatabase", "NativeXmlStore"]
