"""The native XML database engine: XQuery over the document store."""

from __future__ import annotations

from typing import Callable

from repro.nativexml.store import NativeXmlStore
from repro.obs.tracer import get_tracer
from repro.util.timeutil import parse_date
from repro.xmlkit.dom import Element
from repro.xquery import make_context, parse_xquery
from repro.xquery.evaluator import evaluate_query


class NativeXmlDatabase:
    """A Tamino-like native XML DBMS.

    Stores compressed H-documents and evaluates XQuery natively by loading,
    decompressing and walking whole documents.  This is the baseline system
    of the paper's performance study (Section 7).
    """

    def __init__(self, path: str | None = None, compress: bool = True) -> None:
        self.store = NativeXmlStore(path, compress=compress)
        self._clock = parse_date("1985-01-01")
        self._extra_functions: dict[str, Callable] = {}

    # -- clock ----------------------------------------------------------------

    @property
    def current_date(self) -> int:
        return self._clock

    def set_date(self, value: int | str) -> None:
        self._clock = parse_date(value) if isinstance(value, str) else value

    # -- documents ---------------------------------------------------------------

    def store_document(self, uri: str, root: Element) -> None:
        self.store.put_document(uri, root)

    def store_text(self, uri: str, text: str) -> None:
        self.store.put_text(uri, text)

    def update_document(
        self, uri: str, mutator: Callable[[Element], None]
    ) -> None:
        """Apply an in-place mutation and re-store the whole document.

        Native XML stores pay a whole-document rewrite for updates; the
        paper's Section 8.4 update comparison hinges on this.
        """
        root = self.store.load_document(uri)
        mutator(root)
        self.store.put_document(uri, root)

    # -- queries -------------------------------------------------------------------

    def xquery(self, query: str) -> list:
        """Evaluate an XQuery against the stored documents."""
        with get_tracer().span("nativexml.xquery", query=query):
            ctx = make_context(
                self.store.load_document, self._clock, self._extra_functions
            )
            return evaluate_query(parse_xquery(query), ctx)

    def register_function(self, name: str, fn: Callable) -> None:
        self._extra_functions[name.lower()] = fn

    # -- measurement hooks ------------------------------------------------------------

    def reset_caches(self) -> None:
        self.store.reset_caches()

    def storage_bytes(self) -> int:
        return self.store.storage_bytes()

    def close(self) -> None:
        self.store.close()
