"""Exception hierarchy and the wire error-code registry.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish library failures from programming errors.

The server and client share one error surface: every error response on
the wire carries a structured ``{code, message, detail}`` built by
:func:`error_response` from the :data:`WIRE_CODES` registry below, and
:func:`exception_for` maps a received code back onto this hierarchy —
so a ``DEADLOCK`` raised inside the engine arrives at the client as a
:class:`DeadlockError`, not a stringly-typed ``ServerError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(ReproError):
    """Low-level storage failure (pager, pages, heap files, blobs)."""


class PageFullError(StorageError):
    """A record or payload did not fit into the target page."""


class IndexError_(ReproError):
    """B+ tree index failure (named with a trailing underscore to avoid
    shadowing the builtin :class:`IndexError`)."""


class CatalogError(ReproError):
    """Schema-level failure: unknown table/column, duplicate definitions."""


class IntegrityError(ReproError):
    """Constraint violation (duplicate primary key, type mismatch on row)."""


class SqlError(ReproError):
    """Base class for SQL front-end failures.

    Parser errors carry the source position (``line``/``column``, both
    1-based) and the offending token text so callers — and the server's
    structured error responses — can point at the exact spot in the
    statement instead of an opaque "unexpected token".
    """

    def __init__(
        self,
        message: str,
        *,
        line: int | None = None,
        column: int | None = None,
        token: str | None = None,
    ) -> None:
        super().__init__(message)
        self.line = line
        self.column = column
        self.token = token


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""


class SqlPlanError(SqlError):
    """The SQL statement parsed but could not be planned or executed."""


class XmlError(ReproError):
    """XML parsing or construction failure."""


class XPathError(ReproError):
    """XPath parsing or evaluation failure."""


class XQueryError(ReproError):
    """Base class for XQuery front-end failures."""


class XQuerySyntaxError(XQueryError):
    """The XQuery text could not be tokenized or parsed."""


class XQueryTypeError(XQueryError):
    """An XQuery expression was applied to a value of the wrong kind."""


class TranslationError(ReproError):
    """XQuery-to-SQL/XML translation failed outright (bad mapping input)."""


class UnsupportedQueryError(TranslationError):
    """The query is valid XQuery but outside the translatable subset.

    Callers may fall back to native evaluation over the published H-view
    (see ``ArchIS.query(allow_fallback=True)``).
    """


class TxnError(ReproError):
    """Transaction-layer failure (invalid state transitions, lock errors)."""


class DeadlockError(TxnError):
    """Granting a lock wait would close a cycle in the wait-for graph.

    The requesting transaction is the victim: it should abort (releasing
    its locks) and may retry.
    """


class LockTimeoutError(TxnError):
    """A lock could not be acquired within the configured timeout."""


class ServerError(ReproError):
    """Server front-end failure (protocol, session management)."""


class ServerBusyError(ServerError):
    """Admission control rejected the request (queue full / too many
    in-flight requests); the client should back off and retry."""


class ProtocolError(ServerError):
    """A malformed frame or request reached the server or client."""


class UnsupportedVersionError(ProtocolError):
    """The peer speaks a wire-protocol version this build does not.

    The server answers requests carrying an unknown ``v`` field with a
    structured ``UNSUPPORTED_VERSION`` error (code, the offered version
    and the supported ones) instead of a confusing decode failure.
    """


class JobError(ServerError):
    """Async-job subsystem failure (submission, lifecycle, fetch)."""


class JobNotFoundError(JobError):
    """No job with the given id exists (never submitted, or its result
    expired past the manager's TTL and was evicted)."""


class JobStateError(JobError):
    """The operation is invalid for the job's current state (e.g.
    fetching the result of a job that is still RUNNING)."""


class ArchisError(ReproError):
    """ArchIS system-level failure (tracking, clustering, compression)."""


class CompressionError(ArchisError):
    """BlockZIP compression or decompression failure."""


# -- the wire error-code registry ------------------------------------------

#: wire error code -> exception class.  One registry for both directions:
#: the server picks the *code* for an exception it caught (most-derived
#: class wins, via :func:`code_for`), the client picks the *exception*
#: for a code it received (via :func:`exception_for`).  Codes are stable
#: API; exception class names are not.
WIRE_CODES: dict[str, type[ReproError]] = {
    "BUSY": ServerBusyError,
    "UNSUPPORTED_VERSION": UnsupportedVersionError,
    "TEMPORAL_PARAMS_UNSUPPORTED": UnsupportedVersionError,
    "BINARY_ENCODING_UNSUPPORTED": UnsupportedVersionError,
    "JOBS_UNSUPPORTED": UnsupportedVersionError,
    "PROTOCOL": ProtocolError,
    "JOB_NOT_FOUND": JobNotFoundError,
    "JOB_STATE": JobStateError,
    "JOB": JobError,
    "SERVER": ServerError,
    "DEADLOCK": DeadlockError,
    "LOCK_TIMEOUT": LockTimeoutError,
    "TXN": TxnError,
    "SQL_SYNTAX": SqlSyntaxError,
    "SQL_PLAN": SqlPlanError,
    "SQL": SqlError,
    "UNSUPPORTED_QUERY": UnsupportedQueryError,
    "TRANSLATION": TranslationError,
    "XQUERY_SYNTAX": XQuerySyntaxError,
    "XQUERY": XQueryError,
    "XPATH": XPathError,
    "XML": XmlError,
    "COMPRESSION": CompressionError,
    "ARCHIS": ArchisError,
    "INTEGRITY": IntegrityError,
    "CATALOG": CatalogError,
    "INDEX": IndexError_,
    "STORAGE": StorageError,
    "ERROR": ReproError,
    #: non-ReproError escaping a handler: a bug, reported but opaque
    "INTERNAL": ServerError,
}

#: exception class -> its canonical code.  Several codes may share a
#: class (the feature-gate UNSUPPORTED_* family all surface as
#: UnsupportedVersionError); the generic code is pinned explicitly so
#: server-side ``code_for`` never picks a feature-specific one.
_CODE_OF: dict[type[ReproError], str] = {}
for _code, _cls in WIRE_CODES.items():
    _CODE_OF.setdefault(_cls, _code)
_CODE_OF[UnsupportedVersionError] = "UNSUPPORTED_VERSION"
_CODE_OF[ServerError] = "SERVER"


def code_for(exc: BaseException) -> str:
    """The wire code for ``exc``: the code of the most-derived class in
    its MRO that the registry knows; ``INTERNAL`` for foreign errors."""
    override = getattr(exc, "code", None)
    if isinstance(override, str) and override in WIRE_CODES:
        return override
    for cls in type(exc).__mro__:
        code = _CODE_OF.get(cls)
        if code is not None:
            return code
    return "INTERNAL"


def error_response(
    exc: BaseException | None = None,
    *,
    code: str | None = None,
    message: str | None = None,
    detail: dict | None = None,
    **extra,
) -> dict:
    """The structured ``{ok, error, code, message, detail}`` response
    for an error, plus any ``extra`` top-level fields (e.g. the
    ``offered``/``supported`` pair of version rejections)."""
    if exc is not None:
        code = code or code_for(exc)
        message = message if message is not None else str(exc)
        if detail is None:
            detail = getattr(exc, "detail", None)
        if detail is None and isinstance(exc, SqlError):
            detail = {
                k: v
                for k, v in (
                    ("line", exc.line),
                    ("column", exc.column),
                    ("token", exc.token),
                )
                if v is not None
            } or None
        error_name = (
            type(exc).__name__
            if isinstance(exc, ReproError)
            else "InternalError"
        )
        if not isinstance(exc, ReproError):
            message = f"{type(exc).__name__}: {exc}"
    else:
        error_name = WIRE_CODES.get(code or "ERROR", ReproError).__name__
    response = {
        "ok": False,
        "error": error_name,
        "code": code or "INTERNAL",
        "message": message or "",
    }
    if detail:
        response["detail"] = detail
    response.update(extra)
    return response


def exception_for(
    code: str | None,
    message: str,
    *,
    error: str | None = None,
    detail: dict | None = None,
) -> ReproError:
    """Rebuild a typed exception from a structured error response.

    Unknown/missing codes degrade to :class:`ServerError` with the
    remote error name folded into the message, so a newer server never
    crashes an older client.  The instance carries ``code``, ``detail``
    and ``remote_error`` attributes for callers that dispatch on them.
    """
    cls = WIRE_CODES.get(code or "", None)
    if cls is None:
        cls = ServerError
        message = f"{error or 'ServerError'}: {message}"
    if issubclass(cls, SqlError):
        exc = cls(
            message,
            line=(detail or {}).get("line"),
            column=(detail or {}).get("column"),
            token=(detail or {}).get("token"),
        )
    else:
        exc = cls(message)
    exc.code = code
    exc.detail = detail
    exc.remote_error = error
    return exc
