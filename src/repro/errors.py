"""Exception hierarchy for the ArchIS reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish library failures from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(ReproError):
    """Low-level storage failure (pager, pages, heap files, blobs)."""


class PageFullError(StorageError):
    """A record or payload did not fit into the target page."""


class IndexError_(ReproError):
    """B+ tree index failure (named with a trailing underscore to avoid
    shadowing the builtin :class:`IndexError`)."""


class CatalogError(ReproError):
    """Schema-level failure: unknown table/column, duplicate definitions."""


class IntegrityError(ReproError):
    """Constraint violation (duplicate primary key, type mismatch on row)."""


class SqlError(ReproError):
    """Base class for SQL front-end failures.

    Parser errors carry the source position (``line``/``column``, both
    1-based) and the offending token text so callers — and the server's
    structured error responses — can point at the exact spot in the
    statement instead of an opaque "unexpected token".
    """

    def __init__(
        self,
        message: str,
        *,
        line: int | None = None,
        column: int | None = None,
        token: str | None = None,
    ) -> None:
        super().__init__(message)
        self.line = line
        self.column = column
        self.token = token


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""


class SqlPlanError(SqlError):
    """The SQL statement parsed but could not be planned or executed."""


class XmlError(ReproError):
    """XML parsing or construction failure."""


class XPathError(ReproError):
    """XPath parsing or evaluation failure."""


class XQueryError(ReproError):
    """Base class for XQuery front-end failures."""


class XQuerySyntaxError(XQueryError):
    """The XQuery text could not be tokenized or parsed."""


class XQueryTypeError(XQueryError):
    """An XQuery expression was applied to a value of the wrong kind."""


class TranslationError(ReproError):
    """XQuery-to-SQL/XML translation failed outright (bad mapping input)."""


class UnsupportedQueryError(TranslationError):
    """The query is valid XQuery but outside the translatable subset.

    Callers may fall back to native evaluation over the published H-view
    (see ``ArchIS.query(allow_fallback=True)``).
    """


class TxnError(ReproError):
    """Transaction-layer failure (invalid state transitions, lock errors)."""


class DeadlockError(TxnError):
    """Granting a lock wait would close a cycle in the wait-for graph.

    The requesting transaction is the victim: it should abort (releasing
    its locks) and may retry.
    """


class LockTimeoutError(TxnError):
    """A lock could not be acquired within the configured timeout."""


class ServerError(ReproError):
    """Server front-end failure (protocol, session management)."""


class ServerBusyError(ServerError):
    """Admission control rejected the request (queue full / too many
    in-flight requests); the client should back off and retry."""


class ProtocolError(ServerError):
    """A malformed frame or request reached the server or client."""


class UnsupportedVersionError(ProtocolError):
    """The peer speaks a wire-protocol version this build does not.

    The server answers requests carrying an unknown ``v`` field with a
    structured ``UNSUPPORTED_VERSION`` error (code, the offered version
    and the supported ones) instead of a confusing decode failure.
    """


class ArchisError(ReproError):
    """ArchIS system-level failure (tracking, clustering, compression)."""


class CompressionError(ArchisError):
    """BlockZIP compression or decompression failure."""
