"""SQL parser (recursive descent over the token list)."""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import Token, tokenize


class SqlParser:
    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.pos = 0

    # -- plumbing ---------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "KEYWORD" and token.value in words

    def at_op(self, *ops: str) -> bool:
        token = self.peek()
        return token.kind == "OP" and token.value in ops

    def at_name(self, word: str) -> bool:
        """Contextual (non-reserved) word match, e.g. TO / JOIN."""
        token = self.peek()
        return token.kind == "NAME" and token.value == word

    def fail(self, message: str, token: Token | None = None) -> None:
        token = token if token is not None else self.peek()
        shown = token.value if token.kind != "EOF" else "end of input"
        raise SqlSyntaxError(
            f"{message} at line {token.line}:{token.column} near {shown!r}",
            line=token.line,
            column=token.column,
            token=shown,
        )

    def expect_keyword(self, word: str) -> Token:
        token = self.next()
        if token.kind != "KEYWORD" or token.value != word:
            self.fail(f"expected {word.upper()}", token)
        return token

    def expect_op(self, op: str) -> Token:
        token = self.next()
        if token.kind != "OP" or token.value != op:
            self.fail(f"expected {op!r}", token)
        return token

    def expect_name(self) -> str:
        token = self.next()
        if token.kind in ("NAME", "QNAME"):
            return token.value
        # non-reserved keywords usable as identifiers
        if token.kind == "KEYWORD" and token.value in (
            "name", "date", "key", "table", "index", "of", "normalize",
        ):
            return token.value
        self.fail("expected identifier", token)

    # -- entry point -------------------------------------------------------------

    def parse_statement(self):
        token = self.peek()
        if token.kind != "KEYWORD":
            self.fail("expected a statement", token)
        if token.value == "select":
            stmt = self.parse_select()
        elif token.value == "insert":
            stmt = self.parse_insert()
        elif token.value == "update":
            stmt = self.parse_update()
        elif token.value == "delete":
            stmt = self.parse_delete()
        elif token.value == "create":
            stmt = self.parse_create()
        elif token.value == "drop":
            stmt = self.parse_drop()
        else:
            self.fail(f"unsupported statement {token.value!r}", token)
        if self.at_op(";"):
            self.next()
        if self.peek().kind != "EOF":
            self.fail("trailing input")
        return stmt

    # -- SELECT ---------------------------------------------------------------------

    def parse_select(self) -> ast.Select:
        self.expect_keyword("select")
        distinct = False
        normalize = False
        while self.at_keyword("distinct", "normalize"):
            if self.next().value == "distinct":
                distinct = True
            else:
                normalize = True
        items = [self.parse_select_item()]
        while self.at_op(","):
            self.next()
            items.append(self.parse_select_item())
        self.expect_keyword("from")
        sources = [self.parse_joined_source()]
        while self.at_op(","):
            self.next()
            sources.append(self.parse_joined_source())
        where = None
        if self.at_keyword("where"):
            self.next()
            where = self.parse_expr()
        group_by: list = []
        if self.at_keyword("group"):
            self.next()
            self.expect_keyword("by")
            group_by.append(self.parse_expr())
            while self.at_op(","):
                self.next()
                group_by.append(self.parse_expr())
        order_by: list = []
        if self.at_keyword("order"):
            self.next()
            self.expect_keyword("by")
            order_by.append(self.parse_order_item())
            while self.at_op(","):
                self.next()
                order_by.append(self.parse_order_item())
        limit = None
        if self.at_keyword("limit"):
            self.next()
            token = self.next()
            if token.kind != "NUMBER":
                self.fail("LIMIT expects a number", token)
            limit = int(token.value)
        return ast.Select(
            tuple(items), tuple(sources), where, tuple(group_by),
            tuple(order_by), limit, distinct, normalize,
        )

    def parse_select_item(self) -> ast.SelectItem:
        if self.at_op("*"):
            self.next()
            return ast.SelectItem(ast.Star())
        expr = self.parse_expr()
        alias = None
        if self.at_keyword("as"):
            self.next()
            alias = self.expect_name()
        elif self.peek().kind in ("NAME", "QNAME"):
            alias = self.next().value
        return ast.SelectItem(expr, alias)

    def parse_joined_source(self):
        """One FROM-list entry: a source, optionally chained with
        ``TEMPORAL JOIN ... ON ...`` (left-associative)."""
        source = self.parse_source()
        while self.at_keyword("temporal"):
            self.next()
            if not self.at_name("join"):
                self.fail("expected JOIN after TEMPORAL")
            self.next()
            right = self.parse_source()
            self.expect_keyword("on")
            on = self.parse_expr()
            source = ast.TemporalJoinRef(source, right, on)
        return source

    def parse_source(self):
        if self.at_keyword("table"):
            self.next()
            self.expect_op("(")
            function = self.expect_name()
            self.expect_op("(")
            args: list = []
            if not self.at_op(")"):
                args.append(self.parse_expr())
                while self.at_op(","):
                    self.next()
                    args.append(self.parse_expr())
            self.expect_op(")")
            self.expect_op(")")
            if self.at_keyword("as"):
                self.next()
            alias = self.expect_name()
            columns: list = []
            if self.at_op("("):
                self.next()
                columns.append(self.expect_name())
                while self.at_op(","):
                    self.next()
                    columns.append(self.expect_name())
                self.expect_op(")")
            return ast.TableFunctionRef(
                function, tuple(args), alias, tuple(columns),
                self.parse_temporal_clause(),
            )
        name = self.expect_name()
        alias = name
        if self.at_keyword("as"):
            self.next()
            alias = self.expect_name()
        elif self.peek().kind == "NAME" and not self.at_name("join"):
            alias = self.next().value
        return ast.TableRef(name, alias, self.parse_temporal_clause())

    def parse_temporal_clause(self) -> ast.TemporalClause | None:
        """``FOR SYSTEM_TIME AS OF t | FROM t1 TO t2 | BETWEEN t1 AND t2``."""
        if not self.at_keyword("for"):
            return None
        self.next()
        self.expect_keyword("system_time")
        if self.at_keyword("as"):
            self.next()
            self.expect_keyword("of")
            return ast.TemporalClause("as_of", self.parse_temporal_bound())
        if self.at_keyword("from"):
            self.next()
            low = self.parse_temporal_bound()
            if not self.at_name("to"):
                self.fail("expected TO in FOR SYSTEM_TIME FROM ... TO ...")
            self.next()
            return ast.TemporalClause("from_to", low, self.parse_temporal_bound())
        if self.at_keyword("between"):
            self.next()
            low = self.parse_temporal_bound()
            self.expect_keyword("and")
            return ast.TemporalClause("between", low, self.parse_temporal_bound())
        self.fail("expected AS OF, FROM or BETWEEN after FOR SYSTEM_TIME")
        return None

    def parse_temporal_bound(self):
        """A temporal bound: DATE '...', a bare '...' date string (``'now'``
        allowed), an integer day number, or a ``:name`` parameter."""
        token = self.peek()
        if token.kind == "PARAM":
            self.next()
            return ast.Param(token.value)
        if token.kind == "NUMBER" and "." not in token.value:
            self.next()
            return ast.Literal(int(token.value))
        if token.kind == "STRING" or self.at_keyword("date"):
            if self.at_keyword("date"):
                self.next()
                token = self.peek()
                if token.kind != "STRING":
                    self.fail("DATE literal expects a string", token)
            self.next()
            from repro.util.timeutil import parse_date

            try:
                return ast.DateLiteral(parse_date(token.value))
            except ValueError:
                self.fail(f"bad date {token.value!r} in temporal bound", token)
        self.fail("expected a date bound after FOR SYSTEM_TIME", token)
        return None

    def parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.at_keyword("desc"):
            self.next()
            descending = True
        elif self.at_keyword("asc"):
            self.next()
        return ast.OrderItem(expr, descending)

    # -- DML / DDL -----------------------------------------------------------------------

    def parse_insert(self):
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_name()
        columns: list = []
        if self.at_op("("):
            self.next()
            columns.append(self.expect_name())
            while self.at_op(","):
                self.next()
                columns.append(self.expect_name())
            self.expect_op(")")
        if self.at_keyword("select"):
            select = self.parse_select()
            return ast.InsertSelect(table, tuple(columns), select)
        self.expect_keyword("values")
        rows = [self.parse_value_row()]
        while self.at_op(","):
            self.next()
            rows.append(self.parse_value_row())
        return ast.Insert(table, tuple(columns), tuple(rows))

    def parse_value_row(self) -> tuple:
        self.expect_op("(")
        values = [self.parse_expr()]
        while self.at_op(","):
            self.next()
            values.append(self.parse_expr())
        self.expect_op(")")
        return tuple(values)

    def parse_update(self) -> ast.Update:
        self.expect_keyword("update")
        table = self.expect_name()
        self.expect_keyword("set")
        assignments = [self.parse_assignment()]
        while self.at_op(","):
            self.next()
            assignments.append(self.parse_assignment())
        where = None
        if self.at_keyword("where"):
            self.next()
            where = self.parse_expr()
        return ast.Update(table, tuple(assignments), where)

    def parse_assignment(self) -> tuple:
        column = self.expect_name()
        self.expect_op("=")
        return (column, self.parse_expr())

    def parse_delete(self) -> ast.Delete:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_name()
        where = None
        if self.at_keyword("where"):
            self.next()
            where = self.parse_expr()
        return ast.Delete(table, where)

    def parse_create(self):
        self.expect_keyword("create")
        unique = False
        if self.at_keyword("unique"):
            self.next()
            unique = True
        if self.at_keyword("table"):
            if unique:
                raise SqlSyntaxError("UNIQUE TABLE is not a thing")
            self.next()
            return self.parse_create_table()
        if self.at_keyword("index"):
            self.next()
            return self.parse_create_index(unique)
        raise SqlSyntaxError("expected TABLE or INDEX after CREATE")

    def parse_create_table(self) -> ast.CreateTable:
        name = self.expect_name()
        self.expect_op("(")
        columns: list[ast.ColumnDef] = []
        primary_key: tuple = ()
        while True:
            if self.at_keyword("primary"):
                self.next()
                self.expect_keyword("key")
                self.expect_op("(")
                pk = [self.expect_name()]
                while self.at_op(","):
                    self.next()
                    pk.append(self.expect_name())
                self.expect_op(")")
                primary_key = tuple(pk)
            else:
                col_name = self.expect_name()
                type_token = self.next()
                if type_token.kind not in ("KEYWORD", "NAME"):
                    raise SqlSyntaxError(
                        f"expected a type for column {col_name}"
                    )
                type_name = type_token.value.lower()
                if self.at_op("("):  # e.g. VARCHAR(20): size ignored
                    self.next()
                    self.next()
                    self.expect_op(")")
                columns.append(ast.ColumnDef(col_name, type_name))
            if self.at_op(","):
                self.next()
                continue
            break
        self.expect_op(")")
        return ast.CreateTable(name, tuple(columns), primary_key)

    def parse_create_index(self, unique: bool) -> ast.CreateIndex:
        name = self.expect_name()
        self.expect_keyword("on")
        table = self.expect_name()
        self.expect_op("(")
        columns = [self.expect_name()]
        while self.at_op(","):
            self.next()
            columns.append(self.expect_name())
        self.expect_op(")")
        return ast.CreateIndex(name, table, tuple(columns), unique)

    def parse_drop(self) -> ast.DropTable:
        self.expect_keyword("drop")
        self.expect_keyword("table")
        return ast.DropTable(self.expect_name())

    # -- expressions ----------------------------------------------------------------------

    def parse_expr(self):
        return self.parse_or()

    def parse_or(self):
        node = self.parse_and()
        while self.at_keyword("or"):
            self.next()
            node = ast.BinaryOp("or", node, self.parse_and())
        return node

    def parse_and(self):
        node = self.parse_not()
        while self.at_keyword("and"):
            self.next()
            node = ast.BinaryOp("and", node, self.parse_not())
        return node

    def parse_not(self):
        if self.at_keyword("not"):
            self.next()
            return ast.UnaryOp("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self):
        node = self.parse_additive()
        if self.at_op("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self.next().value
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, node, self.parse_additive())
        negated = False
        if self.at_keyword("not"):
            # IN / BETWEEN / LIKE with NOT
            save = self.pos
            self.next()
            if self.at_keyword("in", "between", "like"):
                negated = True
            else:
                self.pos = save
                return node
        if self.at_keyword("in"):
            self.next()
            self.expect_op("(")
            if self.at_keyword("select"):
                subquery = ast.Subquery(self.parse_select())
                self.expect_op(")")
                return ast.InSubquery(node, subquery, negated)
            items = [self.parse_expr()]
            while self.at_op(","):
                self.next()
                items.append(self.parse_expr())
            self.expect_op(")")
            return ast.InList(node, tuple(items), negated)
        if self.at_keyword("between"):
            self.next()
            low = self.parse_additive()
            self.expect_keyword("and")
            high = self.parse_additive()
            return ast.Between(node, low, high, negated)
        if self.at_keyword("like"):
            self.next()
            return ast.LikeOp(node, self.parse_additive(), negated)
        if self.at_keyword("is"):
            self.next()
            is_negated = False
            if self.at_keyword("not"):
                self.next()
                is_negated = True
            self.expect_keyword("null")
            return ast.IsNull(node, is_negated)
        return node

    def parse_additive(self):
        node = self.parse_multiplicative()
        while self.at_op("+", "-", "||"):
            op = self.next().value
            node = ast.BinaryOp(op, node, self.parse_multiplicative())
        return node

    def parse_multiplicative(self):
        node = self.parse_unary()
        while self.at_op("*", "/"):
            op = self.next().value
            node = ast.BinaryOp(op, node, self.parse_unary())
        return node

    def parse_unary(self):
        if self.at_op("-"):
            self.next()
            return ast.UnaryOp("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self):
        token = self.peek()
        if token.kind == "NUMBER":
            self.next()
            value = float(token.value) if "." in token.value else int(token.value)
            return ast.Literal(value)
        if token.kind == "STRING":
            self.next()
            return ast.Literal(token.value)
        if token.kind == "PARAM":
            self.next()
            return ast.Param(token.value)
        if token.kind == "KEYWORD":
            if token.value == "null":
                self.next()
                return ast.Literal(None)
            if token.value == "date":
                self.next()
                literal = self.next()
                if literal.kind != "STRING":
                    raise SqlSyntaxError("DATE literal expects a string")
                from repro.util.timeutil import parse_date

                return ast.DateLiteral(parse_date(literal.value))
            if token.value == "case":
                return self.parse_case()
            if token.value == "xmlelement":
                return self.parse_xmlelement()
            if token.value == "xmlagg":
                return self.parse_xmlagg()
        if self.at_op("("):
            self.next()
            if self.at_keyword("select"):
                subquery = ast.Subquery(self.parse_select())
                self.expect_op(")")
                return subquery
            node = self.parse_expr()
            self.expect_op(")")
            return node
        if token.kind == "NAME" and token.value == "exists":
            self.next()
            self.expect_op("(")
            subquery = ast.Subquery(self.parse_select())
            self.expect_op(")")
            return ast.ExistsSubquery(subquery)
        if token.kind in ("NAME", "QNAME"):
            return self.parse_name_expr()
        if token.kind == "KEYWORD" and token.value in ("name", "key", "index"):
            # soft keywords usable as column names
            return self.parse_name_expr()
        self.fail("unexpected token", token)

    def parse_case(self) -> ast.CaseExpr:
        self.expect_keyword("case")
        whens = []
        while self.at_keyword("when"):
            self.next()
            condition = self.parse_expr()
            self.expect_keyword("then")
            whens.append((condition, self.parse_expr()))
        else_result = None
        if self.at_keyword("else"):
            self.next()
            else_result = self.parse_expr()
        self.expect_keyword("end")
        if not whens:
            raise SqlSyntaxError("CASE requires at least one WHEN")
        return ast.CaseExpr(tuple(whens), else_result)

    def parse_name_expr(self):
        name = self.next().value
        if self.at_op("."):
            self.next()
            if self.at_op("*"):
                self.next()
                return ast.Star(name)
            column = self.expect_name()
            return ast.ColumnRef(name, column)
        if self.at_op("("):
            self.next()
            distinct = False
            if self.at_keyword("distinct"):
                self.next()
                distinct = True
            args: list = []
            if self.at_op("*"):
                self.next()
                args.append(ast.Star())
            elif not self.at_op(")"):
                args.append(self.parse_expr())
                while self.at_op(","):
                    self.next()
                    args.append(self.parse_expr())
            self.expect_op(")")
            return ast.FunctionCall(name.lower(), tuple(args), distinct)
        return ast.ColumnRef(None, name)

    # -- SQL/XML --------------------------------------------------------------------------

    def parse_xmlelement(self) -> ast.XmlElementExpr:
        self.expect_keyword("xmlelement")
        self.expect_op("(")
        self.expect_keyword("name")
        tag_token = self.next()
        if tag_token.kind not in ("QNAME", "STRING", "NAME"):
            raise SqlSyntaxError("XMLElement NAME expects an identifier")
        tag = tag_token.value
        attributes: list = []
        content: list = []
        while self.at_op(","):
            self.next()
            if self.at_keyword("xmlattributes"):
                self.next()
                self.expect_op("(")
                attributes.append(self.parse_xmlattribute())
                while self.at_op(","):
                    self.next()
                    attributes.append(self.parse_xmlattribute())
                self.expect_op(")")
            else:
                content.append(self.parse_expr())
        self.expect_op(")")
        return ast.XmlElementExpr(tag, tuple(attributes), tuple(content))

    def parse_xmlattribute(self) -> ast.XmlAttribute:
        value = self.parse_expr()
        self.expect_keyword("as")
        name_token = self.next()
        if name_token.kind not in ("QNAME", "STRING", "NAME"):
            raise SqlSyntaxError("XMLAttributes AS expects a name")
        return ast.XmlAttribute(value, name_token.value)

    def parse_xmlagg(self) -> ast.XmlAggExpr:
        self.expect_keyword("xmlagg")
        self.expect_op("(")
        operand = self.parse_expr()
        order_by: list = []
        if self.at_keyword("order"):
            self.next()
            self.expect_keyword("by")
            order_by.append(self.parse_order_item())
            while self.at_op(","):
                self.next()
                order_by.append(self.parse_order_item())
        self.expect_op(")")
        return ast.XmlAggExpr(operand, tuple(order_by))


def parse_sql(text: str):
    """Parse one SQL statement."""
    return SqlParser(text).parse_statement()
