"""SQL expression compilation.

Expressions compile to Python closures over an environment dict keyed by
``(alias, column)``.  Compilation resolves unqualified column references
against the visible sources, so typos fail at plan time rather than on the
millionth row.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import SqlPlanError
from repro.sql import ast
from repro.sql.sqlxml import build_xml_element

Env = dict
CompiledExpr = Callable[[Env, Mapping[str, object]], object]

AGGREGATE_NAMES = {"count", "sum", "avg", "min", "max"}


class Scope:
    """Column visibility for one query: alias -> ordered column names.

    Carries the database handle so (uncorrelated) subqueries can be
    planned during expression compilation.
    """

    def __init__(
        self, columns_by_alias: Mapping[str, list[str]], db=None
    ) -> None:
        self.columns_by_alias = dict(columns_by_alias)
        self.db = db

    def resolve(self, ref: ast.ColumnRef) -> tuple[str, str]:
        if ref.table is not None:
            columns = self.columns_by_alias.get(ref.table)
            if columns is None:
                raise SqlPlanError(f"unknown table alias {ref.table!r}")
            if ref.column not in columns:
                raise SqlPlanError(
                    f"table {ref.table!r} has no column {ref.column!r}"
                )
            return (ref.table, ref.column)
        owners = [
            alias
            for alias, columns in self.columns_by_alias.items()
            if ref.column in columns
        ]
        if not owners:
            raise SqlPlanError(f"unknown column {ref.column!r}")
        if len(owners) > 1:
            raise SqlPlanError(
                f"ambiguous column {ref.column!r} (in {sorted(owners)})"
            )
        return (owners[0], ref.column)

    def all_pairs(self) -> list[tuple[str, str]]:
        out = []
        for alias, columns in self.columns_by_alias.items():
            out.extend((alias, column) for column in columns)
        return out


def contains_aggregate(node: object) -> bool:
    """True when the expression contains an aggregate or XMLAgg call."""
    if isinstance(node, ast.FunctionCall):
        if node.name in AGGREGATE_NAMES:
            return True
        return any(contains_aggregate(a) for a in node.args)
    if isinstance(node, ast.XmlAggExpr):
        return True
    if isinstance(node, ast.BinaryOp):
        return contains_aggregate(node.left) or contains_aggregate(node.right)
    if isinstance(node, ast.UnaryOp):
        return contains_aggregate(node.operand)
    if isinstance(node, ast.XmlElementExpr):
        return any(contains_aggregate(a.value) for a in node.attributes) or any(
            contains_aggregate(c) for c in node.content
        )
    if isinstance(node, ast.CaseExpr):
        branches = [c for pair in node.whens for c in pair]
        if node.else_result is not None:
            branches.append(node.else_result)
        return any(contains_aggregate(b) for b in branches)
    if isinstance(node, (ast.InList, ast.Between, ast.IsNull, ast.LikeOp)):
        return contains_aggregate(node.operand)
    return False


def compile_expr(node: object, scope: Scope, functions: Mapping) -> CompiledExpr:
    """Compile an expression AST into a closure ``(env, params) -> value``.

    ``functions`` maps lower-case names to Python callables for scalar
    functions (including the registered temporal UDFs).
    """
    if isinstance(node, ast.Literal):
        value = node.value
        return lambda env, params: value
    if isinstance(node, ast.DateLiteral):
        days = node.days
        return lambda env, params: days
    if isinstance(node, ast.Param):
        name = node.name
        def run_param(env, params):
            if name not in params:
                raise SqlPlanError(f"missing query parameter :{name}")
            return params[name]
        return run_param
    if isinstance(node, ast.ColumnRef):
        key = scope.resolve(node)
        return lambda env, params: env.get(key)
    if isinstance(node, ast.BinaryOp):
        return _compile_binary(node, scope, functions)
    if isinstance(node, ast.UnaryOp):
        inner = compile_expr(node.operand, scope, functions)
        if node.op == "not":
            return lambda env, params: _not(inner(env, params))
        if node.op == "-":
            return lambda env, params: _neg(inner(env, params))
        raise SqlPlanError(f"unknown unary operator {node.op}")
    if isinstance(node, ast.InList):
        operand = compile_expr(node.operand, scope, functions)
        items = [compile_expr(i, scope, functions) for i in node.items]
        negated = node.negated
        def run_in(env, params):
            value = operand(env, params)
            if value is None:
                return False
            hit = any(value == item(env, params) for item in items)
            return hit != negated
        return run_in
    if isinstance(node, ast.Between):
        operand = compile_expr(node.operand, scope, functions)
        low = compile_expr(node.low, scope, functions)
        high = compile_expr(node.high, scope, functions)
        negated = node.negated
        def run_between(env, params):
            value = operand(env, params)
            if value is None:
                return False
            hit = low(env, params) <= value <= high(env, params)
            return hit != negated
        return run_between
    if isinstance(node, ast.IsNull):
        operand = compile_expr(node.operand, scope, functions)
        negated = node.negated
        return lambda env, params: (operand(env, params) is None) != negated
    if isinstance(node, ast.LikeOp):
        operand = compile_expr(node.operand, scope, functions)
        pattern = compile_expr(node.pattern, scope, functions)
        negated = node.negated
        def run_like(env, params):
            value = operand(env, params)
            if value is None:
                return False
            hit = _like(str(value), str(pattern(env, params)))
            return hit != negated
        return run_like
    if isinstance(node, ast.CaseExpr):
        whens = [
            (compile_expr(c, scope, functions), compile_expr(r, scope, functions))
            for c, r in node.whens
        ]
        else_fn = (
            compile_expr(node.else_result, scope, functions)
            if node.else_result is not None
            else None
        )
        def run_case(env, params):
            for condition, result in whens:
                if condition(env, params):
                    return result(env, params)
            return else_fn(env, params) if else_fn else None
        return run_case
    if isinstance(node, ast.FunctionCall):
        if node.name in AGGREGATE_NAMES:
            raise SqlPlanError(
                f"aggregate {node.name}() in a row-level expression"
            )
        fn = functions.get(node.name)
        if fn is None:
            raise SqlPlanError(f"unknown SQL function {node.name}()")
        args = [compile_expr(a, scope, functions) for a in node.args]
        return lambda env, params: fn(*(a(env, params) for a in args))
    if isinstance(node, ast.XmlElementExpr):
        attrs = [
            (a.name, compile_expr(a.value, scope, functions))
            for a in node.attributes
        ]
        content = [compile_expr(c, scope, functions) for c in node.content]
        tag = node.tag
        def run_xmlelement(env, params):
            return build_xml_element(
                tag,
                [(name, value(env, params)) for name, value in attrs],
                [c(env, params) for c in content],
            )
        return run_xmlelement
    if isinstance(node, ast.Subquery):
        rows_fn = _compile_subquery(node, scope)
        def run_scalar_subquery(env, params):
            rows = rows_fn(params)
            if not rows:
                return None
            if len(rows) > 1:
                raise SqlPlanError("scalar subquery returned multiple rows")
            if len(rows[0]) != 1:
                raise SqlPlanError("scalar subquery must have one column")
            return rows[0][0]
        return run_scalar_subquery
    if isinstance(node, ast.InSubquery):
        operand = compile_expr(node.operand, scope, functions)
        rows_fn = _compile_subquery(node.subquery, scope)
        negated = node.negated
        def run_in_subquery(env, params):
            value = operand(env, params)
            if value is None:
                return False
            hit = any(row[0] == value for row in rows_fn(params))
            return hit != negated
        return run_in_subquery
    if isinstance(node, ast.ExistsSubquery):
        rows_fn = _compile_subquery(node.subquery, scope)
        negated = node.negated
        return lambda env, params: bool(rows_fn(params)) != negated
    if isinstance(node, ast.XmlAggExpr):
        raise SqlPlanError("XMLAgg outside an aggregate query")
    if isinstance(node, ast.Star):
        raise SqlPlanError("'*' is only allowed in COUNT(*) or SELECT *")
    raise SqlPlanError(f"cannot compile {type(node).__name__}")


def _compile_subquery(node: ast.Subquery, scope: Scope):
    """Plan an uncorrelated subquery; returns ``rows_fn(params)``.

    The subquery sees only its own sources (no outer-row correlation) and
    its result is cached per ``params`` object, so an IN-subquery executes
    once per statement, not once per outer row.
    """
    if scope.db is None:
        raise SqlPlanError("subqueries are not available in this context")
    from repro.sql.planner import SelectPlan

    plan = SelectPlan(scope.db, node.select)
    cache: dict = {}

    def rows_fn(params):
        key = id(params)
        hit = cache.get(key)
        if hit is not None and hit[0] is params:
            return hit[1]
        rows = plan.execute(params).rows
        cache.clear()
        cache[key] = (params, rows)
        return rows

    return rows_fn


def _compile_binary(node: ast.BinaryOp, scope: Scope, functions) -> CompiledExpr:
    op = node.op
    left = compile_expr(node.left, scope, functions)
    right = compile_expr(node.right, scope, functions)
    if op == "and":
        return lambda env, params: bool(left(env, params)) and bool(
            right(env, params)
        )
    if op == "or":
        return lambda env, params: bool(left(env, params)) or bool(
            right(env, params)
        )
    if op in ("=", "<>", "<", "<=", ">", ">="):
        def run_cmp(env, params):
            lv = left(env, params)
            rv = right(env, params)
            if lv is None or rv is None:
                return False
            if op == "=":
                return lv == rv
            if op == "<>":
                return lv != rv
            if op == "<":
                return lv < rv
            if op == "<=":
                return lv <= rv
            if op == ">":
                return lv > rv
            return lv >= rv
        return run_cmp
    if op == "||":
        def run_concat(env, params):
            lv = left(env, params)
            rv = right(env, params)
            return _as_text(lv) + _as_text(rv)
        return run_concat
    if op in ("+", "-", "*", "/"):
        def run_arith(env, params):
            lv = left(env, params)
            rv = right(env, params)
            if lv is None or rv is None:
                return None
            if op == "+":
                return lv + rv
            if op == "-":
                return lv - rv
            if op == "*":
                return lv * rv
            if rv == 0:
                raise SqlPlanError("division by zero")
            return lv / rv
        return run_arith
    raise SqlPlanError(f"unknown operator {op}")


def _not(value: object) -> bool:
    return not bool(value)


def _neg(value: object):
    return None if value is None else -value


def _as_text(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _like(value: str, pattern: str) -> bool:
    import re

    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, value) is not None
