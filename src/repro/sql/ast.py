"""SQL AST node definitions."""

from __future__ import annotations

from dataclasses import dataclass


# -- expressions --------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: object  # str, int, float, None


@dataclass(frozen=True)
class DateLiteral:
    days: int


@dataclass(frozen=True)
class Param:
    name: str


@dataclass(frozen=True)
class ColumnRef:
    table: str | None  # alias, or None when unqualified
    column: str


@dataclass(frozen=True)
class Star:
    table: str | None = None  # for COUNT(*) and SELECT *


@dataclass(frozen=True)
class BinaryOp:
    op: str  # = <> < <= > >= + - * / || and or
    left: object
    right: object


@dataclass(frozen=True)
class UnaryOp:
    op: str  # not, -
    operand: object


@dataclass(frozen=True)
class InList:
    operand: object
    items: tuple
    negated: bool = False


@dataclass(frozen=True)
class Between:
    operand: object
    low: object
    high: object
    negated: bool = False


@dataclass(frozen=True)
class IsNull:
    operand: object
    negated: bool = False


@dataclass(frozen=True)
class LikeOp:
    operand: object
    pattern: object
    negated: bool = False


@dataclass(frozen=True)
class CaseExpr:
    whens: tuple  # of (condition, result)
    else_result: object | None


@dataclass(frozen=True)
class FunctionCall:
    name: str  # lower-cased
    args: tuple
    distinct: bool = False


@dataclass(frozen=True)
class Subquery:
    """A parenthesized SELECT used as a value or IN-list source.

    As a value it must produce a single column; scalar usage additionally
    requires at most one row (NULL when empty).
    """

    select: object  # ast.Select


@dataclass(frozen=True)
class InSubquery:
    operand: object
    subquery: "Subquery"
    negated: bool = False


@dataclass(frozen=True)
class ExistsSubquery:
    subquery: "Subquery"
    negated: bool = False


@dataclass(frozen=True)
class XmlAttribute:
    value: object
    name: str


@dataclass(frozen=True)
class XmlElementExpr:
    """``XMLElement(Name "tag", [XMLAttributes(...)], content...)``."""

    tag: str
    attributes: tuple  # of XmlAttribute
    content: tuple  # of expressions


@dataclass(frozen=True)
class XmlAggExpr:
    """``XMLAgg(expr [ORDER BY ...])`` — an aggregate over group rows."""

    operand: object
    order_by: tuple = ()  # of OrderItem


# -- statements ------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: object
    alias: str | None = None


@dataclass(frozen=True)
class TemporalClause:
    """``FOR SYSTEM_TIME ...`` suffix on a table source.

    ``kind`` is ``"as_of"`` (``high`` is None), ``"from_to"``
    (closed-open window ``[low, high)``) or ``"between"`` (closed-closed
    window ``[low, high]``).  Bounds are expressions: DateLiteral,
    integer Literal (days since epoch) or Param.
    """

    kind: str  # as_of | from_to | between
    low: object
    high: object | None = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str
    temporal: TemporalClause | None = None


@dataclass(frozen=True)
class TableFunctionRef:
    """``TABLE(fn(args)) AS alias(col, ...)``."""

    function: str
    args: tuple
    alias: str
    columns: tuple
    temporal: TemporalClause | None = None


@dataclass(frozen=True)
class TemporalJoinRef:
    """``left TEMPORAL JOIN right ON condition`` — a sequenced join source.

    Both sides must expose ``tstart``/``tend``; matched rows carry the
    intersection of the two validity intervals.
    """

    left: object  # TableRef | TableFunctionRef | TemporalJoinRef
    right: object
    on: object  # join condition expression


@dataclass(frozen=True)
class OrderItem:
    expr: object
    descending: bool = False


@dataclass(frozen=True)
class Select:
    items: tuple
    sources: tuple  # of TableRef | TableFunctionRef | TemporalJoinRef
    where: object | None = None
    group_by: tuple = ()
    order_by: tuple = ()
    limit: int | None = None
    distinct: bool = False
    normalize: bool = False  # SELECT NORMALIZE: coalesce adjacent periods


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple
    rows: tuple  # of tuples of expressions


@dataclass(frozen=True)
class InsertSelect:
    table: str
    columns: tuple
    select: Select


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple  # of (column, expr)
    where: object | None


@dataclass(frozen=True)
class Delete:
    table: str
    where: object | None


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple  # of ColumnDef
    primary_key: tuple = ()


@dataclass(frozen=True)
class CreateIndex:
    name: str
    table: str
    columns: tuple
    unique: bool = False


@dataclass(frozen=True)
class DropTable:
    name: str


# -- traversal ----------------------------------------------------------------


def child_exprs(node: object):
    """Yield the direct sub-expressions of an expression node.

    Subquery bodies are *not* descended into: they are planned separately
    and (being uncorrelated) cannot reference the enclosing scope.
    """
    if isinstance(node, BinaryOp):
        yield node.left
        yield node.right
    elif isinstance(node, UnaryOp):
        yield node.operand
    elif isinstance(node, InList):
        yield node.operand
        yield from node.items
    elif isinstance(node, Between):
        yield node.operand
        yield node.low
        yield node.high
    elif isinstance(node, (IsNull,)):
        yield node.operand
    elif isinstance(node, LikeOp):
        yield node.operand
        yield node.pattern
    elif isinstance(node, FunctionCall):
        yield from node.args
    elif isinstance(node, XmlElementExpr):
        for attr in node.attributes:
            yield attr.value
        yield from node.content
    elif isinstance(node, XmlAggExpr):
        yield node.operand
        for item in node.order_by:
            yield item.expr
    elif isinstance(node, CaseExpr):
        for condition, result in node.whens:
            yield condition
            yield result
        if node.else_result is not None:
            yield node.else_result
    elif isinstance(node, InSubquery):
        yield node.operand


def walk_exprs(node: object):
    """Yield ``node`` and every expression nested below it (pre-order)."""
    yield node
    for child in child_exprs(node):
        yield from walk_exprs(child)


def flat_source_refs(sources):
    """Yield every TableRef/TableFunctionRef in ``sources``, flattening
    TemporalJoinRef trees into their leaf references."""
    for source in sources:
        if isinstance(source, TemporalJoinRef):
            yield from flat_source_refs((source.left, source.right))
        else:
            yield source


def temporal_param_names(select: Select) -> list[str]:
    """Names of parameters bound inside FOR SYSTEM_TIME clauses.

    Used by the server's version gate: a v1 client cannot bind temporal
    clause positions, so a temporal statement carrying these gets a
    structured UNSUPPORTED_VERSION-style rejection.
    """
    names: list[str] = []
    for ref in flat_source_refs(select.sources):
        clause = getattr(ref, "temporal", None)
        if clause is None:
            continue
        for bound in (clause.low, clause.high):
            if isinstance(bound, Param):
                names.append(bound.name)
    return names
