"""Query result sets."""

from __future__ import annotations

from repro.api import Result
from repro.xmlkit.dom import Element
from repro.xmlkit.serializer import serialize


class ResultSet(Result):
    """Rows returned by a SELECT.

    A :class:`~repro.api.Result` whose sequence behaviour (iteration,
    indexing, ``len``) is documented API rather than a deprecation shim,
    plus XML extraction for SQL/XML queries (the translator's output
    column is a forest of elements).
    """

    def __init__(self, columns: list[str], rows: list[tuple]) -> None:
        super().__init__(rows, columns)

    # sequence access is first-class here — no deprecation warnings
    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, index: int) -> tuple:
        return self.rows[index]

    def __contains__(self, item) -> bool:
        return item in self.rows

    def scalar(self):
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"scalar() on a {len(self.rows)}x{len(self.columns)} result"
            )
        return self.rows[0][0]

    def column(self, name_or_index: str | int = 0) -> list:
        if isinstance(name_or_index, str):
            index = self.columns.index(name_or_index)
        else:
            index = name_or_index
        return [row[index] for row in self.rows]

    def xml(self) -> list[Element]:
        """Flatten all Element values in the result into a forest."""
        forest: list[Element] = []
        for row in self.rows:
            for value in row:
                if isinstance(value, Element):
                    forest.append(value)
                elif isinstance(value, list):
                    forest.extend(v for v in value if isinstance(v, Element))
        return forest

    def xml_text(self) -> str:
        return "".join(serialize(e) for e in self.xml())

    def __repr__(self) -> str:
        return f"<ResultSet {self.columns} ({len(self.rows)} rows)>"
