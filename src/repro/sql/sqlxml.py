"""SQL/XML value constructors (paper Section 5.3).

``XMLElement``, ``XMLAttributes`` and ``XMLAgg`` build
:class:`~repro.xmlkit.dom.Element` values *inside the relational engine*,
which is the design the paper adopts from [34]: tag binding and structure
construction pushed into the SQL executor.
"""

from __future__ import annotations

from repro.xmlkit.dom import Element, Text


def _render(value: object) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def build_xml_element(
    tag: str,
    attributes: list[tuple[str, object]],
    content: list[object],
) -> Element:
    """Construct one XML element from evaluated attribute/content values.

    NULL attribute values and NULL content items are skipped (SQL/XML
    semantics); Element content is attached as a child, scalars become
    text.
    """
    element = Element(tag)
    for name, value in attributes:
        if value is None:
            continue
        element.set(name, _render(value))
    for item in content:
        if item is None:
            continue
        if isinstance(item, Element):
            element.append(item.copy() if item.parent is not None else item)
        elif isinstance(item, list):
            for sub in item:
                if isinstance(sub, Element):
                    element.append(
                        sub.copy() if sub.parent is not None else sub
                    )
                elif sub is not None:
                    element.append(Text(_render(sub)))
        else:
            element.append(Text(_render(item)))
    return element


def xml_agg(values: list[object]) -> list[Element]:
    """Aggregate a group's element values into a forest (list).

    ``XMLAgg`` returns an XML value that concatenates the per-row elements;
    we model the forest as a Python list of elements, which
    ``build_xml_element`` splices when used as content.
    """
    forest: list[Element] = []
    for value in values:
        if value is None:
            continue
        if isinstance(value, list):
            forest.extend(v for v in value if isinstance(v, Element))
        elif isinstance(value, Element):
            forest.append(value)
    return forest
