"""SQL planner and executor.

Plans are built once per statement and execute as generator pipelines:

- access paths: B+ tree index range scans when single-table predicates
  match an index prefix (equality columns then at most one range column),
  heap scans otherwise;
- joins: hash joins on equi-join conjuncts, nested loops with filters for
  everything else, in FROM order (left-deep);
- aggregation: hash grouping with accumulator objects, including ``XMLAgg``;
- then DISTINCT / ORDER BY / LIMIT / projection.

The H-table queries ArchIS emits are id-equi-joins over co-sorted tables
plus indexable interval predicates, so this planner executes them the way
the paper describes (Section 5.3: "These joins execute very fast ... since
every table is already sorted on its id attribute").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import SqlPlanError
from repro.obs.metrics import get_registry
from repro.rdb.database import Database
from repro.sql import ast
from repro.sql.expr import (
    AGGREGATE_NAMES,
    CompiledExpr,
    Scope,
    compile_expr,
    contains_aggregate,
)
from repro.sql.result import ResultSet
from repro.sql.sqlxml import xml_agg

Env = dict

#: Rows pulled from base tables / table functions before filtering.  The
#: count accumulates in a local and is flushed once per scan (in a
#: ``finally``), so the per-row cost is a plain integer increment.
_ROWS_SCANNED = get_registry().counter("sql.rows_scanned")


class _Top:
    """Sorts after every real value: pads composite-index range bounds.

    A bound ``(2,)`` compares *less* than key ``(2, x)`` under tuple
    ordering, so an inclusive high bound on an index prefix must be padded
    to ``(2, _TOP)`` to admit all keys sharing the prefix.
    """

    __slots__ = ()

    def __lt__(self, other) -> bool:
        return False

    def __gt__(self, other) -> bool:
        return other is not self

    def __le__(self, other) -> bool:
        return other is self

    def __ge__(self, other) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return other is self

    def __hash__(self) -> int:
        return 0x70FF


_TOP = _Top()


# -- helpers over expressions -----------------------------------------------


def split_conjuncts(node: object) -> list:
    if isinstance(node, ast.BinaryOp) and node.op == "and":
        return split_conjuncts(node.left) + split_conjuncts(node.right)
    return [node] if node is not None else []


def referenced_aliases(node: object, scope: Scope) -> set[str]:
    out: set[str] = set()

    def walk(n: object) -> None:
        if isinstance(n, ast.ColumnRef):
            out.add(scope.resolve(n)[0])
        elif isinstance(n, ast.BinaryOp):
            walk(n.left)
            walk(n.right)
        elif isinstance(n, ast.UnaryOp):
            walk(n.operand)
        elif isinstance(n, (ast.InList,)):
            walk(n.operand)
            for item in n.items:
                walk(item)
        elif isinstance(n, ast.Between):
            walk(n.operand)
            walk(n.low)
            walk(n.high)
        elif isinstance(n, (ast.IsNull, ast.LikeOp)):
            walk(n.operand)
            if isinstance(n, ast.LikeOp):
                walk(n.pattern)
        elif isinstance(n, ast.FunctionCall):
            for arg in n.args:
                walk(arg)
        elif isinstance(n, ast.XmlElementExpr):
            for attr in n.attributes:
                walk(attr.value)
            for content in n.content:
                walk(content)
        elif isinstance(n, ast.XmlAggExpr):
            walk(n.operand)
        elif isinstance(n, ast.CaseExpr):
            for condition, result in n.whens:
                walk(condition)
                walk(result)
            if n.else_result is not None:
                walk(n.else_result)
        elif isinstance(n, ast.InSubquery):
            # the subquery itself is uncorrelated; only the operand can
            # reference outer aliases
            walk(n.operand)

    walk(node)
    return out


def _is_constant(node: object) -> bool:
    return isinstance(node, (ast.Literal, ast.DateLiteral, ast.Param))


def _equi_join_sides(node: object, scope: Scope):
    """For ``a.x = b.y`` return ((alias_a, col), (alias_b, col)), else None."""
    if (
        isinstance(node, ast.BinaryOp)
        and node.op == "="
        and isinstance(node.left, ast.ColumnRef)
        and isinstance(node.right, ast.ColumnRef)
    ):
        left = scope.resolve(node.left)
        right = scope.resolve(node.right)
        if left[0] != right[0]:
            return left, right
    return None


# -- access paths -----------------------------------------------------------------


@dataclass
class IndexAccess:
    """An index range scan choice for one table source."""

    index_name: str
    eq_columns: list[str]
    eq_values: list[CompiledExpr]
    range_column: str | None = None
    low: CompiledExpr | None = None
    low_inclusive: bool = True
    high: CompiledExpr | None = None
    high_inclusive: bool = True


class SourcePlan:
    """Scan of one FROM source with its single-table filters applied."""

    def __init__(
        self,
        ref,
        filters: list[CompiledExpr],
        index_access: IndexAccess | None,
        scope: Scope,
    ) -> None:
        self.ref = ref
        self.filters = filters
        self.index_access = index_access
        self.alias = ref.alias
        self.columns = scope.columns_by_alias[ref.alias]

    def rows(self, db: Database, params: Mapping) -> Iterator[Env]:
        if isinstance(self.ref, ast.TableFunctionRef):
            yield from self._table_function_rows(db, params)
            return
        table = db.table(self.ref.name)
        if self.index_access is not None:
            rows = self._index_rows(table, params)
        else:
            rows = (row for _, row in table.scan())
        names = self.columns
        alias = self.alias
        scanned = 0
        try:
            for row in rows:
                scanned += 1
                env = {(alias, name): value for name, value in zip(names, row)}
                if all(f(env, params) for f in self.filters):
                    yield env
        finally:
            _ROWS_SCANNED.inc(scanned)

    def _index_rows(self, table, params: Mapping):
        access = self.index_access
        prefix = tuple(v(None, params) for v in access.eq_values)
        if access.range_column is not None:
            low_val = (
                access.low(None, params) if access.low is not None else None
            )
            high_val = (
                access.high(None, params) if access.high is not None else None
            )
            if high_val is None and prefix:
                # prefix-bounded from above only: emulate with prefix scan
                for _, row in self._prefix_scan(table, prefix, params, access):
                    yield row
                return
            # pad bounds so keys extending the bound tuple compare correctly
            if low_val is None:
                low_key = prefix or None
            elif access.low_inclusive:
                low_key = prefix + (low_val,)
            else:
                low_key = prefix + (low_val, _TOP)
            if high_val is None:
                high_key = None
            elif access.high_inclusive:
                high_key = prefix + (high_val, _TOP)
            else:
                high_key = prefix + (high_val,)
            for _, row in table.index_scan(
                access.index_name,
                low_key,
                high_key,
                low_inclusive=True,
                high_inclusive=False,
            ):
                yield row
            return
        if prefix:
            for _, row in self._prefix_scan(table, prefix, params, access):
                yield row
            return
        for _, row in table.index_scan(access.index_name):
            yield row

    @staticmethod
    def _prefix_scan(table, prefix: tuple, params, access: IndexAccess):
        info = table.indexes[access.index_name]
        for key, rid in info.tree.prefix(prefix):
            yield rid, table.read(rid)

    def _table_function_rows(self, db: Database, params: Mapping):
        fn = db.table_function(self.ref.function)
        if fn is None:
            raise SqlPlanError(
                f"unknown table function {self.ref.function}()"
            )
        args = [
            compile_expr(a, Scope({}), {})(None, params) for a in self.ref.args
        ]
        names = self.columns
        alias = self.alias
        scanned = 0
        try:
            for row in fn(*args):
                scanned += 1
                env = {(alias, name): value for name, value in zip(names, row)}
                if all(f(env, params) for f in self.filters):
                    yield env
        finally:
            _ROWS_SCANNED.inc(scanned)


# -- aggregate machinery ----------------------------------------------------------------


class _AggSpec:
    """One aggregate occurrence, rewritten to a synthetic parameter."""

    def __init__(self, placeholder: str, node, scope: Scope, functions) -> None:
        self.placeholder = placeholder
        self.node = node
        if isinstance(node, ast.XmlAggExpr):
            self.kind = "xmlagg"
            self.operand = compile_expr(node.operand, scope, functions)
            self.order_keys = [
                (compile_expr(spec.expr, scope, functions), spec.descending)
                for spec in node.order_by
            ]
        else:
            self.kind = node.name
            self.distinct = node.distinct
            if len(node.args) == 1 and isinstance(node.args[0], ast.Star):
                self.operand = None
            elif len(node.args) == 1:
                self.operand = compile_expr(node.args[0], scope, functions)
            else:
                raise SqlPlanError(
                    f"aggregate {node.name}() takes one argument"
                )

    def finish(self, rows: list[Env], params: Mapping):
        if self.kind == "xmlagg":
            if self.order_keys:
                def sort_key(env):
                    return tuple(
                        (-k(env, params) if desc else k(env, params))
                        for k, desc in self.order_keys
                    )
                rows = sorted(rows, key=sort_key)
            return xml_agg([self.operand(env, params) for env in rows])
        if self.kind == "count":
            if self.operand is None:
                return len(rows)
            values = [
                v
                for v in (self.operand(env, params) for env in rows)
                if v is not None
            ]
            if self.distinct:
                return len(set(values))
            return len(values)
        values = [
            v
            for v in (self.operand(env, params) for env in rows)
            if v is not None
        ]
        if self.distinct:
            values = list(dict.fromkeys(values))
        if not values:
            return None
        if self.kind == "sum":
            return sum(values)
        if self.kind == "avg":
            return sum(values) / len(values)
        if self.kind == "min":
            return min(values)
        if self.kind == "max":
            return max(values)
        raise SqlPlanError(f"unknown aggregate {self.kind}")


def _rewrite_aggregates(node, specs: list, scope: Scope, functions):
    """Replace aggregate sub-expressions with synthetic Param nodes."""
    if isinstance(node, ast.XmlAggExpr) or (
        isinstance(node, ast.FunctionCall) and node.name in AGGREGATE_NAMES
    ):
        placeholder = f"__agg{len(specs)}"
        specs.append(_AggSpec(placeholder, node, scope, functions))
        return ast.Param(placeholder)
    if isinstance(node, ast.BinaryOp):
        return ast.BinaryOp(
            node.op,
            _rewrite_aggregates(node.left, specs, scope, functions),
            _rewrite_aggregates(node.right, specs, scope, functions),
        )
    if isinstance(node, ast.UnaryOp):
        return ast.UnaryOp(
            node.op, _rewrite_aggregates(node.operand, specs, scope, functions)
        )
    if isinstance(node, ast.FunctionCall):
        return ast.FunctionCall(
            node.name,
            tuple(
                _rewrite_aggregates(a, specs, scope, functions)
                for a in node.args
            ),
            node.distinct,
        )
    if isinstance(node, ast.XmlElementExpr):
        return ast.XmlElementExpr(
            node.tag,
            tuple(
                ast.XmlAttribute(
                    _rewrite_aggregates(a.value, specs, scope, functions),
                    a.name,
                )
                for a in node.attributes
            ),
            tuple(
                _rewrite_aggregates(c, specs, scope, functions)
                for c in node.content
            ),
        )
    if isinstance(node, ast.CaseExpr):
        return ast.CaseExpr(
            tuple(
                (
                    _rewrite_aggregates(c, specs, scope, functions),
                    _rewrite_aggregates(r, specs, scope, functions),
                )
                for c, r in node.whens
            ),
            _rewrite_aggregates(node.else_result, specs, scope, functions)
            if node.else_result is not None
            else None,
        )
    return node


# -- the SELECT plan ---------------------------------------------------------------------------


class SelectPlan:
    def __init__(self, db: Database, select: ast.Select) -> None:
        self.db = db
        self.select = select
        self.functions = self._function_registry()
        self.scope = self._build_scope()
        self._plan()

    def _function_registry(self) -> dict:
        from repro.sql.functions import BUILTIN_FUNCTIONS

        registry = dict(BUILTIN_FUNCTIONS)
        registry["current_date"] = lambda: self.db.current_date
        registry.update(self.db._functions)
        return registry

    def _build_scope(self) -> Scope:
        columns_by_alias: dict[str, list[str]] = {}
        for ref in self.select.sources:
            if ref.alias in columns_by_alias:
                raise SqlPlanError(f"duplicate alias {ref.alias!r}")
            if isinstance(ref, ast.TableRef):
                table = self.db.table(ref.name)
                columns_by_alias[ref.alias] = list(table.schema.column_names)
            else:
                if not ref.columns:
                    raise SqlPlanError(
                        "table functions need an AS alias(col, ...) clause"
                    )
                columns_by_alias[ref.alias] = list(ref.columns)
        return Scope(columns_by_alias, self.db)

    # -- planning ---------------------------------------------------------------

    def _plan(self) -> None:
        select = self.select
        scope = self.scope
        conjuncts = split_conjuncts(select.where)
        per_alias: dict[str, list] = {ref.alias: [] for ref in select.sources}
        self.equi_joins: list[tuple] = []
        self.residual: list[CompiledExpr] = []
        residual_nodes = []
        for conjunct in conjuncts:
            aliases = referenced_aliases(conjunct, scope)
            if len(aliases) == 1:
                per_alias[next(iter(aliases))].append(conjunct)
            else:
                sides = _equi_join_sides(conjunct, scope)
                if sides is not None:
                    self.equi_joins.append(sides)
                else:
                    residual_nodes.append(conjunct)
        self.residual = [
            compile_expr(n, scope, self.functions) for n in residual_nodes
        ]
        self.source_plans = []
        for ref in select.sources:
            self.source_plans.append(
                self._plan_source(ref, per_alias[ref.alias])
            )
        # select items
        self.is_aggregate = bool(select.group_by) or any(
            contains_aggregate(item.expr) for item in select.items
        )
        self.agg_specs: list[_AggSpec] = []
        self.item_exprs: list[CompiledExpr] = []
        self.item_names: list[str] = []
        star_items = [
            item for item in select.items if isinstance(item.expr, ast.Star)
        ]
        if star_items and not self.is_aggregate:
            for item in select.items:
                if isinstance(item.expr, ast.Star):
                    aliases = (
                        [item.expr.table]
                        if item.expr.table
                        else [ref.alias for ref in select.sources]
                    )
                    for alias in aliases:
                        for column in scope.columns_by_alias[alias]:
                            key = (alias, column)
                            self.item_exprs.append(
                                lambda env, params, key=key: env.get(key)
                            )
                            self.item_names.append(column)
                else:
                    self._add_item(item)
        else:
            for index, item in enumerate(select.items):
                self._add_item(item, index)
        # group keys
        self.group_keys = [
            compile_expr(g, scope, self.functions) for g in select.group_by
        ]
        # order by
        self.order_keys = []
        for spec in select.order_by:
            rewritten = (
                _rewrite_aggregates(
                    spec.expr, self.agg_specs, scope, self.functions
                )
                if self.is_aggregate
                else spec.expr
            )
            self.order_keys.append(
                (compile_expr(rewritten, scope, self.functions), spec.descending)
            )

    def _add_item(self, item: ast.SelectItem, index: int = 0) -> None:
        expr = item.expr
        if isinstance(expr, ast.Star):
            raise SqlPlanError("SELECT * cannot be mixed with aggregation")
        if self.is_aggregate:
            expr = _rewrite_aggregates(
                expr, self.agg_specs, self.scope, self.functions
            )
        self.item_exprs.append(compile_expr(expr, self.scope, self.functions))
        if item.alias:
            self.item_names.append(item.alias)
        elif isinstance(item.expr, ast.ColumnRef):
            self.item_names.append(item.expr.column)
        else:
            self.item_names.append(f"col{index + 1}")

    def _plan_source(self, ref, conjuncts: list) -> SourcePlan:
        scope = self.scope
        index_access = None
        remaining = list(conjuncts)
        if isinstance(ref, ast.TableRef):
            index_access, remaining = self._choose_index(ref, conjuncts)
        filters = [
            compile_expr(n, scope, self.functions) for n in remaining
        ]
        return SourcePlan(ref, filters, index_access, scope)

    def _choose_index(self, ref: ast.TableRef, conjuncts: list):
        table = self.db.table(ref.name)
        if not table.indexes:
            return None, conjuncts
        eq: dict[str, object] = {}
        ranges: dict[str, dict] = {}
        used: dict[str, object] = {}
        for conjunct in conjuncts:
            bound = self._indexable(ref.alias, conjunct)
            if bound is None:
                continue
            column, op, value_node = bound
            if op == "=":
                eq.setdefault(column, (conjunct, value_node))
            else:
                slot = ranges.setdefault(column, {})
                slot.setdefault(op, (conjunct, value_node))
        best = None
        for info in table.indexes.values():
            eq_cols: list[str] = []
            position = 0
            while position < len(info.columns) and info.columns[position] in eq:
                eq_cols.append(info.columns[position])
                position += 1
            range_col = None
            if position < len(info.columns) and info.columns[position] in ranges:
                range_col = info.columns[position]
            score = len(eq_cols) * 2 + (1 if range_col else 0)
            if score == 0:
                continue
            if best is None or score > best[0]:
                best = (score, info, eq_cols, range_col)
        if best is None:
            return None, conjuncts
        _, info, eq_cols, range_col = best
        consumed = set()
        eq_values = []
        for column in eq_cols:
            conjunct, value_node = eq[column]
            consumed.add(id(conjunct))
            eq_values.append(
                compile_expr(value_node, Scope({}), self.functions)
            )
        access = IndexAccess(info.name, eq_cols, eq_values)
        if range_col is not None:
            access.range_column = range_col
            slot = ranges[range_col]
            low_done = high_done = False
            for op, (conjunct, value_node) in slot.items():
                # use at most one bound per direction for the scan, but
                # keep every range conjunct as a residual filter: NULL
                # keys sort below all values in the index, so a scan
                # unbounded from below would otherwise admit NULL rows
                if op in (">", ">=") and not low_done:
                    access.low = compile_expr(
                        value_node, Scope({}), self.functions
                    )
                    access.low_inclusive = op == ">="
                    low_done = True
                elif op in ("<", "<=") and not high_done:
                    access.high = compile_expr(
                        value_node, Scope({}), self.functions
                    )
                    access.high_inclusive = op == "<="
                    high_done = True
        remaining = [c for c in conjuncts if id(c) not in consumed]
        return access, remaining

    def _indexable(self, alias: str, conjunct):
        """Match ``alias.col OP constant`` (either side)."""
        if isinstance(conjunct, ast.Between):
            if isinstance(conjunct.operand, ast.ColumnRef) and not conjunct.negated:
                owner, column = self.scope.resolve(conjunct.operand)
                if (
                    owner == alias
                    and _is_constant(conjunct.low)
                    and _is_constant(conjunct.high)
                ):
                    # model BETWEEN as two range conjuncts by splitting;
                    # handled by caller as >= and <= would be.  Return None
                    # here and let the filter handle it (kept simple).
                    return None
            return None
        if not isinstance(conjunct, ast.BinaryOp):
            return None
        op = conjunct.op
        if op not in ("=", "<", "<=", ">", ">="):
            return None
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ast.ColumnRef) and _is_constant(right):
            owner, column = self.scope.resolve(left)
            if owner == alias:
                return column, op, right
        if isinstance(right, ast.ColumnRef) and _is_constant(left):
            owner, column = self.scope.resolve(right)
            if owner == alias:
                flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
                return column, flipped, left
        return None

    # -- execution -------------------------------------------------------------------

    def execute(self, params: Mapping | None = None) -> ResultSet:
        params = dict(params or {})
        rows = self._joined_rows(params)
        for residual in self.residual:
            rows = (env for env in rows if residual(env, params))
        if self.is_aggregate:
            out_rows = self._aggregate(rows, params)
        else:
            out_rows = [
                tuple(item(env, params) for item in self.item_exprs)
                for env in self._ordered(rows, params)
            ]
        if self.select.distinct:
            seen = set()
            unique = []
            for row in out_rows:
                key = tuple(
                    str(v) if not isinstance(v, (int, float, str, type(None))) else v
                    for v in row
                )
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            out_rows = unique
        if self.select.limit is not None:
            out_rows = out_rows[: self.select.limit]
        return ResultSet(list(self.item_names), out_rows)

    def _ordered(self, rows, params):
        if not self.order_keys:
            return rows
        materialized = list(rows)
        for key, descending in reversed(self.order_keys):
            materialized.sort(
                key=lambda env: _null_safe_key(key(env, params)),
                reverse=descending,
            )
        return materialized

    def _joined_rows(self, params: Mapping) -> Iterator[Env]:
        plans = self.source_plans
        bound_aliases = {plans[0].alias}
        stream = plans[0].rows(self.db, params)
        for plan in plans[1:]:
            join_pairs = []
            for left, right in self.equi_joins:
                if left[0] in bound_aliases and right[0] == plan.alias:
                    join_pairs.append((left, right))
                elif right[0] in bound_aliases and left[0] == plan.alias:
                    join_pairs.append((right, left))
            if join_pairs:
                stream = self._hash_join(stream, plan, join_pairs, params)
            else:
                stream = self._nested_loop(stream, plan, params)
            bound_aliases.add(plan.alias)
        # any equi-joins between already-bound aliases that were not used as
        # hash keys (e.g. three-way cycles) apply as filters
        unused = []
        for left, right in self.equi_joins:
            unused.append((left, right))
        def final_filter(env):
            for left, right in unused:
                if left in env and right in env:
                    if env[left] != env[right]:
                        return False
            return True
        return (env for env in stream if final_filter(env))

    def _hash_join(self, stream, plan: SourcePlan, join_pairs, params):
        build: dict[tuple, list[Env]] = {}
        right_keys = [pair[1] for pair in join_pairs]
        left_keys = [pair[0] for pair in join_pairs]
        for env in plan.rows(self.db, params):
            key = tuple(env.get(k) for k in right_keys)
            if None in key:
                continue
            build.setdefault(key, []).append(env)
        for env in stream:
            key = tuple(env.get(k) for k in left_keys)
            for match in build.get(key, ()):  # inner join
                merged = dict(env)
                merged.update(match)
                yield merged

    def _nested_loop(self, stream, plan: SourcePlan, params):
        inner = list(plan.rows(self.db, params))
        for env in stream:
            for match in inner:
                merged = dict(env)
                merged.update(match)
                yield merged

    def _aggregate(self, rows, params: Mapping) -> list[tuple]:
        groups: dict[tuple, list[Env]] = {}
        representative: dict[tuple, Env] = {}
        for env in rows:
            key = tuple(k(env, params) for k in self.group_keys)
            groups.setdefault(key, []).append(env)
            representative.setdefault(key, env)
        if not groups and not self.group_keys:
            groups[()] = []
            representative[()] = {}
        ordered_groups = list(groups.items())
        out = []
        for key, members in ordered_groups:
            env = representative[key]
            agg_params = dict(params)
            for spec in self.agg_specs:
                agg_params[spec.placeholder] = spec.finish(members, params)
            row = tuple(item(env, agg_params) for item in self.item_exprs)
            order_key = tuple(
                _null_safe_key(k(env, agg_params)) for k, _ in self.order_keys
            )
            out.append((order_key, row))
        if self.order_keys:
            descending = [d for _, d in self.order_keys]
            # sort per key direction (stable, last key first)
            for index in reversed(range(len(descending))):
                out.sort(key=lambda pair: pair[0][index], reverse=descending[index])
        return [row for _, row in out]


def _null_safe_key(value):
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, value)
    return (2, str(value))
