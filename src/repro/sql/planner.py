"""SQL planning: the pipeline from parsed SELECT to physical operators.

A ``SelectPlan`` runs three explicit stages (see :mod:`repro.plan`):

1. build — :func:`repro.plan.build.build_logical` turns the AST into a
   naive logical plan (left-deep cross product under one Filter);
2. optimize — :func:`repro.plan.optimizer.run_rules` applies constant
   folding, predicate pushdown, the paper's Section 6.4 segment
   restriction, index selection and hash-join selection, recording every
   firing for EXPLAIN;
3. compile — :func:`repro.plan.physical.compile_plan` builds the
   volcano-style operator tree that ``execute`` pulls.

The H-table queries ArchIS emits are id-equi-joins over co-sorted tables
plus indexable interval predicates, so the optimized plans execute them
the way the paper describes (Section 5.3: "These joins execute very fast
... since every table is already sorted on its id attribute").

Setting ``db.optimizer_enabled = False`` skips stage 2: the naive plan
still returns identical rows, just without the restricted access paths —
which is exactly what the equivalence tests exercise.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import SqlPlanError
from repro.plan import build_logical, run_rules
from repro.plan.optimizer import PlanContext, RuleFiring
from repro.plan.physical import ExecContext, compile_plan
from repro.plan.render import render_physical, render_plan
from repro.rdb.database import Database
from repro.sql import ast
from repro.sql.expr import Scope
from repro.sql.result import ResultSet


def function_registry(db: Database) -> dict:
    """Scalar functions visible to queries: builtins + UDFs + current_date."""
    from repro.sql.functions import BUILTIN_FUNCTIONS

    registry = dict(BUILTIN_FUNCTIONS)
    registry["current_date"] = lambda: db.current_date
    registry.update(db._functions)
    return registry


def source_scope(db: Database, sources) -> Scope:
    columns_by_alias: dict[str, list[str]] = {}
    for ref in ast.flat_source_refs(sources):
        if ref.alias in columns_by_alias:
            raise SqlPlanError(f"duplicate alias {ref.alias!r}")
        if isinstance(ref, ast.TableRef):
            table = db.table(ref.name)
            columns_by_alias[ref.alias] = list(table.schema.column_names)
        else:
            if not ref.columns:
                raise SqlPlanError(
                    "table functions need an AS alias(col, ...) clause"
                )
            columns_by_alias[ref.alias] = list(ref.columns)
    return Scope(columns_by_alias, db)


class SelectPlan:
    """One planned SELECT: logical plan, optimized plan, physical tree."""

    def __init__(self, db: Database, select: ast.Select) -> None:
        self.db = db
        self.select = select
        self.functions = function_registry(db)
        self.scope = source_scope(db, select.sources)
        self.logical = build_logical(select, self.scope)
        self.rule_firings: tuple[RuleFiring, ...] = ()
        if getattr(db, "optimizer_enabled", True):
            ctx = PlanContext(db, self.scope, self.functions)
            self.optimized, self.rule_firings = run_rules(self.logical, ctx)
        else:
            self.optimized = self.logical
        self.physical = compile_plan(
            self.optimized, ExecContext(db, self.scope, self.functions)
        )
        from repro.plan.nodes import output_node

        self.item_names = [
            item.name for item in output_node(self.optimized).items
        ]

    def execute(self, params: Mapping | None = None) -> ResultSet:
        params = dict(params or {})
        return ResultSet(list(self.item_names), list(self.physical.rows(params)))

    def report(self):
        """Plan stages rendered for EXPLAIN / the ``plan`` CLI command."""
        from repro.obs.explain import PlanReport
        from repro.rdb import txcontext

        return PlanReport(
            logical=render_plan(self.logical),
            optimized=render_plan(self.optimized),
            physical=render_physical(self.physical),
            rules=[f"{f.rule}: {f.detail}" for f in self.rule_firings],
            as_of=txcontext.as_of_day(),
        )


class DmlMatchPlan:
    """Plans the row-matching half of UPDATE/DELETE over one table.

    Reuses the same build/optimize/compile pipeline as SELECT (so a keyed
    UPDATE hits an index instead of scanning the heap) but pulls
    ``(rid, env)`` pairs, which only leaf scans and Filters can produce —
    guaranteed here because the statement has exactly one source and no
    output stage is compiled.
    """

    def __init__(self, db: Database, table_name: str, where) -> None:
        self.db = db
        self.table_name = table_name
        self.functions = function_registry(db)
        ref = ast.TableRef(table_name, table_name)
        self.scope = source_scope(db, (ref,))
        from repro.plan import nodes, split_conjuncts

        plan = nodes.Scan(table_name, table_name)
        conjuncts = tuple(split_conjuncts(where))
        if conjuncts:
            plan = nodes.Filter(plan, conjuncts)
        if getattr(db, "optimizer_enabled", True):
            ctx = PlanContext(db, self.scope, self.functions)
            plan, _ = run_rules(plan, ctx)
        self._physical = compile_plan(
            plan, ExecContext(db, self.scope, self.functions)
        )

    def matches(self, params: Mapping):
        """Yield ``(rid, env)`` for every row the WHERE clause selects."""
        yield from self._physical.rid_rows(params)
