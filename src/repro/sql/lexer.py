"""SQL lexer.

Tokenizes the dialect the ArchIS translator emits: SELECT with SQL/XML
constructs, DML, DDL, ``DATE '...'`` literals and ``:name`` parameters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import SqlSyntaxError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<qname>"[^"]+")
  | (?P<name>[A-Za-z_][A-Za-z_0-9$]*)
  | (?P<param>:[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|<=|>=|!=|\|\||[(),.*=<>+\-/;])
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "select", "from", "where", "group", "by", "order", "limit", "offset",
    "as", "and", "or", "not", "in", "between", "is", "null", "like",
    "insert", "into", "values", "update", "set", "delete",
    "create", "table", "index", "unique", "on", "drop", "primary", "key",
    "asc", "desc", "distinct", "date", "case", "when", "then", "else", "end",
    "int", "integer", "float", "double", "varchar", "blob", "char",
    "xmlelement", "xmlattributes", "xmlagg", "name",
    "for", "system_time", "of", "temporal", "normalize",
}
# NOTE: ``to`` (FOR SYSTEM_TIME FROM .. TO ..) and ``join`` (TEMPORAL
# JOIN) stay plain NAMEs matched contextually by the parser, so columns
# with those names keep working.


@dataclass(frozen=True)
class Token:
    kind: str  # NUMBER STRING QNAME NAME KEYWORD PARAM OP EOF
    value: str
    pos: int
    line: int = 1
    column: int = 1


def _line_column(text: str, offset: int) -> tuple[int, int]:
    line = text.count("\n", 0, offset) + 1
    start = text.rfind("\n", 0, offset) + 1
    return line, offset - start + 1


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            line, column = _line_column(text, pos)
            raise SqlSyntaxError(
                f"SQL lexer: unexpected character {text[pos]!r}"
                f" at line {line}:{column}",
                line=line,
                column=column,
                token=text[pos],
            )
        pos = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        value = match.group(0)
        kind = match.lastgroup.upper()
        if kind == "NAME":
            # unquoted identifiers fold to lower case (SQL folds unquoted
            # identifiers; this engine's convention is lower)
            value = value.lower()
            if value in KEYWORDS:
                kind = "KEYWORD"
        elif kind == "STRING":
            value = value[1:-1].replace("''", "'")
        elif kind == "QNAME":
            value = value[1:-1]
        elif kind == "PARAM":
            value = value[1:]
        line, column = _line_column(text, match.start())
        tokens.append(Token(kind, value, match.start(), line, column))
    line, column = _line_column(text, len(text))
    tokens.append(Token("EOF", "", len(text), line, column))
    return tokens
