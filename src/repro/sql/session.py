"""SQL statement execution against a Database."""

from __future__ import annotations

from time import perf_counter
from typing import Mapping

from repro.errors import SqlPlanError
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.rdb.database import Database
from repro.rdb.types import ColumnType
from repro.sql import ast
from repro.sql.expr import Scope, compile_expr
from repro.sql.parser import parse_sql
from repro.sql.planner import DmlMatchPlan, SelectPlan, function_registry
from repro.sql.result import ResultSet

_STATEMENTS = get_registry().counter("sql.statements")
_ROWS_RETURNED = get_registry().counter("sql.rows_returned")
_STMT_SECONDS = get_registry().histogram("sql.statement.seconds")

_TYPE_MAP = {
    "int": ColumnType.INT,
    "integer": ColumnType.INT,
    "float": ColumnType.FLOAT,
    "double": ColumnType.FLOAT,
    "varchar": ColumnType.VARCHAR,
    "char": ColumnType.VARCHAR,
    "text": ColumnType.VARCHAR,
    "date": ColumnType.DATE,
    "blob": ColumnType.BLOB,
}


def execute_sql(db: Database, text: str, params: Mapping | None = None):
    """Parse and execute one SQL statement.

    SELECT returns a :class:`ResultSet`; DML returns the affected row
    count; DDL returns 0.  Every statement is counted and timed
    (``sql.statements`` / ``sql.statement.seconds``) and emits a
    ``sql.statement`` span when tracing is enabled.
    """
    return execute_statement(db, parse_sql(text), params, text=text)


def execute_statement(
    db: Database, statement, params: Mapping | None = None, *, text: str = ""
):
    """Execute an already-parsed statement (same contract as
    :func:`execute_sql`).

    The transaction layer parses first — it needs the statement shape to
    compute the lock set — then executes through here, so a statement is
    never parsed twice.
    """
    params = dict(params or {})
    kind = type(statement).__name__
    _STATEMENTS.inc()
    started = perf_counter()
    with get_tracer().span("sql.statement", kind=kind, sql=text) as span:
        result = _dispatch(db, statement, params)
        if isinstance(result, ResultSet):
            _ROWS_RETURNED.inc(len(result.rows))
            span.set("rows_returned", len(result.rows))
        else:
            span.set("rows_affected", result)
    _STMT_SECONDS.observe(perf_counter() - started)
    return result


def _dispatch(db: Database, statement, params: dict):
    if isinstance(statement, ast.Select):
        plan = SelectPlan(db, statement)
        db.last_plan = plan
        return plan.execute(params)
    if isinstance(statement, ast.Insert):
        return _execute_insert(db, statement, params)
    if isinstance(statement, ast.InsertSelect):
        return _execute_insert_select(db, statement, params)
    if isinstance(statement, ast.Update):
        return _execute_update(db, statement, params)
    if isinstance(statement, ast.Delete):
        return _execute_delete(db, statement, params)
    if isinstance(statement, ast.CreateTable):
        return _execute_create_table(db, statement)
    if isinstance(statement, ast.CreateIndex):
        table = db.table(statement.table)
        table.create_index(statement.name, statement.columns, statement.unique)
        return 0
    if isinstance(statement, ast.DropTable):
        db.drop_table(statement.name)
        return 0
    raise SqlPlanError(f"cannot execute {type(statement).__name__}")


def _execute_create_table(db: Database, statement: ast.CreateTable) -> int:
    columns = []
    for col in statement.columns:
        ctype = _TYPE_MAP.get(col.type_name)
        if ctype is None:
            raise SqlPlanError(f"unknown column type {col.type_name!r}")
        columns.append((col.name, ctype))
    db.create_table(statement.name, columns, statement.primary_key)
    return 0


def _scalar_functions(db: Database) -> dict:
    return function_registry(db)


def _execute_insert(db: Database, statement: ast.Insert, params) -> int:
    table = db.table(statement.table)
    schema = table.schema
    functions = _scalar_functions(db)
    empty_scope = Scope({}, db)
    count = 0
    for row_exprs in statement.rows:
        values = [
            compile_expr(e, empty_scope, functions)(None, params)
            for e in row_exprs
        ]
        if statement.columns:
            if len(values) != len(statement.columns):
                raise SqlPlanError("INSERT arity mismatch")
            full = [None] * len(schema.columns)
            for column, value in zip(statement.columns, values):
                full[schema.position(column)] = value
            values = full
        table.insert(tuple(values))
        count += 1
    return count


def _execute_insert_select(db: Database, statement: ast.InsertSelect, params) -> int:
    result = SelectPlan(db, statement.select).execute(params)
    table = db.table(statement.table)
    schema = table.schema
    count = 0
    for row in result.rows:
        values = list(row)
        if statement.columns:
            full = [None] * len(schema.columns)
            for column, value in zip(statement.columns, values):
                full[schema.position(column)] = value
            values = full
        table.insert(tuple(values))
        count += 1
    return count


def _execute_update(db: Database, statement: ast.Update, params) -> int:
    table = db.table(statement.table)
    plan = DmlMatchPlan(db, statement.table, statement.where)
    assignments = [
        (column, compile_expr(expr, plan.scope, plan.functions))
        for column, expr in statement.assignments
    ]
    schema = table.schema
    alias = statement.table
    victims = list(plan.matches(params))
    for rid, env in victims:
        new_row = [env[(alias, name)] for name in schema.column_names]
        for column, value_fn in assignments:
            new_row[schema.position(column)] = value_fn(env, params)
        table.update_rid(rid, tuple(new_row))
    return len(victims)


def _execute_delete(db: Database, statement: ast.Delete, params) -> int:
    table = db.table(statement.table)
    plan = DmlMatchPlan(db, statement.table, statement.where)
    victims = [rid for rid, _ in plan.matches(params)]
    for rid in victims:
        table.delete_rid(rid)
    return len(victims)
