"""SQL front-end: parser, planner, executor, SQL/XML constructs.

Re-exports are resolved lazily (PEP 562): the planner imports the
logical-plan layer (:mod:`repro.plan`), whose modules import
:mod:`repro.sql.ast` — an eager ``session`` import here would close that
loop into a circular import.
"""

__all__ = ["parse_sql", "ResultSet", "execute_sql"]


def __getattr__(name: str):
    if name == "parse_sql":
        from repro.sql.parser import parse_sql

        return parse_sql
    if name == "ResultSet":
        from repro.sql.result import ResultSet

        return ResultSet
    if name == "execute_sql":
        from repro.sql.session import execute_sql

        return execute_sql
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
