"""SQL front-end: parser, planner, executor, SQL/XML constructs."""

from repro.sql.parser import parse_sql
from repro.sql.result import ResultSet
from repro.sql.session import execute_sql

__all__ = ["parse_sql", "ResultSet", "execute_sql"]
