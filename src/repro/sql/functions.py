"""Built-in SQL scalar functions, including the temporal UDFs.

The temporal functions mirror the XQuery library but take unpacked
``(tstart, tend)`` day-count pairs, which is exactly how the ArchIS
translator passes them (paper Section 5.4: "The translation of UDF
toverlaps takes in the tstart and tend values, and returns true or
false").  They delegate to :mod:`repro.util.intervals` so both query paths
share one implementation of interval semantics.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SqlPlanError
from repro.util.intervals import Interval
from repro.util.timeutil import FOREVER, format_date, parse_date


def _interval(tstart: object, tend: object) -> Interval:
    return Interval(_days(tstart), _days(tend))


def _days(value: object) -> int:
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return parse_date(value)
    raise SqlPlanError(f"expected a date value, got {value!r}")


# -- temporal predicates ------------------------------------------------------


def sql_toverlaps(s1, e1, s2, e2) -> bool:
    return _interval(s1, e1).overlaps(_interval(s2, e2))


def sql_tcontains(s1, e1, s2, e2) -> bool:
    return _interval(s1, e1).contains(_interval(s2, e2))


def sql_tequals(s1, e1, s2, e2) -> bool:
    return _interval(s1, e1).equals(_interval(s2, e2))


def sql_tmeets(s1, e1, s2, e2) -> bool:
    return _interval(s1, e1).meets(_interval(s2, e2))


def sql_tprecedes(s1, e1, s2, e2) -> bool:
    return _interval(s1, e1).precedes(_interval(s2, e2))


def sql_overlap_start(s1, e1, s2, e2):
    """Start of the overlapped interval, NULL when disjoint."""
    shared = _interval(s1, e1).intersect(_interval(s2, e2))
    return None if shared is None else shared.start


def sql_overlap_end(s1, e1, s2, e2):
    shared = _interval(s1, e1).intersect(_interval(s2, e2))
    return None if shared is None else shared.end


def sql_timespan(s, e) -> int:
    return _interval(s, e).timespan()


# -- date rendering -----------------------------------------------------------------


def sql_datestr(days) -> str | None:
    """Render a DATE day-count as ``YYYY-MM-DD`` (the H-document form)."""
    if days is None:
        return None
    return format_date(_days(days))


def sql_dateval(text) -> int | None:
    if text is None:
        return None
    return parse_date(str(text))


def sql_is_now(days) -> bool:
    return _days(days) == FOREVER


# -- generic scalars -------------------------------------------------------------------


def sql_coalesce(*args):
    for arg in args:
        if arg is not None:
            return arg
    return None


def sql_nullif(a, b):
    return None if a == b else a


def sql_greatest(*args):
    values = [a for a in args if a is not None]
    return max(values) if values else None


def sql_least(*args):
    values = [a for a in args if a is not None]
    return min(values) if values else None


def sql_abs(value):
    return None if value is None else abs(value)


def sql_length(value):
    return None if value is None else len(str(value))


def sql_lower(value):
    return None if value is None else str(value).lower()


def sql_upper(value):
    return None if value is None else str(value).upper()


def sql_substr(value, start, count=None):
    if value is None:
        return None
    text = str(value)
    begin = int(start) - 1
    if count is None:
        return text[begin:]
    return text[begin : begin + int(count)]


def sql_cast_int(value):
    return None if value is None else int(value)


def sql_cast_float(value):
    return None if value is None else float(value)


BUILTIN_FUNCTIONS: dict[str, Callable] = {
    "toverlaps": sql_toverlaps,
    "tcontains": sql_tcontains,
    "tequals": sql_tequals,
    "tmeets": sql_tmeets,
    "tprecedes": sql_tprecedes,
    "overlap_start": sql_overlap_start,
    "overlap_end": sql_overlap_end,
    "timespan": sql_timespan,
    "datestr": sql_datestr,
    "dateval": sql_dateval,
    "is_now": sql_is_now,
    "coalesce": sql_coalesce,
    "nullif": sql_nullif,
    "greatest": sql_greatest,
    "least": sql_least,
    "abs": sql_abs,
    "length": sql_length,
    "lower": sql_lower,
    "upper": sql_upper,
    "substr": sql_substr,
    "int": sql_cast_int,
    "float": sql_cast_float,
}
