"""Per-connection session state: one client's transactions and reads.

A session owns at most one write :class:`~repro.txn.manager.Transaction`
at a time.  Reads outside a transaction are **snapshot auto-commit**:
each SELECT runs against the session's pinned snapshot, so a client
never blocks on writers.  DML outside a transaction auto-commits through
a one-statement transaction.  Until the client pins a snapshot
explicitly with the ``snapshot`` op, the session re-pins to the latest
stable day after each of its own commits, so an autocommit INSERT is
visible to the SELECT that follows it (read-your-writes); an explicit
pin is kept until the client moves it.

Requests and responses are plain dicts (see
:mod:`repro.server.protocol`); :meth:`Session.handle` never raises —
engine errors come back as ``{"ok": false, "error": ..., "message":
...}`` so one bad statement cannot kill the connection.
"""

from __future__ import annotations

import time

from repro.errors import JobError, TxnError, error_response
from repro.obs.metrics import get_registry
from repro.obs.promtext import render_prometheus
from repro.obs.tracer import get_tracer
from repro.server.encoding import CODEC, encode_result
from repro.server.protocol import (
    check_encoding,
    check_jobs,
    check_temporal_params,
    check_version,
)
from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.sql.session import execute_statement
from repro.xmlkit.dom import Element
from repro.xmlkit.serializer import serialize

_REQUESTS = get_registry().labeled_counter("server.requests")
_ERRORS = get_registry().counter("server.errors")
_REQUEST_SECONDS = get_registry().labeled_histogram(
    "server.request.seconds", label_key="op"
)

_OPS = (
    "ping",
    "sql",
    "xquery",
    "begin",
    "commit",
    "abort",
    "snapshot",
    "stats",
    "metrics",
    "health",
    "job.submit",
    "job.status",
    "job.result",
    "job.cancel",
    "job.list",
)

#: ops that need the server's :class:`~repro.server.jobs.JobManager`
_JOB_OPS = frozenset(op for op in _OPS if op.startswith("job."))


def _jsonable(value):
    """Render a result cell for JSON transport (XML → serialized text)."""
    if isinstance(value, Element):
        return serialize(value)
    if isinstance(value, list):
        return [_jsonable(item) for item in value]
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value


def _cell_default(value):
    """``json.dumps`` fallback for raw engine cells that land in a
    binary TYPE_JSON column (XML → serialized text, like _jsonable)."""
    if isinstance(value, Element):
        return serialize(value)
    raise TypeError(
        f"result cell of type {type(value).__name__} is not serializable"
    )


class Session:
    """One client's view of the shared transaction manager."""

    def __init__(
        self, manager, archis=None, session_id: int = 0, jobs=None
    ) -> None:
        self.manager = manager
        self.archis = archis
        self.jobs = jobs
        self.id = session_id
        self.txn = None
        self._snapshot = manager.snapshot()
        # False until the client issues a ``snapshot`` op; while False,
        # the session re-pins after its own commits (read-your-writes).
        self._pinned = False

    # -- dispatch ----------------------------------------------------------

    def handle(
        self,
        request: dict,
        *,
        send=None,
        recv_seconds: float | None = None,
        wait_seconds: float | None = None,
    ) -> dict:
        """Execute one request dict, returning the response dict.

        The request's root span covers the whole server-side lifetime:
        ``recv_seconds`` (how long the wire read took) and
        ``wait_seconds`` (time queued on admission control) arrive as
        attributes, execution and the optional ``send`` callable run as
        child spans.  A ``trace`` field on the request —
        ``{"id": ..., "parent": ...}`` — links the root span (and the
        slow-query log) to the client's distributed trace, whether or
        not span recording is enabled.
        """
        started = time.perf_counter()
        op = request.get("op")
        trace = request.get("trace")
        if not isinstance(trace, dict):
            trace = {}
        tracer = get_tracer()
        with tracer.context(trace.get("id"), trace.get("parent")):
            with tracer.span(
                "server.request", op=op, session=self.id
            ) as span:
                if recv_seconds is not None:
                    span.set("recv_seconds", recv_seconds)
                if wait_seconds is not None:
                    span.set("wait_seconds", wait_seconds)
                with tracer.span("server.execute"):
                    response = self._execute(op, request)
                if send is not None:
                    with tracer.span("server.send"):
                        send(response)
            _REQUEST_SECONDS.observe(
                op if op in _OPS else "invalid",
                time.perf_counter() - started,
            )
        return response

    def _execute(self, op, request: dict) -> dict:
        rejection = check_version(request)
        if rejection is None:
            rejection = check_encoding(request)
        if rejection is None and op in _JOB_OPS:
            rejection = check_jobs(request)
        if rejection is not None:
            _ERRORS.inc()
            return rejection
        if op not in _OPS:
            _ERRORS.inc()
            return error_response(
                code="PROTOCOL", message=f"unknown op {op!r}"
            )
        _REQUESTS.inc(op)
        try:
            return getattr(self, f"_op_{op.replace('.', '_')}")(request)
        except Exception as exc:  # noqa: BLE001 - protect the worker
            _ERRORS.inc()
            return error_response(exc)

    def close(self) -> None:
        """Abort any in-flight transaction (connection teardown)."""
        if self.txn is not None and self.txn.state == "active":
            self.txn.abort()
        self.txn = None

    # -- operations --------------------------------------------------------

    def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "pong": True}

    def _op_begin(self, request: dict) -> dict:
        if self.txn is not None and self.txn.state == "active":
            raise TxnError(
                f"session {self.id} already has transaction "
                f"{self.txn.id} open"
            )
        self.txn = self.manager.begin()
        return {"ok": True, "txn": self.txn.id, "day": self.txn.day}

    def _op_commit(self, request: dict) -> dict:
        txn = self._require_txn()
        txn.commit()
        self.txn = None
        self._repin()
        return {"ok": True, "txn": txn.id, "day": txn.day}

    def _op_abort(self, request: dict) -> dict:
        txn = self._require_txn()
        txn.abort()
        self.txn = None
        return {"ok": True, "txn": txn.id}

    def _op_snapshot(self, request: dict) -> dict:
        self._snapshot = self.manager.snapshot(request.get("day"))
        self._pinned = True
        return {"ok": True, "day": self._snapshot.day}

    def _op_sql(self, request: dict) -> dict:
        text = request.get("text")
        if not isinstance(text, str):
            raise TxnError("sql op needs a 'text' string")
        params = request.get("params") or None
        statement = parse_sql(text)
        if isinstance(statement, ast.Select):
            rejection = check_temporal_params(
                request, ast.temporal_param_names(statement)
            )
            if rejection is not None:
                _ERRORS.inc()
                return rejection
        if self.txn is not None and self.txn.state == "active":
            result = self.txn.sql(text, params)
        else:
            result = self._autocommit(text, params, statement)
        if hasattr(result, "columns"):
            columns = list(result.columns)
            if request.get("enc") == "binary":
                # engine rows go straight to the columnar encoder — the
                # typed columns never needed the per-row JSON conversion
                # pass, and a TYPE_JSON fallback column serializes its
                # XML cells through _cell_default instead
                return self._binary_rows(
                    {"ok": True}, columns, list(result.rows)
                )
            rows = [_jsonable(row) for row in result.rows]
            return {"ok": True, "columns": columns, "rows": rows}
        return {"ok": True, "rowcount": result}

    @staticmethod
    def _binary_rows(response: dict, columns: list, rows: list) -> dict:
        """Attach ``rows`` x ``columns`` as a binary payload frame.

        The JSON header keeps the column names and gains a ``binary``
        descriptor; the encoded frame rides the transient ``_payload``
        key that :func:`repro.server.protocol.send_response` ships as a
        separate raw frame after the header.
        """
        frame = encode_result(rows, columns, json_default=_cell_default)
        response["columns"] = columns
        response["binary"] = {
            "codec": CODEC,
            "rows": len(rows),
            "bytes": len(frame),
        }
        response["_payload"] = frame
        return response

    def _autocommit(self, text: str, params, statement=None):
        """A statement outside any transaction: SELECTs run on the
        session snapshot, anything else through a one-statement write
        transaction.  The split is decided by statement type — catching
        the snapshot's read-only rejection instead would also re-execute
        a SELECT whose TxnError had some unrelated cause."""
        if statement is None:
            statement = parse_sql(text)
        if isinstance(statement, ast.Select):
            return self._snapshot.run(
                execute_statement,
                self.manager.db,
                statement,
                params,
                text=text,
            )
        with self.manager.begin() as txn:
            result = txn.sql(text, params)
        self._repin()
        return result

    def _repin(self) -> None:
        """After a commit: follow the session's own writes unless the
        client holds an explicit pin."""
        if not self._pinned:
            self._snapshot = self.manager.snapshot()

    def _op_xquery(self, request: dict) -> dict:
        if self.archis is None:
            raise TxnError("no archive attached; xquery unavailable")
        text = request.get("text")
        if not isinstance(text, str):
            raise TxnError("xquery op needs a 'text' string")
        result = self._snapshot.run(
            self.archis.xquery,
            text,
            allow_fallback=bool(request.get("allow_fallback", True)),
        )
        results = [
            serialize(item) if isinstance(item, Element) else item
            for item in result.rows
        ]
        response = {
            "ok": True,
            "day": self._snapshot.day,
            "stats": {
                k: v
                for k, v in result.stats.items()
                if isinstance(v, (str, int, float, bool))
            },
        }
        if request.get("enc") == "binary":
            # a forest is one "results" column; the marker tells the
            # client to unwrap the single-column rows back to a list
            response = self._binary_rows(
                response, ["results"], [[item] for item in results]
            )
            response["forest"] = True
            return response
        response["results"] = results
        return response

    # -- async jobs --------------------------------------------------------

    def _require_jobs(self):
        if self.jobs is None:
            raise JobError(
                "this server has no job manager; async jobs unavailable"
            )
        return self.jobs

    @staticmethod
    def _job_id(request: dict) -> str:
        job_id = request.get("job")
        if not isinstance(job_id, str):
            raise JobError("job ops need a 'job' id string")
        return job_id

    def _op_job_submit(self, request: dict) -> dict:
        text = request.get("text")
        if not isinstance(text, str):
            raise JobError("job.submit needs a 'text' string")
        job = self._require_jobs().submit(
            request.get("kind", "sql"),
            text,
            params=request.get("params") or None,
            allow_fallback=bool(request.get("allow_fallback", True)),
            day=request.get("day"),
            trace_id=get_tracer().current_trace_id(),
        )
        return {"ok": True, **job.describe()}

    def _op_job_status(self, request: dict) -> dict:
        job = self._require_jobs().get(self._job_id(request))
        return {"ok": True, **job.describe()}

    def _op_job_result(self, request: dict) -> dict:
        payload = self._require_jobs().result(self._job_id(request))
        response = {"ok": True, "day": payload["day"]}
        if "forest" in payload:
            if request.get("enc") == "binary":
                response = self._binary_rows(
                    response,
                    ["results"],
                    [[item] for item in payload["forest"]],
                )
                response["forest"] = True
                return response
            response["results"] = payload["forest"]
            return response
        if request.get("enc") == "binary":
            return self._binary_rows(
                response, payload["columns"], payload["rows"]
            )
        response["columns"] = payload["columns"]
        response["rows"] = payload["rows"]
        return response

    def _op_job_cancel(self, request: dict) -> dict:
        job = self._require_jobs().cancel(self._job_id(request))
        return {"ok": True, **job.describe()}

    def _op_job_list(self, request: dict) -> dict:
        return {
            "ok": True,
            "jobs": [job.describe() for job in self._require_jobs().list()],
        }

    def _op_stats(self, request: dict) -> dict:
        if self.archis is not None:
            return {"ok": True, "stats": self.archis.stats()}
        return {"ok": True, "stats": {"txn": self.manager.stats()}}

    def _op_metrics(self, request: dict) -> dict:
        """The full Prometheus text exposition of the process registry."""
        return {"ok": True, "exposition": render_prometheus()}

    def _op_health(self, request: dict) -> dict:
        """Liveness plus the engine's load-bearing gauges."""
        registry = get_registry()
        return {
            "ok": True,
            "status": "ok",
            "gauges": {
                "server.sessions": registry.gauge("server.sessions").value,
                "txn.active": registry.gauge("txn.active").value,
                "txn.aborts": registry.counter("txn.aborts").value,
                "buffer.occupancy": registry.gauge(
                    "buffer.occupancy"
                ).value,
                "pager.dirty_pages": registry.gauge(
                    "pager.dirty_pages"
                ).value,
                "wal.size_bytes": registry.gauge("wal.size_bytes").value,
                "updatelog.backlog": registry.labeled_gauge(
                    "updatelog.backlog"
                ).total,
            },
        }

    def _require_txn(self):
        if self.txn is None or self.txn.state != "active":
            raise TxnError(f"session {self.id} has no open transaction")
        return self.txn
