"""Multi-session server front end over the concurrency subsystem.

A small socket server speaking a length-prefixed JSON protocol
(:mod:`repro.server.protocol`); each connection gets a
:class:`~repro.server.session.Session` wrapping the shared
:class:`~repro.txn.TxnManager`, so many clients run MVCC snapshot reads
and locked write transactions against one :class:`~repro.archis.ArchIS`
instance.  Start it with ``python -m repro.tools serve`` and talk to it
with :class:`~repro.server.client.Client`.

Protocol version 3 adds an async job service for heavy analytics
(:mod:`repro.server.jobs`) and a compact binary result encoding
(:mod:`repro.server.encoding`), both negotiated per connection; older
clients keep the JSON protocol byte for byte.
"""

from repro.server.client import Client
from repro.server.jobs import JobManager
from repro.server.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    recv_message,
    send_message,
)
from repro.server.server import Server
from repro.server.session import Session

__all__ = [
    "Client",
    "JobManager",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "Server",
    "Session",
    "recv_message",
    "send_message",
]
