"""The wire protocol: length-prefixed JSON messages.

Every message — request or response — is a UTF-8 JSON object preceded by
a 4-byte big-endian length.  Requests carry an ``op``, an optional
protocol version ``v``, plus op-specific fields; responses carry ``ok``
(bool) plus either the result fields or ``error``/``message``:

    {"op": "sql", "v": 1, "text": "SELECT ...", "params": {...}}
    {"ok": true, "columns": [...], "rows": [[...], ...]}
    {"ok": false, "error": "DeadlockError", "message": "..."}

Operations: ``ping``, ``sql``, ``xquery``, ``begin``, ``commit``,
``abort``, ``snapshot`` (pin / re-pin the session's read snapshot),
``stats``, ``metrics`` (the Prometheus text exposition of the server's
metrics registry) and ``health`` (liveness plus load gauges).  The
server answers ``BUSY`` (``error = "ServerBusyError"``) when admission
control rejects a request.

Distributed tracing: a request may carry a ``trace`` object —
``{"id": "<hex>", "parent": "<hex>"}`` — naming the client's trace and
(optionally) the client-side span that issued the request.  The server
adopts the id for the request's root span and its slow-query log
entries, so one trace id follows a query from the caller through the
wire into the engine.  The field is optional and ignored by older
servers; it never changes the protocol version.

Versioning: this build speaks :data:`PROTOCOL_VERSION`.  A request whose
``v`` is a version the server does not support gets a structured
``UNSUPPORTED_VERSION`` error (``error = "UnsupportedVersionError"``,
``code = "UNSUPPORTED_VERSION"``, plus ``offered``/``supported``
fields) instead of a confusing decode failure.  Requests without ``v``
are treated as version-1 legacy clients and accepted.

Feature gating works the same way: a version-1 client that sends a
``sql`` request binding parameters inside a ``FOR SYSTEM_TIME`` clause
(a version-2 feature) gets ``code = "TEMPORAL_PARAMS_UNSUPPORTED"``
with ``supported`` naming the versions that speak it, rather than a
silently mis-planned query.

Version 3 adds two features, each gated the same way:

- **async jobs** — the ``job.submit`` / ``job.status`` / ``job.result``
  / ``job.cancel`` / ``job.list`` ops (``code = "JOBS_UNSUPPORTED"``
  for older clients that try them);
- **binary results** — a request carrying ``"enc": "binary"`` asks for
  the response's rows as one :mod:`repro.server.encoding` columnar
  frame.  The JSON header is sent as usual (with the row data replaced
  by a ``binary`` descriptor) followed by one length-prefixed raw
  payload frame; see :func:`send_response` / :func:`recv_payload`.
  Version-1/2 requests never get a payload frame — their responses stay
  byte-identical to what those protocol versions always shipped — and a
  v1/v2 request asking for ``enc`` gets
  ``code = "BINARY_ENCODING_UNSUPPORTED"``.
"""

from __future__ import annotations

import json
import socket
import struct

from repro.errors import ProtocolError, error_response

#: the wire-protocol version this build speaks.  Version 2 adds named
#: parameters bound inside ``FOR SYSTEM_TIME`` clauses on the ``sql``
#: op; version 3 adds async jobs and the binary result encoding
PROTOCOL_VERSION = 3

#: versions the server accepts (requests without ``v`` count as 1)
SUPPORTED_VERSIONS = (1, 2, 3)

#: the first protocol version whose ``sql`` op may bind parameters in
#: temporal (``FOR SYSTEM_TIME``) clause positions
TEMPORAL_PARAMS_VERSION = 2

#: the first protocol version that speaks the ``job.*`` ops
JOBS_VERSION = 3

#: the first protocol version that may negotiate binary result frames
BINARY_ENCODING_VERSION = 3

_LENGTH = struct.Struct(">I")

#: refuse anything larger than this (a corrupt prefix otherwise reads as
#: a multi-gigabyte allocation)
MAX_MESSAGE_BYTES = 16 * 1024 * 1024


def check_version(request: dict) -> dict | None:
    """The ``UNSUPPORTED_VERSION`` response for ``request``, or ``None``
    when its version is acceptable (missing ``v`` = legacy version 1)."""
    offered = request.get("v", PROTOCOL_VERSION)
    if offered in SUPPORTED_VERSIONS:
        return None
    return error_response(
        code="UNSUPPORTED_VERSION",
        message=(
            f"protocol version {offered!r} is not supported; this server "
            f"speaks {', '.join(str(v) for v in SUPPORTED_VERSIONS)}"
        ),
        offered=offered,
        supported=list(SUPPORTED_VERSIONS),
    )


def _feature_gate(
    request: dict, code: str, needs: int, feature: str
) -> dict | None:
    """The structured rejection for a request whose version predates
    ``needs``, or ``None`` when the feature is available to it."""
    offered = request.get("v", 1)
    if offered >= needs:
        return None
    return error_response(
        code=code,
        message=(
            f"{feature} needs protocol version {needs}; this request "
            f"offered version {offered}"
        ),
        offered=offered,
        supported=[v for v in SUPPORTED_VERSIONS if v >= needs],
    )


def check_temporal_params(request: dict, param_names: list) -> dict | None:
    """The ``TEMPORAL_PARAMS_UNSUPPORTED`` response for ``request``, or
    ``None`` when the client's version may bind temporal parameters.

    ``param_names`` are the parameters the statement binds inside
    ``FOR SYSTEM_TIME`` clauses (see
    :func:`repro.sql.ast.temporal_param_names`); an empty list never
    rejects.
    """
    if not param_names:
        return None
    shown = ", ".join(f":{name}" for name in sorted(set(param_names)))
    return _feature_gate(
        request,
        "TEMPORAL_PARAMS_UNSUPPORTED",
        TEMPORAL_PARAMS_VERSION,
        f"parameters in FOR SYSTEM_TIME clauses ({shown})",
    )


def check_jobs(request: dict) -> dict | None:
    """The ``JOBS_UNSUPPORTED`` rejection for a pre-v3 request using a
    ``job.*`` op, or ``None`` when jobs are available to it."""
    return _feature_gate(
        request,
        "JOBS_UNSUPPORTED",
        JOBS_VERSION,
        f"the {request.get('op')!r} op",
    )


def check_encoding(request: dict) -> dict | None:
    """The ``BINARY_ENCODING_UNSUPPORTED`` rejection for a pre-v3
    request asking for a non-JSON result encoding, or ``None`` when the
    request's encoding is fine (missing/``"json"`` always is)."""
    encoding = request.get("enc")
    if encoding in (None, "json"):
        return None
    if encoding != "binary":
        return error_response(
            code="PROTOCOL",
            message=f"unknown result encoding {encoding!r}",
        )
    return _feature_gate(
        request,
        "BINARY_ENCODING_UNSUPPORTED",
        BINARY_ENCODING_VERSION,
        "binary result encoding",
    )


def send_message(sock: socket.socket, message: dict) -> None:
    """Serialize ``message`` and write it length-prefixed to ``sock``."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(body)} bytes exceeds {MAX_MESSAGE_BYTES}"
        )
    sock.sendall(_LENGTH.pack(len(body)) + body)


def send_response(sock: socket.socket, response: dict) -> None:
    """Send a response, including its binary payload frame if any.

    A response carrying rows in the negotiated binary encoding holds the
    encoded frame under the transient ``"_payload"`` key (never part of
    the JSON) and describes it under ``"binary"``.  The JSON header goes
    first, then the payload as one length-prefixed raw frame — so v1/v2
    responses (which never have a payload) remain byte-identical to what
    :func:`send_message` always produced.
    """
    payload = response.pop("_payload", None)
    send_message(sock, response)
    if payload is not None:
        send_bytes(sock, payload)


def send_bytes(sock: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed raw frame (no JSON envelope)."""
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds {MAX_MESSAGE_BYTES}"
        )
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_payload(sock: socket.socket) -> bytes:
    """Read one length-prefixed raw frame (the binary result payload
    announced by a response's ``binary`` descriptor)."""
    prefix = _recv_exact(sock, _LENGTH.size, eof_ok=False)
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds {MAX_MESSAGE_BYTES}"
        )
    return _recv_exact(sock, length, eof_ok=False)


def recv_message(sock: socket.socket) -> dict | None:
    """Read one message; ``None`` on a clean EOF at a message boundary."""
    prefix = _recv_exact(sock, _LENGTH.size, eof_ok=True)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"declared message of {length} bytes exceeds {MAX_MESSAGE_BYTES}"
        )
    body = _recv_exact(sock, length, eof_ok=False)
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("messages must be JSON objects")
    return message


def _recv_exact(
    sock: socket.socket, count: int, eof_ok: bool
) -> bytes | None:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-message ({count - remaining} of "
                f"{count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
