"""Async jobs: heavy read-only analytics off the request/response path.

The paper's workloads (temporal slicing, snapshot reconstruction over
compressed segments) run for seconds — long enough that a synchronous
server design makes them monopolize a worker thread while the client
blocks on the socket.  The :class:`JobManager` runs them UWS-style
instead (the pattern production services like gavo's job layer use):

- ``submit`` parses and admission-checks the query, pins a snapshot,
  queues the job on a **bounded executor separate from the session
  worker pool**, and returns a shareable job id immediately;
- the job moves through ``PENDING → RUNNING → COMPLETED`` (or
  ``ERROR`` / ``ABORTED``), observable from any connection via
  ``job.status`` / ``job.list``;
- the finished result is cached on the manager and fetched — possibly
  repeatedly, possibly by a different client — via ``job.result``
  until its TTL expires and the job is evicted;
- ``job.cancel`` is cooperative: it flips the job's cancel event,
  which is honored before the query starts and again before the
  result is stored (a scan already inside the engine runs to its end,
  but its result is discarded and the job reports ``ABORTED``).

Jobs are **read-only by construction**: SQL jobs must be SELECTs and
run against the snapshot pinned at submit time, XQuery jobs run the
archive's translator the same way.  That keeps the job executor free
of lock/transaction interactions with the session pool.

Each job runs under a tracer span carrying the submitting request's
trace id, so one trace follows a query from the client through
``job.submit`` into the engine run; progress is exposed as the job's
phase plus elapsed time, and the lifecycle counters/gauge live in the
process metrics registry (``jobs.*``, ``job.seconds``).
"""

from __future__ import annotations

import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor

from repro.errors import (
    JobError,
    JobNotFoundError,
    JobStateError,
    ServerBusyError,
)
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.sql.session import execute_statement
from repro.xmlkit.dom import Element
from repro.xmlkit.serializer import serialize

PENDING = "PENDING"
RUNNING = "RUNNING"
COMPLETED = "COMPLETED"
ERROR = "ERROR"
ABORTED = "ABORTED"

#: states a job can never leave (its result/error is final)
TERMINAL = frozenset({COMPLETED, ERROR, ABORTED})

_SUBMITTED = get_registry().counter("jobs.submitted")
_COMPLETED = get_registry().counter("jobs.completed")
_FAILED = get_registry().counter("jobs.failed")
_ABORTED = get_registry().counter("jobs.aborted")
_REJECTED = get_registry().counter("jobs.rejected")
_EVICTED = get_registry().counter("jobs.evicted")
_ACTIVE = get_registry().gauge("jobs.active")
_SECONDS = get_registry().histogram("job.seconds")


class Job:
    """One submitted query and its lifecycle state.

    All mutable fields are guarded by the owning manager's lock except
    ``cancel``, a :class:`threading.Event` safe to set from any thread.
    """

    __slots__ = (
        "id",
        "kind",
        "text",
        "params",
        "allow_fallback",
        "day",
        "state",
        "phase",
        "trace_id",
        "submitted_at",
        "started_at",
        "finished_at",
        "monotonic_finished",
        "result",
        "error",
        "cancel",
        "future",
    )

    def __init__(
        self,
        job_id: str,
        kind: str,
        text: str,
        params: dict | None,
        allow_fallback: bool,
        day: int | None,
        trace_id: str | None,
    ) -> None:
        self.id = job_id
        self.kind = kind
        self.text = text
        self.params = params
        self.allow_fallback = allow_fallback
        self.day = day
        self.state = PENDING
        self.phase = "queued"
        self.trace_id = trace_id
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.monotonic_finished: float | None = None
        self.result = None
        self.error: BaseException | None = None
        self.cancel = threading.Event()
        self.future = None

    def describe(self) -> dict:
        """The JSON-facing status view of this job."""
        status = {
            "job": self.id,
            "kind": self.kind,
            "state": self.state,
            "progress": {"phase": self.phase},
            "submitted_at": self.submitted_at,
        }
        if self.started_at is not None:
            status["started_at"] = self.started_at
            end = self.finished_at or time.time()
            status["progress"]["elapsed_seconds"] = round(
                end - self.started_at, 6
            )
        if self.finished_at is not None:
            status["finished_at"] = self.finished_at
        if self.state == COMPLETED and self.result is not None:
            status["rows"] = self.result.get("row_count")
        if self.state == ERROR and self.error is not None:
            status["message"] = str(self.error)
        return status


class JobManager:
    """Owns the job executor, registry and result cache.

    One manager is shared by every session of a server, so job ids are
    shareable: the connection that fetches a result need not be the one
    that submitted the job.  ``workers`` bounds concurrent jobs (the
    executor is distinct from the server's session workers, so a long
    analytics job never starves short interactive requests), and at
    most ``max_queued`` jobs may be waiting or running at once — past
    that, ``submit`` answers ``BUSY``.  Terminal jobs are evicted
    ``result_ttl`` seconds after finishing.
    """

    def __init__(
        self,
        manager,
        archis=None,
        *,
        workers: int = 2,
        result_ttl: float = 300.0,
        max_queued: int | None = None,
    ) -> None:
        if workers < 1:
            raise JobError("need at least one job worker")
        self.manager = manager
        self.archis = archis
        self.result_ttl = result_ttl
        self.max_queued = max_queued if max_queued is not None else workers * 8
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job"
        )
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Cancel queued jobs and wait for running ones to finish."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            jobs = list(self._jobs.values())
        for job in jobs:
            job.cancel.set()
        self._executor.shutdown(wait=True, cancel_futures=True)
        with self._lock:
            for job in self._jobs.values():
                if job.state in (PENDING, RUNNING):
                    self._finish(job, ABORTED)

    # -- submission --------------------------------------------------------

    def submit(
        self,
        kind: str,
        text: str,
        *,
        params: dict | None = None,
        allow_fallback: bool = True,
        day: int | None = None,
        trace_id: str | None = None,
    ) -> Job:
        """Queue one read-only query; returns the registered job.

        Parse errors and non-SELECT SQL are rejected here, synchronously
        — the caller gets the real error instead of submitting a job
        doomed to ``ERROR``.
        """
        if kind == "sql":
            statement = parse_sql(text)
            if not isinstance(statement, ast.Select):
                raise JobError(
                    "jobs are read-only: only SELECT statements may be "
                    "submitted as sql jobs"
                )
        elif kind == "xquery":
            if self.archis is None:
                raise JobError("no archive attached; xquery jobs unavailable")
        else:
            raise JobError(f"unknown job kind {kind!r}")
        job = Job(
            uuid.uuid4().hex[:12],
            kind,
            text,
            params,
            allow_fallback,
            day,
            trace_id,
        )
        with self._lock:
            if self._closed:
                raise JobError("job manager is shut down")
            self._sweep_locked()
            waiting = sum(
                1 for j in self._jobs.values() if j.state not in TERMINAL
            )
            if waiting >= self.max_queued:
                _REJECTED.inc()
                raise ServerBusyError(
                    f"job queue full ({waiting} jobs queued or running); "
                    "retry later"
                )
            self._jobs[job.id] = job
            _SUBMITTED.inc()
            _ACTIVE.set(waiting + 1)
        job.future = self._executor.submit(self._run, job)
        return job

    # -- queries -----------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            self._sweep_locked()
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(
                f"no job {job_id!r} (never submitted, or expired past the "
                f"{self.result_ttl:g}s result TTL)"
            )
        return job

    def list(self) -> list[Job]:
        with self._lock:
            self._sweep_locked()
            return sorted(
                self._jobs.values(), key=lambda job: job.submitted_at
            )

    def result(self, job_id: str) -> dict:
        """The cached result payload of a COMPLETED job.

        A job in ``ERROR`` re-raises its stored (typed) error; any other
        non-terminal state raises :class:`JobStateError` so the client
        knows to poll ``job.status`` first.
        """
        job = self.get(job_id)
        if job.state == COMPLETED:
            return job.result
        if job.state == ERROR:
            raise job.error
        raise JobStateError(
            f"job {job_id} is {job.state}; its result is not available"
        )

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; returns the job (state may already be
        terminal, in which case this is a no-op)."""
        job = self.get(job_id)
        job.cancel.set()
        with self._lock:
            if job.state == PENDING and job.future.cancel():
                self._finish(job, ABORTED)
        return job

    # -- execution ---------------------------------------------------------

    def _run(self, job: Job) -> None:
        if job.cancel.is_set():
            with self._lock:
                self._finish(job, ABORTED)
            return
        with self._lock:
            job.state = RUNNING
            job.phase = "running"
            job.started_at = time.time()
        started = time.perf_counter()
        tracer = get_tracer()
        try:
            with tracer.context(job.trace_id):
                with tracer.span("job.run", job=job.id, kind=job.kind):
                    payload = self._evaluate(job)
            with self._lock:
                if job.cancel.is_set():
                    self._finish(job, ABORTED)
                else:
                    job.result = payload
                    job.phase = "done"
                    self._finish(job, COMPLETED)
        except BaseException as exc:  # noqa: BLE001 - stored, re-raised on fetch
            with self._lock:
                if job.cancel.is_set():
                    self._finish(job, ABORTED)
                else:
                    job.error = exc
                    job.phase = "failed"
                    self._finish(job, ERROR)
        finally:
            _SECONDS.observe(time.perf_counter() - started)

    def _evaluate(self, job: Job) -> dict:
        """Run the query on its own snapshot; returns the plain-data
        result payload cached on the job (no engine objects retained)."""
        snapshot = self.manager.snapshot(job.day)
        if job.kind == "sql":
            statement = parse_sql(job.text)
            result = snapshot.run(
                execute_statement,
                self.manager.db,
                statement,
                job.params,
                text=job.text,
            )
            rows = [
                [
                    serialize(cell) if isinstance(cell, Element) else cell
                    for cell in row
                ]
                for row in result.rows
            ]
            return {
                "columns": list(result.columns or []),
                "rows": rows,
                "row_count": len(rows),
                "day": snapshot.day,
            }
        result = snapshot.run(
            self.archis.xquery,
            job.text,
            allow_fallback=job.allow_fallback,
        )
        forest = [
            serialize(item) if isinstance(item, Element) else item
            for item in result.rows
        ]
        return {
            "forest": forest,
            "row_count": len(forest),
            "day": snapshot.day,
        }

    # -- bookkeeping (callers hold self._lock) -----------------------------

    def _finish(self, job: Job, state: str) -> None:
        job.state = state
        job.finished_at = time.time()
        job.monotonic_finished = time.monotonic()
        if state == COMPLETED:
            _COMPLETED.inc()
        elif state == ERROR:
            _FAILED.inc()
        else:
            job.phase = "aborted"
            _ABORTED.inc()
        _ACTIVE.set(
            sum(1 for j in self._jobs.values() if j.state not in TERMINAL)
        )

    def _sweep_locked(self) -> None:
        """Evict terminal jobs older than the result TTL."""
        now = time.monotonic()
        expired = [
            job_id
            for job_id, job in self._jobs.items()
            if job.state in TERMINAL
            and job.monotonic_finished is not None
            and now - job.monotonic_finished > self.result_ttl
        ]
        for job_id in expired:
            del self._jobs[job_id]
            _EVICTED.inc()


__all__ = [
    "ABORTED",
    "COMPLETED",
    "ERROR",
    "Job",
    "JobManager",
    "PENDING",
    "RUNNING",
    "TERMINAL",
]
