"""A small blocking client for the JSON protocol.

Used by the test-suite, the concurrency stress script and the bench
harness; also a reference implementation of the protocol for external
clients (any language that can write a 4-byte length and JSON).
"""

from __future__ import annotations

import socket

from repro.api import Result
from repro.errors import (
    ProtocolError,
    ServerBusyError,
    ServerError,
    UnsupportedVersionError,
)
from repro.obs.tracer import get_tracer, new_trace_id
from repro.server.protocol import (
    PROTOCOL_VERSION,
    recv_message,
    send_message,
)


class Client:
    """One connection to a :class:`~repro.server.server.Server`.

    Every request this client builds carries the protocol version
    (``"v"``) and a ``trace`` field: inside a client-side span the
    active trace continues onto the server (the server's root span
    becomes a child of the caller's span); outside any span the
    connection's own ``trace_id`` groups all its requests into one
    trace.  A server that does not speak the version answers with a
    structured ``UNSUPPORTED_VERSION`` error, surfaced here as
    :class:`~repro.errors.UnsupportedVersionError`.
    """

    def __init__(
        self, host: str, port: int, timeout: float | None = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        #: the trace id stamped on requests sent outside any local span
        self.trace_id = new_trace_id()

    def request(self, message: dict) -> dict:
        """Send one request and return the raw response dict.

        The message is sent as given — ``request`` is the raw escape
        hatch (and what the protocol tests use to impersonate clients
        of other versions); the convenience wrappers below stamp the
        protocol version themselves.
        """
        send_message(self._sock, message)
        response = recv_message(self._sock)
        if response is None:
            raise ProtocolError("server closed the connection")
        return response

    def _trace_context(self) -> dict:
        span = get_tracer().current_span()
        if span is not None and span.trace_id:
            return {"id": span.trace_id, "parent": span.span_id}
        return {"id": self.trace_id}

    def _checked(self, message: dict) -> dict:
        message.setdefault("v", PROTOCOL_VERSION)
        message.setdefault("trace", self._trace_context())
        response = self.request(message)
        if not response.get("ok"):
            error = response.get("error", "ServerError")
            detail = response.get("message", "")
            if error == "ServerBusyError":
                raise ServerBusyError(detail)
            if error == "UnsupportedVersionError":
                exc = UnsupportedVersionError(detail)
                exc.remote_error = error
                exc.code = response.get("code")
                exc.supported = response.get("supported")
                raise exc
            exc = ServerError(f"{error}: {detail}")
            exc.remote_error = error
            raise exc
        return response

    # -- convenience wrappers ----------------------------------------------

    def execute(self, text: str, params: dict | None = None) -> Result:
        """Run one SQL statement, returning a unified
        :class:`~repro.api.Result`.

        SELECTs carry rows (as lists — JSON has no tuples) and column
        names; DML carries an empty ``rows`` with ``row_count`` set to
        the affected-row count.
        """
        message: dict = {"op": "sql", "text": text}
        if params:
            message["params"] = params
        trace = self._trace_context()
        message["trace"] = trace
        response = self._checked(message)
        stats = dict(response.get("stats") or {})
        stats.setdefault("trace_id", trace["id"])
        if "columns" in response:
            return Result(
                response["rows"], list(response["columns"]), stats=stats
            )
        return Result(
            [], None, row_count=int(response.get("rowcount", 0)), stats=stats
        )

    def ping(self) -> bool:
        return bool(self._checked({"op": "ping"}).get("pong"))

    def sql(self, text: str, params: dict | None = None) -> dict:
        """Returns ``{"columns", "rows"}`` for queries, ``{"rowcount"}``
        for DML."""
        message = {"op": "sql", "text": text}
        if params:
            message["params"] = params
        return self._checked(message)

    def xquery(self, text: str, allow_fallback: bool = True) -> list:
        return self._checked(
            {"op": "xquery", "text": text, "allow_fallback": allow_fallback}
        )["results"]

    def begin(self) -> int:
        return self._checked({"op": "begin"})["txn"]

    def commit(self) -> int:
        """Commit the open transaction; returns its commit day."""
        return self._checked({"op": "commit"})["day"]

    def abort(self) -> None:
        self._checked({"op": "abort"})

    def snapshot(self, day: int | None = None) -> int:
        """Re-pin the session's read snapshot; returns the pinned day."""
        message: dict = {"op": "snapshot"}
        if day is not None:
            message["day"] = day
        return self._checked(message)["day"]

    def stats(self) -> dict:
        return self._checked({"op": "stats"})["stats"]

    def metrics(self) -> str:
        """The server's Prometheus text exposition."""
        return self._checked({"op": "metrics"})["exposition"]

    def health(self) -> dict:
        """Liveness check; returns ``{"status", "gauges"}``."""
        response = self._checked({"op": "health"})
        return {
            "status": response["status"],
            "gauges": response["gauges"],
        }

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
