"""A small blocking client for the wire protocol.

Used by the test-suite, the concurrency stress script and the bench
harness; also a reference implementation of the protocol for external
clients (any language that can write a 4-byte length and JSON).

Errors come back typed: the server's structured ``{code, message,
detail}`` responses are rebuilt into the one exception hierarchy of
:mod:`repro.errors` (a remote deadlock raises
:class:`~repro.errors.DeadlockError` here, a finished-with-error job
re-raises its original error class on fetch).

Construct with ``encoding="binary"`` to negotiate the protocol-v3
columnar result frames: row-bearing responses then arrive as one
compact binary payload (see :mod:`repro.server.encoding`) instead of
JSON rows — same data, several times smaller and faster to decode.
Binary rows arrive as tuples (like engine-side results); JSON rows
stay lists, exactly as previous protocol versions shipped them.
"""

from __future__ import annotations

import socket
import time
from contextlib import contextmanager

from repro.api import Result
from repro.errors import JobError, ProtocolError, exception_for
from repro.obs.tracer import get_tracer, new_trace_id
from repro.server.encoding import CODEC, decode_result
from repro.server.jobs import TERMINAL
from repro.server.protocol import (
    PROTOCOL_VERSION,
    recv_message,
    recv_payload,
    send_message,
)


class Client:
    """One connection to a :class:`~repro.server.server.Server`.

    Every request this client builds carries the protocol version
    (``"v"``) and a ``trace`` field: inside a client-side span the
    active trace continues onto the server (the server's root span
    becomes a child of the caller's span); outside any span the
    connection's own ``trace_id`` groups all its requests into one
    trace.  A server that does not speak the version answers with a
    structured ``UNSUPPORTED_VERSION`` error, surfaced here as
    :class:`~repro.errors.UnsupportedVersionError`.

    Every convenience method takes a keyword-only ``timeout`` that
    bounds that one request (connect/default timeouts come from the
    constructor).  The client is a context manager; leaving the
    ``with`` block closes the socket.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = 30.0,
        encoding: str = "json",
    ) -> None:
        if encoding not in ("json", "binary"):
            raise ProtocolError(f"unknown result encoding {encoding!r}")
        self.encoding = encoding
        self._sock = socket.create_connection((host, port), timeout=timeout)
        #: the trace id stamped on requests sent outside any local span
        self.trace_id = new_trace_id()

    # -- plumbing ----------------------------------------------------------

    @contextmanager
    def _deadline(self, timeout: float | None):
        """Temporarily narrow the socket timeout for one request."""
        if timeout is None:
            yield
            return
        previous = self._sock.gettimeout()
        self._sock.settimeout(timeout)
        try:
            yield
        finally:
            self._sock.settimeout(previous)

    def request(
        self, message: dict, *, timeout: float | None = None
    ) -> dict:
        """Send one request and return the raw response dict.

        The message is sent as given — ``request`` is the raw escape
        hatch (and what the protocol tests use to impersonate clients
        of other versions); the convenience wrappers below stamp the
        protocol version themselves.  A response announcing a binary
        payload has the payload frame read and decoded back into its
        ``rows`` (or ``results``) field.
        """
        with self._deadline(timeout):
            send_message(self._sock, message)
            response = recv_message(self._sock)
            if response is None:
                raise ProtocolError("server closed the connection")
            binary = response.get("binary")
            if binary is not None:
                payload = recv_payload(self._sock)
                if binary.get("codec") != CODEC:
                    raise ProtocolError(
                        f"server sent unknown codec {binary.get('codec')!r}"
                    )
                columns, rows = decode_result(payload)
                if response.get("forest"):
                    response["results"] = [row[0] for row in rows]
                else:
                    response["columns"] = columns
                    response["rows"] = rows
        return response

    def _trace_context(self) -> dict:
        span = get_tracer().current_span()
        if span is not None and span.trace_id:
            return {"id": span.trace_id, "parent": span.span_id}
        return {"id": self.trace_id}

    def _checked(
        self, message: dict, *, timeout: float | None = None
    ) -> dict:
        message.setdefault("v", PROTOCOL_VERSION)
        message.setdefault("trace", self._trace_context())
        if self.encoding == "binary":
            message.setdefault("enc", "binary")
        response = self.request(message, timeout=timeout)
        if not response.get("ok"):
            exc = exception_for(
                response.get("code"),
                response.get("message", ""),
                error=response.get("error"),
                detail=response.get("detail"),
            )
            for key in ("offered", "supported"):
                if key in response:
                    setattr(exc, key, response[key])
            raise exc
        return response

    # -- convenience wrappers ----------------------------------------------

    def execute(
        self,
        text: str,
        *,
        params: dict | None = None,
        timeout: float | None = None,
    ) -> Result:
        """Run one SQL statement, returning a unified
        :class:`~repro.api.Result`.

        SELECTs carry rows (lists over JSON, tuples over the binary
        encoding) and column names; DML carries an empty ``rows`` with
        ``row_count`` set to the affected-row count.
        """
        message: dict = {"op": "sql", "text": text}
        if params:
            message["params"] = params
        trace = self._trace_context()
        message["trace"] = trace
        response = self._checked(message, timeout=timeout)
        stats = dict(response.get("stats") or {})
        stats.setdefault("trace_id", trace["id"])
        if "columns" in response:
            return Result(
                response["rows"], list(response["columns"]), stats=stats
            )
        return Result(
            [], None, row_count=int(response.get("rowcount", 0)), stats=stats
        )

    def ping(self, *, timeout: float | None = None) -> bool:
        return bool(
            self._checked({"op": "ping"}, timeout=timeout).get("pong")
        )

    def sql(
        self,
        text: str,
        *,
        params: dict | None = None,
        timeout: float | None = None,
    ) -> dict:
        """Returns ``{"columns", "rows"}`` for queries, ``{"rowcount"}``
        for DML."""
        message: dict = {"op": "sql", "text": text}
        if params:
            message["params"] = params
        return self._checked(message, timeout=timeout)

    def xquery(
        self,
        text: str,
        *,
        allow_fallback: bool = True,
        timeout: float | None = None,
    ) -> list:
        return self._checked(
            {"op": "xquery", "text": text, "allow_fallback": allow_fallback},
            timeout=timeout,
        )["results"]

    def begin(self, *, timeout: float | None = None) -> int:
        return self._checked({"op": "begin"}, timeout=timeout)["txn"]

    def commit(self, *, timeout: float | None = None) -> int:
        """Commit the open transaction; returns its commit day."""
        return self._checked({"op": "commit"}, timeout=timeout)["day"]

    def abort(self, *, timeout: float | None = None) -> None:
        self._checked({"op": "abort"}, timeout=timeout)

    def snapshot(
        self, day: int | None = None, *, timeout: float | None = None
    ) -> int:
        """Re-pin the session's read snapshot; returns the pinned day."""
        message: dict = {"op": "snapshot"}
        if day is not None:
            message["day"] = day
        return self._checked(message, timeout=timeout)["day"]

    def stats(self, *, timeout: float | None = None) -> dict:
        return self._checked({"op": "stats"}, timeout=timeout)["stats"]

    def metrics(self, *, timeout: float | None = None) -> str:
        """The server's Prometheus text exposition."""
        return self._checked({"op": "metrics"}, timeout=timeout)[
            "exposition"
        ]

    def health(self, *, timeout: float | None = None) -> dict:
        """Liveness check; returns ``{"status", "gauges"}``."""
        response = self._checked({"op": "health"}, timeout=timeout)
        return {
            "status": response["status"],
            "gauges": response["gauges"],
        }

    # -- async jobs --------------------------------------------------------

    def submit(
        self,
        text: str,
        *,
        kind: str = "sql",
        params: dict | None = None,
        allow_fallback: bool = True,
        day: int | None = None,
        timeout: float | None = None,
    ) -> str:
        """Submit a read-only query as an async job; returns its id.

        The id is shareable: any connection to the same server can poll
        :meth:`job_status` and fetch :meth:`job_result` with it until
        the server's result TTL evicts the finished job.
        """
        message: dict = {
            "op": "job.submit",
            "kind": kind,
            "text": text,
            "allow_fallback": allow_fallback,
        }
        if params:
            message["params"] = params
        if day is not None:
            message["day"] = day
        return self._checked(message, timeout=timeout)["job"]

    def job_status(
        self, job_id: str, *, timeout: float | None = None
    ) -> dict:
        """The job's status view: ``state``, ``progress``, timestamps."""
        response = self._checked(
            {"op": "job.status", "job": job_id}, timeout=timeout
        )
        response.pop("ok", None)
        return response

    def job_result(
        self, job_id: str, *, timeout: float | None = None
    ) -> Result:
        """Fetch a COMPLETED job's cached result as a
        :class:`~repro.api.Result`.

        XQuery jobs come back as a single-column ``results`` Result
        (one serialized element per row).  A job that finished in
        ``ERROR`` re-raises its original typed error; a job still
        PENDING/RUNNING raises :class:`~repro.errors.JobStateError`.
        """
        response = self._checked(
            {"op": "job.result", "job": job_id}, timeout=timeout
        )
        stats = {"day": response.get("day"), "job": job_id}
        if "results" in response:
            return Result(
                [[item] for item in response["results"]],
                ["results"],
                stats=stats,
            )
        return Result(
            response["rows"], list(response["columns"]), stats=stats
        )

    def job_cancel(
        self, job_id: str, *, timeout: float | None = None
    ) -> dict:
        """Request cooperative cancellation; returns the status view."""
        response = self._checked(
            {"op": "job.cancel", "job": job_id}, timeout=timeout
        )
        response.pop("ok", None)
        return response

    def job_list(self, *, timeout: float | None = None) -> list[dict]:
        """Status views of every live (non-evicted) job on the server."""
        return self._checked({"op": "job.list"}, timeout=timeout)["jobs"]

    def job_wait(
        self,
        job_id: str,
        *,
        poll: float = 0.02,
        timeout: float | None = 30.0,
    ) -> dict:
        """Poll ``job.status`` until the job reaches a terminal state.

        Returns the final status view; raises :class:`JobError` if the
        deadline passes first (the job keeps running server-side).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.job_status(job_id)
            if status["state"] in TERMINAL:
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise JobError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
