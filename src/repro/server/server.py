"""The socket server: worker pool + admission control.

Architecture (one process, many clients):

- an **acceptor** thread accepts TCP connections and hands them to a
  bounded queue; when the queue is full the connection is answered with
  ``BUSY`` and closed (admission control at the connection level);
- a fixed pool of **worker** threads each serves one connection at a
  time: read a request, run it through the connection's
  :class:`~repro.server.session.Session`, write the response;
- a counting semaphore caps **in-flight statements** across all
  sessions; a request that cannot get a slot within ``queue_timeout``
  seconds is answered with ``BUSY`` (admission control at the request
  level) instead of piling onto an overloaded engine.

``stop()`` is clean by construction: it closes the listener, wakes every
worker with a sentinel, closes live connections (aborting their open
transactions) and joins all threads — the concurrency stress gate in
``scripts/check.sh`` fails on leaked threads or sockets.
"""

from __future__ import annotations

import queue
import socket
import threading
import time

from repro.errors import ProtocolError, ServerError, error_response
from repro.obs.metrics import get_registry
from repro.server.jobs import JobManager
from repro.server.protocol import recv_message, send_message, send_response
from repro.server.session import Session

_CONNECTIONS = get_registry().counter("server.connections")
_BUSY = get_registry().counter("server.busy_rejections")
_SESSIONS = get_registry().gauge("server.sessions")

_BUSY_RESPONSE = error_response(
    code="BUSY", message="server at capacity; retry later"
)


class Server:
    """Serves one :class:`~repro.txn.TxnManager` to many clients."""

    def __init__(
        self,
        manager,
        archis=None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        max_in_flight: int | None = None,
        queue_size: int = 16,
        queue_timeout: float = 1.0,
        job_workers: int = 2,
        job_result_ttl: float = 300.0,
    ) -> None:
        if workers < 1:
            raise ServerError("need at least one worker")
        self.manager = manager
        self.archis = archis
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_timeout = queue_timeout
        self.job_workers = job_workers
        self.job_result_ttl = job_result_ttl
        self.jobs: JobManager | None = None
        self._slots = threading.BoundedSemaphore(
            max_in_flight if max_in_flight is not None else workers
        )
        self._pending: queue.Queue = queue.Queue(maxsize=queue_size)
        self._threads: list[threading.Thread] = []
        self._listener: socket.socket | None = None
        self._stopping = threading.Event()
        self._conn_lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._next_session = 0
        self._active_sessions = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._listener is None:
            raise ServerError("server is not running")
        return self._listener.getsockname()

    def start(self) -> "Server":
        if self._listener is not None:
            raise ServerError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(self._pending.maxsize + self.workers)
        # closing a listener does not wake a blocked accept() on every
        # platform; a short timeout lets the acceptor poll the stop flag
        listener.settimeout(0.2)
        self._listener = listener
        self._stopping.clear()
        # the job executor is deliberately separate from the session
        # worker pool: a long analytics job never occupies a slot a
        # short interactive request is waiting for
        self.jobs = JobManager(
            self.manager,
            self.archis,
            workers=self.job_workers,
            result_ttl=self.job_result_ttl,
        )
        acceptor = threading.Thread(
            target=self._accept_loop, name="repro-acceptor", daemon=True
        )
        self._threads = [acceptor]
        for index in range(self.workers):
            self._threads.append(
                threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-worker-{index}",
                    daemon=True,
                )
            )
        for thread in self._threads:
            thread.start()
        return self

    def stop(self) -> None:
        if self._listener is None:
            return
        self._stopping.set()
        listener, self._listener = self._listener, None
        listener.close()
        for _ in range(self.workers):
            self._pending.put(None)
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            # unblocks a worker sitting in recv(); its session teardown
            # aborts any open transaction
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        for thread in self._threads:
            thread.join(timeout=10.0)
        self._threads = []
        if self.jobs is not None:
            self.jobs.close()
            self.jobs = None
        # drain connections that were queued but never picked up
        while True:
            try:
                conn = self._pending.get_nowait()
            except queue.Empty:
                break
            if conn is not None:
                conn.close()

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- acceptor ----------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping.is_set():
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed by stop()
            conn.settimeout(None)
            _CONNECTIONS.inc()
            try:
                self._pending.put_nowait(conn)
            except queue.Full:
                _BUSY.inc()
                try:
                    send_message(conn, _BUSY_RESPONSE)
                except OSError:
                    pass
                conn.close()

    # -- workers -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            conn = self._pending.get()
            if conn is None:
                return
            with self._conn_lock:
                if self._stopping.is_set():
                    conn.close()
                    continue
                self._conns.add(conn)
                self._next_session += 1
                session_id = self._next_session
                self._active_sessions += 1
                _SESSIONS.set(self._active_sessions)
            session = Session(
                self.manager,
                self.archis,
                session_id=session_id,
                jobs=self.jobs,
            )
            try:
                self._serve(conn, session)
            finally:
                session.close()
                with self._conn_lock:
                    self._conns.discard(conn)
                    self._active_sessions -= 1
                    _SESSIONS.set(self._active_sessions)
                conn.close()

    def _serve(self, conn: socket.socket, session: Session) -> None:
        while not self._stopping.is_set():
            try:
                recv_started = time.perf_counter()
                request = recv_message(conn)
            except (ProtocolError, OSError):
                return
            if request is None:
                return
            recv_seconds = time.perf_counter() - recv_started
            wait_started = time.perf_counter()
            if not self._slots.acquire(timeout=self.queue_timeout):
                _BUSY.inc()
                try:
                    send_message(conn, _BUSY_RESPONSE)
                except OSError:
                    return
                continue
            wait_seconds = time.perf_counter() - wait_started
            try:
                try:
                    # the session sends the response itself so wire time
                    # lands inside the request's root span; send_response
                    # also ships any negotiated binary payload frame
                    session.handle(
                        request,
                        send=lambda response: send_response(conn, response),
                        recv_seconds=recv_seconds,
                        wait_seconds=wait_seconds,
                    )
                finally:
                    self._slots.release()
            except OSError:
                return
